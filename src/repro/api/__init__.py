"""repro.api: one dataflow definition, runnable on all three runtimes.

The reproduction grew three runtime-specific building blocks: the
simulator's :func:`repro.transput.compose_segment`, the asyncio
:func:`repro.aio.stream_segment`, and the TCP fleet's
:func:`repro.net.launch.plan_linear_fleet` / ``run_fleet`` pair.  This
package is the one vocabulary over all of them, in two tiers:

**Linear** — :class:`Pipeline`, the facade every earlier PR used::

    from repro.api import Pipeline

    result = Pipeline(
        stages=[("repro.filters:comment_stripper", ["C"]),
                "repro.filters:strip_whitespace"],
        discipline="readonly",
        source=["C a comment", "      REAL X"],
    ).run(runtime="sim")          # or "aio", or "tcp"

    result.output       # ['REAL X']
    result.invocations  # (n+1)(m+1) — identical on every runtime

**Graphs** — :class:`Graph` / :class:`GraphBuilder`, validated
dataflow DAGs with scatter/gather, merge and broadcast (paper claim
C3's fan-out/fan-in duality made executable)::

    from repro.api import GraphBuilder

    graph = (GraphBuilder(source=records, discipline="readonly")
             .chain("repro.filters:strip_whitespace")
             .scatter(["pkg:branch_a"], ["pkg:branch_b"], policy="hash")
             .gather()
             .build())           # validation happens HERE, eagerly
    result = graph.run(runtime="tcp")

A :class:`Pipeline` is literally the degenerate Graph —
:meth:`Pipeline.to_graph` compiles it to a single-path DAG and the
unsharded run path executes through the same graph runner.  Invalid
topologies (cycles, dangling ports, fan-out without channel ids,
discipline mismatches, unsatisfiable buffer bounds) raise
:class:`GraphError` at build time with a positioned message — never at
run time.  Per-edge invocation costs are predicted analytically by
:func:`repro.analysis.cost_model.predict_graph_invocations`.

Stages are **specs** — ``"module:factory"`` strings or ``(spec, args)``
pairs — so the same pipeline or graph object can be replayed on any
runtime (each run instantiates fresh transducers; the TCP runtime
ships the spec across the process boundary).  Already-built
:class:`~repro.transput.filterbase.Transducer` instances are accepted
for the in-process runtimes (``sim``/``aio``) but rejected with an
explanation for ``tcp``.

All runtimes return the same result shape, and all knobs use one
vocabulary (``batch``, ``credit_window``, ``lookahead``, ``timeout``,
``max_restarts``, ...) validated eagerly — a knob that a runtime
cannot honour raises ``ValueError`` instead of being silently ignored.
"""

from repro.api.execute import (
    GraphResult,
    RUNTIMES,
    TCP_ONLY_KNOBS,
    run_graph,
)
from repro.api.facade import DISCIPLINES, Pipeline, PipelineResult
from repro.api.graph import (
    Graph,
    GraphBuilder,
    GraphEdge,
    GraphError,
    GraphNode,
    JOIN_OPS,
    NODE_KINDS,
    SCATTER_POLICIES,
    SPLIT_OPS,
)

__all__ = [
    "DISCIPLINES",
    "Graph",
    "GraphBuilder",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "GraphResult",
    "JOIN_OPS",
    "NODE_KINDS",
    "Pipeline",
    "PipelineResult",
    "RUNTIMES",
    "SCATTER_POLICIES",
    "SPLIT_OPS",
    "TCP_ONLY_KNOBS",
    "run_graph",
]
