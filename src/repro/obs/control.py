"""Live fleet introspection over the frame codec (CTRL / CTRL_REPLY).

Every ``eden-stage`` can open a *control listener* next to its data
listener (``--control-port``).  A control client sends one ``CTRL``
frame per request — ``{"cmd": "stats" | "spans" | "health"}`` — and
gets one ``CTRL_REPLY`` back: ``{"ok": true, "payload": ...}`` on
success, ``{"ok": false, "error": ...}`` otherwise.

Control traffic deliberately bypasses :class:`repro.net.protocol.
Connection`: frames go through the raw :func:`repro.net.framing.
read_frame` / :func:`~repro.net.framing.write_frame` helpers, so
**observing a stage never perturbs the frame counts** the paper's cost
model predicts (C1/C2 hold with or without a watcher attached).  No
handshake is required either — the control port carries no stream
data, only locally produced snapshots.

Commands are an open vocabulary: the server is built from a mapping of
command name to handler, and ``eden-stage`` installs:

- ``stats`` — the full instrument snapshot
  (:func:`repro.obs.registry.snapshot_payload`);
- ``spans`` — recent completed span events (JSONL-shaped dicts);
- ``health`` — identity, uptime, and flow policy.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Mapping

from repro.core.errors import EdenError
from repro.net.framing import (
    CHAN_FLAG,
    HEADER,
    MAGIC,
    Frame,
    FrameError,
    FrameType,
    decode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "ControlError",
    "MAX_CONTROL_REPLY",
    "start_control_server",
    "query_async",
    "query",
]

#: Control replies are snapshots, not stream data: anything past this
#: bound is a runaway handler or a corrupt length field, and the
#: observer refuses to buffer it (the frame layer's own cap is 16 MB).
MAX_CONTROL_REPLY = 4 * 1024 * 1024

#: A command handler: request body (without ``cmd``) -> JSON-safe payload.
ControlHandler = Callable[[dict[str, Any]], Any]


class ControlError(EdenError):
    """A control request failed, locally or on the stage."""


async def _serve_client(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    handlers: Mapping[str, ControlHandler],
) -> None:
    try:
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return
            if frame.type is not FrameType.CTRL:
                await write_frame(writer, Frame(FrameType.CTRL_REPLY, {
                    "ok": False,
                    "error": f"control port got {frame.type.name}",
                }))
                return
            body = dict(frame.body)
            cmd = str(body.pop("cmd", ""))
            handler = handlers.get(cmd)
            if handler is None:
                await write_frame(writer, Frame(FrameType.CTRL_REPLY, {
                    "ok": False,
                    "error": f"unknown command {cmd!r}",
                    "commands": sorted(handlers),
                }))
                continue
            try:
                payload = handler(body)
            except Exception as error:  # handler bug: report, keep serving
                await write_frame(writer, Frame(FrameType.CTRL_REPLY, {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }))
                continue
            await write_frame(writer, Frame(FrameType.CTRL_REPLY, {
                "ok": True, "cmd": cmd, "payload": payload,
            }))
    except (ConnectionError, OSError, EdenError):
        return  # observer went away mid-request; nothing to clean up
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_control_server(
    handlers: Mapping[str, ControlHandler],
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Open a control listener; caller closes the returned server.

    ``port=0`` picks a free port — read it back from
    ``server.sockets[0].getsockname()[1]``.
    """

    async def handle(reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        await _serve_client(reader, writer, handlers)

    return await asyncio.start_server(handle, host=host, port=port)


async def _read_reply(reader: asyncio.StreamReader) -> Frame | None:
    """One reply frame, size-bounded, with truncation surfaced cleanly.

    A stage dying mid-reply (or a port that is not a control port at
    all) is a verdict on the *stage* and must come back as a
    :class:`ControlError`, never as a frame-decode traceback.  The
    declared body length is checked against :data:`MAX_CONTROL_REPLY`
    before a single body byte is buffered.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ControlError(
            f"reply truncated mid-header ({len(error.partial)} of "
            f"{HEADER.size} bytes)"
        ) from error
    magic, type_code, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise ControlError(f"not a control reply: bad magic {magic!r}")
    if length > MAX_CONTROL_REPLY:
        raise ControlError(
            f"control reply declares {length} bytes, over the "
            f"{MAX_CONTROL_REPLY}-byte bound (runaway handler or "
            f"corrupt length)"
        )
    rest = length + (4 if type_code & CHAN_FLAG else 0)  # chan-id ext
    try:
        body = await reader.readexactly(rest)
    except asyncio.IncompleteReadError as error:
        raise ControlError(
            f"reply truncated: got {len(error.partial)} of {rest} body bytes"
        ) from error
    try:
        frame, _used = decode_frame(header + body)
    except FrameError as error:
        raise ControlError(f"undecodable control reply: {error}") from error
    return frame


async def query_async(
    host: str, port: int, cmd: str, timeout: float = 5.0, **args: Any
) -> Any:
    """Send one control request; return the payload or raise.

    Every failure mode — unreachable port, timeout, truncated or
    oversized or undecodable reply — raises :class:`ControlError`.
    """
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout=timeout
        )
    except (ConnectionError, OSError, asyncio.TimeoutError) as error:
        raise ControlError(f"cannot reach {host}:{port}: {error}") from error
    try:
        await write_frame(writer, Frame(FrameType.CTRL, {"cmd": cmd, **args}))
        reply = await asyncio.wait_for(_read_reply(reader), timeout=timeout)
    except (ConnectionError, OSError, asyncio.TimeoutError) as error:
        raise ControlError(f"control request failed: {error}") from error
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if reply is None:
        raise ControlError(f"{host}:{port} closed without replying")
    if reply.type is not FrameType.CTRL_REPLY:
        raise ControlError(f"unexpected {reply.type.name} on control port")
    if not reply.body.get("ok"):
        raise ControlError(str(reply.body.get("error", "request failed")))
    return reply.body.get("payload")


def query(host: str, port: int, cmd: str, timeout: float = 5.0,
          **args: Any) -> Any:
    """Blocking form of :func:`query_async` (for the CLI tools)."""
    return asyncio.run(query_async(host, port, cmd, timeout=timeout, **args))
