"""The span model: causal identity for every request hop.

A *trace* follows one datum (or one demand chain) end-to-end through a
pipeline; a *span* is one request hop inside it — one READ or WRITE
invocation bracketed from issue to reply.  Contexts are tiny immutable
triples ``(trace, span, parent)`` so they travel cheaply: as a field on
simulator :class:`~repro.core.message.Invocation` records and as an
optional ``trace`` entry in wire frame bodies.

ID allocation is deterministic — a per-allocator counter behind a
stable prefix — so the same seed produces the same trace IDs in the
simulator and in each stage process (stages prefix with their ticket
serial, which keeps IDs unique across a fleet without any randomness).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

__all__ = ["SpanContext", "SpanIds", "SPAN_KIND", "CLOCK_KIND"]

#: Trace-event kind under which completed spans are recorded.
SPAN_KIND = "span"
#: Trace-event kind for a stage's monotonic/wall clock anchor.
CLOCK_KIND = "clock"


@dataclass(frozen=True)
class SpanContext:
    """One hop's causal coordinates.

    Attributes:
        trace: the datum's end-to-end trace identifier.
        span: this hop's own identifier.
        parent: the causing hop's span identifier (``None`` at a root).
    """

    trace: str
    span: str
    parent: str | None = None

    def as_wire(self) -> list[Any]:
        """The JSON-safe wire form: ``[trace, span, parent]``."""
        return [self.trace, self.span, self.parent]

    @staticmethod
    def from_wire(value: Any) -> "SpanContext | None":
        """Decode :meth:`as_wire` output; ``None`` on anything else.

        Tolerant by design: a peer without span support simply omits
        (or garbles) the field and tracing degrades to per-stage
        traces instead of failing the stream.
        """
        if (
            isinstance(value, (list, tuple))
            and len(value) == 3
            and isinstance(value[0], str)
            and isinstance(value[1], str)
            and (value[2] is None or isinstance(value[2], str))
        ):
            return SpanContext(trace=value[0], span=value[1], parent=value[2])
        return None

    def __str__(self) -> str:
        parent = self.parent or "-"
        return f"{self.trace}/{self.span}<-{parent}"


class SpanIds:
    """Deterministic trace/span ID allocator.

    Args:
        prefix: stable disambiguator (``"k"`` for the simulated kernel,
            ``"s<serial>"`` for a wire stage) keeping IDs unique across
            processes without coordination.
    """

    def __init__(self, prefix: str = "k") -> None:
        self.prefix = prefix
        self._traces = itertools.count(1)
        self._spans = itertools.count(1)

    def new_trace(self) -> str:
        return f"{self.prefix}t{next(self._traces)}"

    def new_span(self) -> str:
        return f"{self.prefix}s{next(self._spans)}"

    def root(self) -> SpanContext:
        """Start a fresh trace with this hop as its root span."""
        return SpanContext(trace=self.new_trace(), span=self.new_span())

    def child(self, parent: SpanContext) -> SpanContext:
        """A new hop caused by ``parent``, in the same trace."""
        return SpanContext(
            trace=parent.trace, span=self.new_span(), parent=parent.span
        )

    def derive(self, parent: "SpanContext | None") -> SpanContext:
        """Child of ``parent`` when given, else a fresh root."""
        return self.child(parent) if parent is not None else self.root()

    def adopt(self, origin: SpanContext) -> SpanContext:
        """A new hop joining ``origin``'s trace as its child.

        This is the *datum-follows-trace* rule: when a passive buffer
        answers a Read with a record that was deposited under some
        other trace, the reading hop joins the datum's trace rather
        than starting (or staying in) its own — which is what stitches
        the conventional discipline's WRITE→READ→WRITE chain into one
        2n+2-span trace per datum.
        """
        return SpanContext(
            trace=origin.trace, span=self.new_span(), parent=origin.span
        )
