"""Task-local span propagation for the asyncio wire runtime.

The simulated kernel threads causality through explicit process state
(:attr:`~repro.core.process.Process.current_span`); the asyncio runtime
uses a :class:`contextvars.ContextVar` instead, which asyncio
propagates across ``await`` boundaries within one task.  A server
handler binds the span carried by an incoming frame around its call
into the local stage; any active-side request the stage performs while
serving (an upstream READ, a downstream WRITE) then parents itself on
the bound span — exactly the demand/data chain the paper describes,
with no plumbing through the generic ``Readable``/``Writable``
interfaces.

Anticipatory prefetch tasks (``lookahead > 0``) run in their *own*
tasks and therefore see no bound span: an anticipatory fetch is not
caused by any particular demand, so it correctly starts its own trace.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

from repro.obs.spans import SpanContext

__all__ = ["current_span", "bind_span", "set_span"]

_CURRENT: ContextVar[SpanContext | None] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> SpanContext | None:
    """The span currently being served in this task, if any."""
    return _CURRENT.get()


def set_span(ctx: SpanContext | None) -> None:
    """Unconditionally set the current span (pump-style adoption)."""
    _CURRENT.set(ctx)


@contextlib.contextmanager
def bind_span(ctx: SpanContext | None) -> Iterator[None]:
    """Bind ``ctx`` as the current span for the enclosed block."""
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)
