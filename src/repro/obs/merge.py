"""Trace merging: per-stage span logs into fleet-wide span trees.

Every traced runtime writes the same JSONL event stream
(:meth:`repro.core.tracing.Tracer.to_jsonl`): ``span`` events carrying
``{trace, span, parent, op, start, end}``, plus one ``clock`` event
anchoring the process's monotonic clock to the wall clock.  The
simulator emits them on a shared virtual clock; each ``eden-stage``
process emits them on its *own* ``time.monotonic()`` epoch, so stage
logs cannot be compared until their clocks are aligned.

Alignment runs in two passes:

1. **Anchor pass** — each log's ``clock`` event gives a wall-minus-mono
   offset; adding it moves every timestamp onto the (shared) wall
   clock.  This removes the arbitrary monotonic epochs but keeps any
   residual wall-clock disagreement between processes.
2. **Causal pass** — NTP-style interval intersection over cross-stage
   parent/child span pairs: a child span must nest inside its parent
   (the request is on the wire before the server works, the reply
   lands after), so each pair bounds the relative offset between the
   two stages to ``[parent.start - child.start, parent.end -
   child.end]``.  Intersecting every pair's bounds and picking the
   value closest to zero (anchors already did the coarse work) gives a
   per-stage correction; corrections propagate breadth-first from the
   stage holding the most trace roots.

The aligned spans are grouped by trace ID into :class:`TraceTree`
objects, which expose per-datum end-to-end latency and the critical
path, and :func:`verify_invocation_chains` checks the paper's C1/C2
claims *structurally* — not just "n+1 invocations happened" but "these
n+1 spans form one causal chain per datum".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable, Union

from repro.core.tracing import TraceEvent, load_jsonl
from repro.obs.spans import CLOCK_KIND, SPAN_KIND

__all__ = [
    "SpanRecord",
    "StageLog",
    "TraceTree",
    "ChainReport",
    "OnceReport",
    "load_span_log",
    "merge_span_logs",
    "solve_offsets",
    "verify_exactly_once",
    "verify_invocation_chains",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed request span, clock-corrected where merged.

    Attributes:
        trace: the end-to-end trace this hop belongs to.
        span: this hop's identifier.
        parent: the causing hop's span identifier (``None`` at a root).
        op: the operation name (``Read``, ``WRITE``, ...).
        start: request issue time.
        end: reply arrival time.
        stage: label of the process that issued the request.
        status: reply status (``"ok"`` unless the hop errored).
        seq: stream index of the first record this hop *accepted*
            (sequence evidence from a resuming reader; ``None`` when
            the span carries no sequence evidence).
        n: how many records this hop accepted (0 for END hops and for
            replies that were entirely duplicates).
    """

    trace: str
    span: str
    parent: str | None
    op: str
    start: float
    end: float
    stage: str
    status: str = "ok"
    seq: int | None = None
    n: int | None = None

    @property
    def duration(self) -> float:
        """The hop's request-to-reply latency."""
        return self.end - self.start

    def shifted(self, offset: float) -> "SpanRecord":
        """This record with both timestamps moved by ``offset``."""
        if offset == 0.0:
            return self
        return SpanRecord(
            trace=self.trace, span=self.span, parent=self.parent,
            op=self.op, start=self.start + offset, end=self.end + offset,
            stage=self.stage, status=self.status, seq=self.seq, n=self.n,
        )


@dataclass
class StageLog:
    """One process's span log, before cross-stage alignment.

    Attributes:
        stage: the process's label (``pull/readonly#3``, ``sim``, ...).
        spans: its completed spans, on its own clock.
        anchor: ``(mono, wall)`` clock anchor, if the log carries one.
    """

    stage: str
    spans: list[SpanRecord] = field(default_factory=list)
    anchor: tuple[float, float] | None = None

    @property
    def anchor_offset(self) -> float:
        """Wall-minus-monotonic offset from the anchor (0 without one)."""
        if self.anchor is None:
            return 0.0
        mono, wall = self.anchor
        return wall - mono


def load_span_log(
    source: Union[str, IO[str], Iterable[TraceEvent]],
    stage: str | None = None,
) -> StageLog:
    """Extract one :class:`StageLog` from a JSONL trace (or events).

    Non-span events (frame sends, simulator lifecycle) are ignored, so
    any ``--trace-file`` output loads directly.  The stage label
    defaults to the clock anchor's subject, then to the first span's.
    """
    if isinstance(source, str) or hasattr(source, "read"):
        events = load_jsonl(source)  # type: ignore[arg-type]
    else:
        events = list(source)
    spans: list[SpanRecord] = []
    anchor: tuple[float, float] | None = None
    label = stage
    for event in events:
        if event.kind == CLOCK_KIND:
            detail = event.detail
            anchor = (float(detail["mono"]), float(detail["wall"]))
            if label is None:
                label = event.subject
        elif event.kind == SPAN_KIND:
            detail = event.detail
            if label is None:
                label = event.subject
            spans.append(
                SpanRecord(
                    trace=str(detail["trace"]),
                    span=str(detail["span"]),
                    parent=(
                        None if detail.get("parent") is None
                        else str(detail["parent"])
                    ),
                    op=str(detail.get("op", "")),
                    start=float(detail["start"]),
                    end=float(detail["end"]),
                    stage=event.subject,
                    status=str(detail.get("status", "ok")),
                    seq=(
                        int(detail["seq"])
                        if isinstance(detail.get("seq"), int) else None
                    ),
                    n=(
                        int(detail["n"])
                        if isinstance(detail.get("n"), int) else None
                    ),
                )
            )
    return StageLog(stage=label or "unknown", spans=spans, anchor=anchor)


@dataclass
class TraceTree:
    """All spans of one trace, clock-aligned and causally linked."""

    trace: str
    spans: list[SpanRecord]

    @property
    def span_count(self) -> int:
        return len(self.spans)

    @property
    def roots(self) -> list[SpanRecord]:
        """Spans with no parent present in this trace."""
        present = {record.span for record in self.spans}
        return [
            record for record in self.spans
            if record.parent is None or record.parent not in present
        ]

    def children_of(self, span_id: str) -> list[SpanRecord]:
        return [record for record in self.spans if record.parent == span_id]

    @property
    def start(self) -> float:
        return min(record.start for record in self.spans)

    @property
    def end(self) -> float:
        return max(record.end for record in self.spans)

    @property
    def end_to_end(self) -> float:
        """The datum's full journey: first request to last reply."""
        return self.end - self.start

    def critical_path(self) -> list[SpanRecord]:
        """Root-to-leaf chain that determined the end-to-end latency.

        From the latest-ending root, repeatedly follow the child that
        finished last; for the linear chains the stream disciplines
        produce this is simply the whole chain in causal order.
        """
        roots = self.roots
        if not roots:
            return []
        path = [max(roots, key=lambda record: record.end)]
        while True:
            children = self.children_of(path[-1].span)
            if not children:
                return path
            path.append(max(children, key=lambda record: record.end))

    def is_chain(self) -> bool:
        """True when the tree is one linear causal chain."""
        if len(self.roots) != 1:
            return False
        return all(
            len(self.children_of(record.span)) <= 1 for record in self.spans
        )


def merge_span_logs(logs: Iterable[StageLog]) -> list[TraceTree]:
    """Align per-stage logs onto one timeline and group into traces.

    Returns trees sorted by their (corrected) start time.  Logs from a
    single clock domain (the simulator, or one process) pass through
    with zero correction.
    """
    stage_logs = list(logs)
    offsets = _estimate_offsets(stage_logs)
    by_trace: dict[str, list[SpanRecord]] = {}
    for log in stage_logs:
        offset = log.anchor_offset + offsets.get(log.stage, 0.0)
        for record in log.spans:
            by_trace.setdefault(record.trace, []).append(record.shifted(offset))
    trees = [
        TraceTree(trace=trace, spans=sorted(spans, key=lambda r: (r.start, r.span)))
        for trace, spans in by_trace.items()
    ]
    trees.sort(key=lambda tree: tree.start)
    return trees


def _estimate_offsets(logs: list[StageLog]) -> dict[str, float]:
    """Causal-pass corrections per stage (applied after anchors)."""
    # Anchor-corrected span table, and each span's home stage.
    home: dict[str, str] = {}
    corrected: dict[str, SpanRecord] = {}
    for log in logs:
        for record in log.spans:
            shifted = record.shifted(log.anchor_offset)
            corrected[record.span] = shifted
            home[record.span] = log.stage
    # Interval bounds on (offset[child stage] - offset[parent stage]).
    # How tightly a pair constrains the offset depends on the edge:
    #
    # - READ parent: the parent span brackets request to reply, and the
    #   child ran while serving it, so the child nests fully inside —
    #   bounds on both sides.
    # - WRITE parent, READ child: the child is a buffer read that
    #   *adopted* the depositing write's trace; the read may have been
    #   issued (blocked) before the write, but its reply carries the
    #   datum, so only child.end >= parent.start holds.
    # - WRITE parent, other child: the child ran while the server
    #   handled the write frame, so child.start >= parent.start; the
    #   parent span closed at send time, so there is no upper bound.
    bounds: dict[tuple[str, str], list[float]] = {}
    for record in corrected.values():
        if record.parent is None or record.parent not in corrected:
            continue
        parent = corrected[record.parent]
        pair = (home[parent.span], home[record.span])
        if pair[0] == pair[1]:
            continue
        entry = bounds.setdefault(pair, [float("-inf"), float("inf")])
        parent_is_read = parent.op.upper().startswith("READ")
        child_is_read = record.op.upper().startswith("READ")
        if parent_is_read:
            entry[0] = max(entry[0], parent.start - record.start)
            entry[1] = min(entry[1], parent.end - record.end)
        elif child_is_read:
            entry[0] = max(entry[0], parent.start - record.end)
        else:
            entry[0] = max(entry[0], parent.start - record.start)
    if not bounds:
        return {}
    # Traverse from the stage holding the most roots (the demand or
    # data origin), which gets offset zero.
    stages = {stage for pair in bounds for stage in pair}
    root_counts: dict[str, int] = {}
    for record in corrected.values():
        if record.parent is None:
            root_counts[home[record.span]] = (
                root_counts.get(home[record.span], 0) + 1
            )
    start = max(
        stages,
        key=lambda stage: (root_counts.get(stage, 0), -_stable_rank(stage)),
    )
    return solve_offsets(bounds, start)


def solve_offsets(
    bounds: dict[tuple[str, str], list[float]], start: str
) -> dict[str, float]:
    """Propagate interval bounds into per-clock-domain corrections.

    ``bounds`` maps ordered ``(a, b)`` pairs to ``[lo, hi]`` intervals
    constraining ``offset[b] - offset[a]``; ``start`` is pinned at
    zero and corrections spread breadth-first, each hop taking the
    in-interval value closest to zero.  Domains unreachable from
    ``start`` are left out (callers treat missing as zero).  Shared by
    the span merger's causal pass and ``eden-flight``'s digest-matched
    capture alignment.
    """
    adjacency: dict[str, set[str]] = {}
    for a, b in bounds:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    offsets: dict[str, float] = {start: 0.0}
    queue = deque([start])
    while queue:
        stage = queue.popleft()
        for neighbour in sorted(adjacency.get(stage, ())):
            if neighbour in offsets:
                continue
            offsets[neighbour] = offsets[stage] + _pair_offset(
                bounds, stage, neighbour
            )
            queue.append(neighbour)
    return offsets


def _stable_rank(stage: str) -> int:
    """Deterministic tie-break (alphabetical) for the start stage."""
    return sum(byte for byte in stage.encode("utf-8"))


def _pair_offset(
    bounds: dict[tuple[str, str], list[float]], fixed: str, moving: str
) -> float:
    """The correction for ``moving`` relative to already-fixed ``fixed``.

    Folds both edge directions into one interval for
    ``offset[moving] - offset[fixed]`` and returns the in-interval
    value closest to zero (anchors already did the coarse alignment);
    an inconsistent (empty) interval falls back to its midpoint.
    """
    lo, hi = float("-inf"), float("inf")
    direct = bounds.get((fixed, moving))
    if direct is not None:
        lo, hi = max(lo, direct[0]), min(hi, direct[1])
    reverse = bounds.get((moving, fixed))
    if reverse is not None:
        lo, hi = max(lo, -reverse[1]), min(hi, -reverse[0])
    if lo > hi:
        return (lo + hi) / 2.0
    if lo <= 0.0 <= hi:
        return 0.0
    return lo if lo > 0.0 else hi


@dataclass
class ChainReport:
    """Result of checking merged traces against the paper's claims."""

    discipline: str
    n_filters: int
    expected_traces: int
    expected_spans_per_trace: int
    traces: int
    total_spans: int
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "OK" if self.ok else "MISMATCH"
        return (
            f"{verdict}: {self.traces} traces "
            f"(expected {self.expected_traces}), "
            f"{self.total_spans} spans "
            f"(expected {self.expected_traces * self.expected_spans_per_trace} "
            f"= {self.expected_traces} x {self.expected_spans_per_trace} "
            f"for {self.discipline}, n={self.n_filters})"
        )


def verify_invocation_chains(
    trees: Iterable[TraceTree],
    discipline: str,
    n_filters: int,
    items: int,
    batch: int = 1,
) -> ChainReport:
    """Check claims C1/C2 span-by-span on merged traces.

    For an identity pipeline moving ``items`` records in batches of
    ``batch``, every discipline must produce exactly ``ceil(items /
    batch) + 1`` traces (one per transfer, plus the END chain), each a
    single linear chain of exactly ``shape.invocations_per_datum``
    request spans — n+1 for the corresponding read-only/write-only
    pairs, 2n+2 for the conventional buffered design.  The total then
    equals :func:`repro.analysis.cost_model.predicted_invocations` by
    construction, but the per-trace check is strictly stronger: it
    verifies the *causal shape*, not just the count.
    """
    # Imported lazily: repro.analysis pulls in the measurement harness,
    # which this low-level tool should not load unless verifying.
    from repro.analysis.cost_model import predicted_invocations, shape_for

    shape = shape_for(discipline, n_filters)
    hops = int(shape.invocations_per_datum)
    transfers = -(-items // batch) + 1  # ceil + END
    tree_list = list(trees)
    report = ChainReport(
        discipline=discipline,
        n_filters=n_filters,
        expected_traces=transfers,
        expected_spans_per_trace=hops,
        traces=len(tree_list),
        total_spans=sum(tree.span_count for tree in tree_list),
    )
    if report.traces != transfers:
        report.problems.append(
            f"expected {transfers} traces, merged {report.traces}"
        )
    for tree in tree_list:
        if tree.span_count != hops:
            report.problems.append(
                f"trace {tree.trace}: {tree.span_count} spans, expected {hops}"
            )
        if not tree.is_chain():
            roots = [record.span for record in tree.roots]
            report.problems.append(
                f"trace {tree.trace}: not a single causal chain "
                f"(roots: {', '.join(roots) or 'none'})"
            )
    predicted = predicted_invocations(discipline, n_filters, items, batch)
    if report.total_spans != predicted:
        report.problems.append(
            f"{report.total_spans} total spans != predicted {predicted}"
        )
    return report


@dataclass
class OnceReport:
    """Result of sequence-evidence exactly-once verification.

    ``accepted`` maps each reading stage to how many records its
    accepted slices cover; a stage appears only if its spans carried
    sequence evidence (resuming readers emit it, legacy readers do
    not).
    """

    accepted: dict[str, int] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "EXACTLY-ONCE" if self.ok else "VIOLATION"
        stages = ", ".join(
            f"{stage}={count}" for stage, count in sorted(self.accepted.items())
        )
        lines = [f"{verdict}: accepted records per reading stage: "
                 f"{stages or '(no sequence evidence found)'}"]
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def verify_exactly_once(
    logs: Iterable[StageLog],
    expected: int | None = None,
) -> OnceReport:
    """Check, span-by-span, that no datum was duplicated or lost.

    A resuming :class:`repro.net.protocol.RemoteReadable` stamps every
    READ span with the slice of the stream it *accepted* after
    duplicate suppression (``seq`` = index of the first accepted
    record, ``n`` = how many).  For each reading stage, those slices
    must tile ``[0, total)`` exactly — any overlap is a duplicated
    datum, any gap a lost one — even across kills, reconnects and
    retransmissions.  ``expected`` additionally pins the total per
    stage (right for identity pipelines, where every hop carries the
    same record count).

    Stages without sequence evidence (non-resuming runs, push-side
    writers) are skipped: absence of evidence is not a violation, it
    just means there is nothing to verify.  An empty report with
    ``expected`` set and *no* evidence at all is flagged, so a chaos
    test cannot silently pass because tracing was off.

    Evidence is grouped by each span's own ``stage`` label, not the
    log file it came from: an ``eden-host`` process writes one trace
    file carrying hundreds of stages' spans, and each hosted reader
    must tile the stream independently.  (For per-process logs the two
    groupings coincide.)
    """
    report = OnceReport()
    evidence: dict[str, list[SpanRecord]] = {}
    for log in logs:
        for record in log.spans:
            if record.seq is None or record.n is None:
                continue
            if record.status != "ok":
                continue
            evidence.setdefault(record.stage, []).append(record)
    for stage, records in sorted(evidence.items()):
        slices = sorted(
            ((r.seq, r.seq + r.n) for r in records if r.n), key=lambda s: s[0]
        )
        cursor = 0
        broken = False
        for start, stop in slices:
            if start < cursor:
                report.problems.append(
                    f"{stage}: records {start}..{cursor - 1} accepted twice"
                )
                broken = True
                break
            if start > cursor:
                report.problems.append(
                    f"{stage}: records {cursor}..{start - 1} lost "
                    f"(gap before accepted slice {start}..{stop - 1})"
                )
                broken = True
                break
            cursor = stop
        if broken:
            continue
        report.accepted[stage] = cursor
        if expected is not None and cursor != expected:
            report.problems.append(
                f"{stage}: accepted {cursor} records, expected {expected}"
            )
    if expected is not None and not evidence:
        report.problems.append(
            "no sequence evidence in any log (was tracing on and "
            "resume enabled?)"
        )
    return report
