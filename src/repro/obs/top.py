"""``eden-top``: live introspection of a running stage fleet.

Polls every stage's control port (``health`` + ``stats``) and renders
one row per stage: role, shard, uptime, request/reply counts, bytes
moved, credit-window occupancy, per-stage record throughput, the
adaptive autotuner's live batch/credit choice (``AUTO b/w``, shown
when the stage runs ``--adaptive``), read-latency quantiles and the
stage's CPU pin (``CPU`` — the planned core, suffixed ``?`` when the
pin did not take, e.g. off Linux).  A footer line aggregates the
fleet-wide frame-buffer pool hit rate when any stage exports
``bufpool_*`` gauges.  Point it at the ``fleet.json`` manifest
:func:`repro.net.launch.plan_linear_fleet` writes (``--fleet``), or at
explicit ``--stage host:port`` addresses.

``--once`` prints a single snapshot and exits — that mode is what the
tests drive; the default loops every ``--interval`` seconds until
interrupted.  Stages that have exited (connection refused) stay in the
table marked ``gone``, so a draining fleet is visible as it winds down.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.stats import Histogram
from repro.obs.control import ControlError, query

__all__ = ["StageRow", "gather_fleet", "render_fleet", "rows_payload", "main"]


@dataclass
class StageRow:
    """One stage's snapshot (or its absence) for the table."""

    label: str
    alive: bool = False
    role: str = "?"
    shard: str = "-"
    uptime_s: float = 0.0
    invocations: int = 0
    replies: int = 0
    bytes_moved: int = 0
    credit: str = "-"
    throughput: float | None = None
    autotune: str = "-"
    read_p50_ms: float | None = None
    read_p95_ms: float | None = None
    #: Logical channels currently open (brokers and stage hosts).
    channels: str = "-"
    #: Stages hosted in-process (stage hosts only).
    hosted: str = "-"
    #: Planned CPU core ("3"), "3?" when the pin failed, "-" unpinned.
    cpu: str = "-"
    #: Flight recorder: "ful:12kB" / "dig:3kB" from the stage's
    #: ``health`` payload, "-" when recording is off.
    flight: str = "-"
    gauges: dict[str, float] = field(default_factory=dict)


def _row_from_payloads(
    label: str, health: dict[str, Any], stats: dict[str, Any]
) -> StageRow:
    counters = stats.get("counters", {})
    gauges = {str(k): float(v) for k, v in stats.get("gauges", {}).items()}
    row = StageRow(
        label=str(health.get("label", label)),
        alive=True,
        role=str(health.get("role", "?")),
        uptime_s=float(health.get("uptime_s", 0.0)),
        invocations=int(counters.get("invocations_sent", 0)),
        replies=int(counters.get("replies_sent", 0)),
        bytes_moved=(
            int(counters.get("bytes_sent", 0))
            + int(counters.get("bytes_received", 0))
        ),
        gauges=gauges,
    )
    if health.get("shard") is not None:
        row.shard = str(health["shard"])
    if "credit_available" in gauges and "credit_window" in gauges:
        row.credit = (
            f"{int(gauges['credit_available'])}/{int(gauges['credit_window'])}"
        )
    moved = max(
        int(counters.get("records_out", 0)), int(counters.get("records_in", 0))
    )
    if moved and row.uptime_s > 0:
        row.throughput = moved / row.uptime_s
    if "autotune_batch" in gauges and "autotune_credit" in gauges:
        row.autotune = (
            f"{int(gauges['autotune_batch'])}/{int(gauges['autotune_credit'])}"
        )
    if health.get("channels_open") is not None:
        row.channels = str(int(health["channels_open"]))
    elif "mux_channels_open" in gauges:
        row.channels = str(int(gauges["mux_channels_open"]))
    if health.get("hosted") is not None:
        row.hosted = str(int(health["hosted"]))
    if health.get("cpu") is not None:
        row.cpu = str(int(health["cpu"]))
        if not health.get("pinned"):
            row.cpu += "?"
    flight = health.get("flight")
    if isinstance(flight, dict):
        row.flight = (
            f"{str(flight.get('mode', '?'))[:3]}:"
            f"{_si_bytes(int(flight.get('bytes', 0)))}"
        )
    histogram_data = stats.get("histograms", {}).get("read_rtt_ms")
    if isinstance(histogram_data, dict):
        try:
            histogram = Histogram.from_dict(histogram_data)
        except ValueError:
            histogram = None
        if histogram is not None and histogram.total:
            row.read_p50_ms = histogram.quantile(0.5)
            row.read_p95_ms = histogram.quantile(0.95)
    return row


def _si_bytes(count: int) -> str:
    """Compact byte count for the FLIGHT column (``824B``, ``3.2MB``)."""
    if count < 1024:
        return f"{count}B"
    if count < 1024 * 1024:
        return f"{count / 1024:.1f}kB"
    return f"{count / (1024 * 1024):.1f}MB"


def gather_fleet(
    targets: Sequence[tuple[str, str, int]], timeout: float = 2.0
) -> list[StageRow]:
    """Poll ``(label, host, port)`` control targets into table rows."""
    rows: list[StageRow] = []
    for label, host, port in targets:
        try:
            health = query(host, port, "health", timeout=timeout)
            stats = query(host, port, "stats", timeout=timeout)
        except ControlError:
            rows.append(StageRow(label=label, alive=False))
            continue
        rows.append(_row_from_payloads(label, health or {}, stats or {}))
    return rows


def render_fleet(rows: Sequence[StageRow]) -> str:
    """The fleet table as text (pure, so tests can assert on it)."""
    headers = ("STAGE", "ROLE", "SHARD", "UP", "INVOKES", "REPLIES", "BYTES",
               "CREDIT", "TPUT rec/s", "AUTO b/w", "READ p50/p95",
               "CHAN", "HOST", "CPU", "FLIGHT")
    table: list[tuple[str, ...]] = [headers]
    for row in rows:
        if not row.alive:
            table.append((row.label, "gone") + ("-",) * (len(headers) - 2))
            continue
        latency = "-"
        if row.read_p50_ms is not None:
            latency = f"{row.read_p50_ms:g}/{row.read_p95_ms:g}ms"
        throughput = "-"
        if row.throughput is not None:
            throughput = f"{row.throughput:.1f}"
        table.append((
            row.label, row.role, row.shard, f"{row.uptime_s:.1f}s",
            str(row.invocations), str(row.replies), str(row.bytes_moved),
            row.credit, throughput, row.autotune, latency,
            row.channels, row.hosted, row.cpu, row.flight,
        ))
    widths = [
        max(len(line[column]) for line in table)
        for column in range(len(headers))
    ]
    rendered = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip()
        for line in table
    ]
    footer = _pool_footer(rows)
    if footer:
        rendered.append(footer)
    return "\n".join(rendered)


def rows_payload(rows: Sequence[StageRow]) -> list[dict[str, Any]]:
    """The snapshot as JSON-safe dicts (``eden-top --json``'s output).

    One dict per stage, every :class:`StageRow` field included — the
    scripting surface mirrors the table exactly.
    """
    return [dataclasses.asdict(row) for row in rows]


def _pool_footer(rows: Sequence[StageRow]) -> str | None:
    """Fleet-wide frame-buffer pool line, or ``None`` without gauges."""
    hits = sum(row.gauges.get("bufpool_hits", 0.0) for row in rows)
    misses = sum(row.gauges.get("bufpool_misses", 0.0) for row in rows)
    if not hits and not misses:
        return None
    rate = hits / (hits + misses)
    return (f"bufpool: {rate:.0%} hit rate "
            f"({int(hits)} hits / {int(misses)} misses)")


def _targets_from_args(options: argparse.Namespace) -> list[tuple[str, str, int]]:
    targets: list[tuple[str, str, int]] = []
    if options.fleet:
        with open(options.fleet, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        host = manifest.get("host", "127.0.0.1")
        for stage in manifest.get("stages", []):
            port = stage.get("control_port")
            if port is None:
                continue
            label = f"{stage.get('role', '?')}#{stage.get('serial', '?')}"
            if stage.get("shard") is not None:
                label = f"s{stage['shard']}:{label}"
            targets.append((label, host, int(port)))
    for spec in options.stage or []:
        host, _sep, port = spec.rpartition(":")
        targets.append((spec, host or "127.0.0.1", int(port)))
    return targets


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="eden-top",
        description="Live table of a running eden-stage fleet.",
    )
    parser.add_argument("--fleet", default=None, metavar="FLEET_JSON",
                        help="fleet manifest written by plan_linear_fleet(control=True)")
    parser.add_argument("--stage", action="append", default=None,
                        metavar="HOST:PORT", help="explicit control address")
    parser.add_argument("--interval", type=float, default=1.0)
    parser.add_argument("--timeout", type=float, default=2.0)
    parser.add_argument("--once", action="store_true",
                        help="print one snapshot and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="one machine-readable snapshot (implies --once)")
    options = parser.parse_args(argv)
    targets = _targets_from_args(options)
    if not targets:
        parser.error("no control targets: give --fleet or --stage")
    if options.as_json:
        rows = gather_fleet(targets, timeout=options.timeout)
        print(json.dumps(rows_payload(rows), indent=2, sort_keys=True))
        return 0
    try:
        while True:
            rows = gather_fleet(targets, timeout=options.timeout)
            print(render_fleet(rows))
            if options.once:
                return 0
            print()
            time.sleep(max(0.1, options.interval))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
