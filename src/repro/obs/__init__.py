"""repro.obs — causal observability for asymmetric stream pipelines.

The paper's headline claims are *counting* claims (n+1 invocations per
datum for corresponding pairs, 2n+2 for the buffered conventional
design).  Aggregate counters can check the totals; this package checks
the *structure*: every datum gets a trace ID, every request hop gets a
span, and the resulting span trees are reconstructable end-to-end
across a multi-process fleet.

Layers:

- :mod:`repro.obs.spans` — the span model (trace/span/parent contexts,
  deterministic ID allocation);
- :mod:`repro.obs.context` — task-local span propagation for the
  asyncio wire runtime;
- :mod:`repro.obs.registry` — Prometheus-style text exposition and
  JSON snapshots over :class:`~repro.core.stats.KernelStats` (counters,
  gauges, fixed-bucket histograms);
- :mod:`repro.obs.merge` — the trace-merge tool: align per-stage JSONL
  logs (monotonic-clock skew correction), build span trees, compute
  per-datum end-to-end latency and critical paths, and assert the
  C1/C2 invocation chains span-by-span;
- :mod:`repro.obs.control` — the live introspection protocol
  (STATS/SPANS/HEALTH over the frame codec) every ``eden-stage`` can
  serve;
- :mod:`repro.obs.top` / :mod:`repro.obs.trace_cli` — the ``eden-top``
  and ``eden-trace`` command line tools.
"""

from repro.obs.spans import SpanContext, SpanIds, SPAN_KIND, CLOCK_KIND
from repro.obs.context import current_span, bind_span
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    snapshot_payload,
    stats_from_payload,
    to_prometheus,
)
from repro.obs.merge import (
    ChainReport,
    SpanRecord,
    StageLog,
    TraceTree,
    load_span_log,
    merge_span_logs,
    verify_invocation_chains,
)

__all__ = [
    "SpanContext",
    "SpanIds",
    "SPAN_KIND",
    "CLOCK_KIND",
    "current_span",
    "bind_span",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "snapshot_payload",
    "stats_from_payload",
    "to_prometheus",
    "ChainReport",
    "SpanRecord",
    "StageLog",
    "TraceTree",
    "load_span_log",
    "merge_span_logs",
    "verify_invocation_chains",
]
