"""Metric exposition: Prometheus text format and JSON snapshots.

One :class:`~repro.core.stats.KernelStats` (or its on-wire subclass
:class:`~repro.net.metrics.NetStats`) holds three instrument kinds —
counters, gauges, histograms.  This module renders them:

- :func:`to_prometheus` — the text exposition format scrapers expect:
  counters as ``<ns>_<name>_total``, gauges as ``<ns>_<name>``,
  histograms as ``_bucket{le=...}`` / ``_sum`` / ``_count`` series
  with cumulative bucket counts;
- :func:`snapshot_payload` / :func:`stats_from_payload` — the JSON
  round-trip used by stage dump files, the control protocol and the
  trace-merge tooling.

Metric names are sanitised (every non ``[a-zA-Z0-9_]`` run becomes one
``_``); gauge names carrying an instance qualifier in brackets
(``buffer_occupancy[buf-1]``) are split into a ``name`` plus an
``instance`` label so a fleet's buffers land in one metric family.
"""

from __future__ import annotations

import re
from typing import Any

from repro.core.stats import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    KernelStats,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "to_prometheus",
    "snapshot_payload",
    "stats_from_payload",
]

_SANITISE = re.compile(r"[^a-zA-Z0-9_]+")
_INSTANCE = re.compile(r"^(?P<name>[^\[\]]+)\[(?P<instance>.*)\]$")


def _metric_name(namespace: str, raw: str) -> tuple[str, str]:
    """``(series name, label part)`` for one raw metric name."""
    labels = ""
    match = _INSTANCE.match(raw)
    if match:
        raw = match.group("name")
        labels = '{instance="%s"}' % match.group("instance")
    clean = _SANITISE.sub("_", raw).strip("_")
    return f"{namespace}_{clean}", labels


def _merge_label(labels: str, extra: str) -> str:
    """Fold one more ``k="v"`` pair into a rendered label part."""
    if not labels:
        return "{%s}" % extra
    return labels[:-1] + "," + extra + "}"


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def to_prometheus(stats: KernelStats, namespace: str = "eden") -> str:
    """Render every instrument in ``stats`` as Prometheus text."""
    lines: list[str] = []
    for raw, value in sorted(stats.snapshot().as_dict().items()):
        name, labels = _metric_name(namespace, raw)
        lines.append(f"# TYPE {name}_total counter")
        lines.append(f"{name}_total{labels} {value}")
    for raw, value in sorted(stats.gauges().items()):
        name, labels = _metric_name(namespace, raw)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{labels} {_format_value(value)}")
    for raw, histogram in sorted(stats.histograms().items()):
        name, labels = _metric_name(namespace, raw)
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for edge, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            le = _merge_label(labels, f'le="{_format_value(edge)}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        inf = _merge_label(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf} {histogram.total}")
        lines.append(f"{name}_sum{labels} {_format_value(histogram.sum)}")
        lines.append(f"{name}_count{labels} {histogram.total}")
    return "\n".join(lines) + ("\n" if lines else "")


def snapshot_payload(stats: KernelStats) -> dict[str, Any]:
    """The JSON-safe snapshot of every instrument in ``stats``."""
    return {
        "counters": stats.snapshot().as_dict(),
        "gauges": stats.gauges(),
        "histograms": {
            name: histogram.as_dict()
            for name, histogram in stats.histograms().items()
        },
    }


def stats_from_payload(
    payload: dict[str, Any], into: KernelStats | None = None
) -> KernelStats:
    """Rebuild a stats object from :func:`snapshot_payload` output.

    Validates as it goes: counters must be non-negative integral
    numbers (a float like ``3.0`` is accepted, ``3.5`` is an error —
    never silently truncated), gauges must be numbers, histograms must
    carry matching bounds/counts.  Also accepts the legacy flat
    ``{name: count}`` form older stage dumps used.
    """
    stats = into if into is not None else KernelStats()
    if "counters" not in payload and all(
        not isinstance(value, dict) for value in payload.values()
    ):
        counters = payload  # legacy flat dump
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
    else:
        counters = payload.get("counters", {})
        gauges = payload.get("gauges", {})
        histograms = payload.get("histograms", {})
    for name, value in counters.items():
        stats.bump(str(name), _validated_count(name, value))
    for name, value in gauges.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"gauge {name!r} must be a number, got {value!r}")
        stats.set_gauge(str(name), float(value))
    for name, data in histograms.items():
        if not isinstance(data, dict):
            raise ValueError(f"histogram {name!r} payload must be an object")
        stats.install_histogram(str(name), Histogram.from_dict(data))
    return stats


def _validated_count(name: Any, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"counter {name!r} must be a number, got {value!r}")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(
            f"counter {name!r} must be integral, got {value!r} "
            "(refusing to truncate)"
        )
    count = int(value)
    if count < 0:
        raise ValueError(f"counter {name!r} must be >= 0, got {count}")
    return count
