"""Time-travel debugging: replay a flight capture through the sim kernel.

A full-mode flight capture (:mod:`repro.obs.flight`) holds the exact
wire bytes every stage of a live fleet sent and received.  That is
enough to *re-execute* the fleet deterministically: the source's
outbound DATA/WRITE frames carry the records that entered the stream,
each filter's segment metadata names its transducer, and the sink's
inbound frames say what came out.  :func:`replay_fleet` rebuilds the
pipeline from the capture alone, runs it in the simulated kernel, and
checks the live run against the deterministic one:

- **conformance** — the pull-stream laws hold frame by frame in the
  capture itself (END is the last data-bearing frame per channel and
  direction; no READ is issued after the stream ended);
- **invocations** — the simulator's invocation count equals the number
  of request frames the live fleet actually put on the wire (the
  paper's C1/C2 metric, checked against reality instead of a formula);
- **output** — the simulator reproduces exactly the records the live
  sink accepted, after duplicate suppression;
- **exactly-once** — a *replayed trace* synthesised from the capture
  (one READ span per request/reply pair, carrying the accepted
  ``seq``/``n`` slice) passes
  :func:`repro.obs.merge.verify_exactly_once`, and can be written out
  for ``eden-trace --verify-once``.

Replay needs per-process stage captures (``Pipeline(...,
flight=...)`` or ``eden-stage --flight-dir``) in ``full`` mode;
digest-mode captures still support the conformance pass.  Hosted and
broker captures interleave many stages on one connection and are not
replayable yet — :func:`replay_fleet` refuses them explicitly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.errors import EdenError
from repro.core.tracing import TraceEvent, Tracer
from repro.net.framing import FrameType
from repro.obs.flight import (
    MODE_FULL,
    FlightCapture,
    FlightRecord,
    load_flight_dir,
)
from repro.obs.merge import OnceReport, load_span_log, verify_exactly_once
from repro.obs.spans import CLOCK_KIND, SPAN_KIND

__all__ = [
    "ReplayError",
    "ReplayReport",
    "check_conformance",
    "replay_fleet",
    "replay_flight_dir",
    "synthesize_replay_trace",
]

#: Frame types that carry stream data (END-last law applies to these).
_DATA_TYPES = (FrameType.DATA, FrameType.WRITE)
#: Frame types outside the stream protocol, ignored by the laws.
_META_TYPES = (
    FrameType.HELLO, FrameType.WELCOME, FrameType.CTRL, FrameType.CTRL_REPLY,
)


class ReplayError(EdenError):
    """A capture cannot be replayed (wrong mode, roles, or truncation)."""


def check_conformance(capture: FlightCapture) -> list[str]:
    """Frame-by-frame pull-stream law violations in one capture.

    Two laws, both per logical channel (``chan=None`` is one channel):

    - **END-last**: after an END travels in one direction, no further
      DATA or WRITE frame travels in that direction.  On a stage's
      capture the two directions of ``chan=None`` are its two links
      (inbound data arrives from upstream, outbound data leaves for
      downstream), so the law holds per link even without channel ids.
    - **no-read-after-END**: once a stage has *received* END or ERROR,
      it must not issue another READ — the stream is over.

    Works on digest captures too: direction, type and channel survive
    without payloads.  Returns problem strings (empty means clean).
    """
    problems: list[str] = []
    ended: dict[tuple[Any, str], int] = {}  # (chan, direction) -> index
    closed: dict[Any, int] = {}  # chan -> index of inbound END/ERROR
    for record in capture.records:
        if record.type in _META_TYPES:
            continue
        key = (record.chan, record.direction)
        if record.type is FrameType.END:
            ended.setdefault(key, record.index)
            if not record.outbound:
                closed.setdefault(record.chan, record.index)
            continue
        if record.type is FrameType.ERROR and not record.outbound:
            closed.setdefault(record.chan, record.index)
            continue
        if record.type in _DATA_TYPES and key in ended:
            problems.append(
                f"{capture.label}: {record.type.name} frame #{record.index} "
                f"({record.direction}, chan={record.chan}) after END "
                f"#{ended[key]} — END must be last"
            )
        if (record.type is FrameType.READ and record.outbound
                and record.chan in closed):
            problems.append(
                f"{capture.label}: READ frame #{record.index} "
                f"(chan={record.chan}) issued after the stream ended "
                f"at frame #{closed[record.chan]}"
            )
    return problems


def _accepted_items(
    records: Sequence[FlightRecord],
    direction: str,
    data_type: FrameType,
) -> list[Any]:
    """Stream records crossing a capture in ``direction``, deduplicated.

    Mirrors :class:`~repro.net.protocol.RemoteReadable`'s duplicate
    suppression: when a frame stamps its body with ``seq`` (resuming
    fleets), records below the per-channel cursor are retransmissions
    and are skipped; without a stamp the frames are in order and the
    cursor just advances.
    """
    items: list[Any] = []
    cursors: dict[Any, int] = {}
    for record in records:
        if record.direction != direction or record.type is not data_type:
            continue
        body = record.frame.body
        fresh = list(body.get("items") or ())
        seq = body.get("seq")
        cursor = cursors.get(record.chan, 0)
        if isinstance(seq, int):
            skip = min(len(fresh), max(0, cursor - seq))
            fresh = fresh[skip:]
        cursors[record.chan] = cursor + len(fresh)
        items.extend(fresh)
    return items


def _request_count(capture: FlightCapture, discipline: str) -> int:
    """Outbound request frames in one capture (the invocation metric).

    Requests are counted on the sending side only, so a fleet-wide sum
    over per-stage captures counts each link crossing once.  READs and
    WRITEs are always requests; END is a request only on the push side
    (``end_is_request``), where the writer spends an invocation to
    close the stream — on the pull side END is a reply.
    """
    wanted = {FrameType.READ, FrameType.WRITE}
    if discipline == "writeonly":
        wanted.add(FrameType.END)
    return sum(
        1 for record in capture.records
        if record.outbound and record.type in wanted
    )


def synthesize_replay_trace(
    captures: Sequence[FlightCapture],
    trace_file: str | None = None,
) -> list[TraceEvent]:
    """Turn full-mode captures into span events ``eden-trace`` reads.

    For every capture, each outbound READ is FIFO-matched (per
    channel) to the inbound DATA or END that answered it, producing
    one ``span`` event shaped exactly like the live runtime's
    ``--trace-file`` output — including the accepted ``seq``/``n``
    slice on DATA spans, which is the evidence
    :func:`~repro.obs.merge.verify_exactly_once` tiles.  Push-side
    WRITE→ACK pairs become latency spans without sequence evidence
    (acceptance happens on the reader).  When ``trace_file`` is given
    the events are also written there as JSONL, ready for
    ``eden-trace TRACE --verify-once``.
    """
    events: list[TraceEvent] = []
    serial = 0
    for capture in captures:
        if capture.mode != MODE_FULL:
            raise ReplayError(
                f"{capture.label}: digest-mode capture has no payloads to "
                f"synthesize spans from (record with --flight-mode full)"
            )
        meta = capture.meta
        events.append(TraceEvent(
            time=float(meta.get("created_mono", 0.0)),
            kind=CLOCK_KIND,
            subject=capture.label,
            detail={
                "mono": float(meta.get("created_mono", 0.0)),
                "wall": float(meta.get("created_wall", 0.0)),
            },
        ))
        pending: dict[Any, deque[FlightRecord]] = {}
        cursors: dict[Any, int] = {}
        for record in capture.records:
            if record.outbound and record.type in (
                FrameType.READ, FrameType.WRITE
            ):
                if record.type is FrameType.READ:
                    pending.setdefault((record.chan, "r"), deque()).append(
                        record
                    )
                else:
                    pending.setdefault((record.chan, "w"), deque()).append(
                        record
                    )
                continue
            if record.outbound:
                continue
            if record.type in (FrameType.DATA, FrameType.END):
                queue = pending.get((record.chan, "r"))
                op = "READ"
            elif record.type is FrameType.ACK:
                queue = pending.get((record.chan, "w"))
                op = "WRITE"
            else:
                continue
            if not queue:
                continue  # reply to a request lost to segment rotation
            request = queue.popleft()
            serial += 1
            detail: dict[str, Any] = {
                "trace": f"replay-{serial}",
                "span": f"rp{serial}",
                "parent": None,
                "op": op,
                "start": request.mono,
                "end": record.mono,
                "status": "ok",
            }
            if record.type is FrameType.DATA:
                body = record.frame.body
                fresh = list(body.get("items") or ())
                seq = body.get("seq")
                cursor = cursors.get(record.chan, 0)
                start = cursor
                if isinstance(seq, int):
                    skip = min(len(fresh), max(0, cursor - seq))
                    start = seq + skip
                    fresh = fresh[skip:]
                cursors[record.chan] = start + len(fresh)
                detail["seq"] = start
                detail["n"] = len(fresh)
            events.append(TraceEvent(
                time=record.mono,
                kind=SPAN_KIND,
                subject=capture.label,
                detail=detail,
            ))
    if trace_file is not None:
        tracer = Tracer(enabled=True)
        for event in events:
            tracer.emit(event.time, event.kind, event.subject, **event.detail)
        tracer.to_jsonl(trace_file)
    return events


@dataclass
class ReplayReport:
    """What deterministic replay of one captured fleet established."""

    #: Stage labels in pipeline order (source first).
    stages: list[str] = field(default_factory=list)
    discipline: str = "readonly"
    #: Records the live source put on the wire (after dedup).
    items: int = 0
    #: Request frames the live fleet sent (READs + WRITEs + pushed ENDs).
    captured_invocations: int = 0
    #: Invocations the deterministic re-execution used.
    replayed_invocations: int = 0
    #: The re-executed pipeline's output records.
    output: list[Any] = field(default_factory=list)
    #: Exactly-once verdict over the synthesised replay trace.
    once: OnceReport | None = None
    #: Where the replayed trace was written, if requested.
    trace_file: str | None = None
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "DETERMINISTIC" if self.ok else "DIVERGED"
        lines = [
            f"{verdict}: {len(self.stages)}-stage {self.discipline} fleet, "
            f"{self.items} records",
            f"  invocations: captured {self.captured_invocations}, "
            f"replayed {self.replayed_invocations}",
            f"  output: {len(self.output)} records from replay",
        ]
        if self.once is not None:
            lines.append("  " + self.once.summary().splitlines()[0])
        lines.extend(f"  - {problem}" for problem in self.problems)
        return "\n".join(lines)


def replay_fleet(
    captures: Sequence[FlightCapture],
    trace_file: str | None = None,
) -> ReplayReport:
    """Re-execute a captured fleet in the sim kernel and compare.

    See the module docstring for what is checked.  Raises
    :class:`ReplayError` when the captures cannot drive a replay at
    all (digest mode, missing roles, hosted/broker captures, rotation
    losses); divergences between the live run and the deterministic
    one are *reported*, not raised.
    """
    report = ReplayReport(trace_file=trace_file)
    by_role: dict[str, list[FlightCapture]] = {}
    for capture in captures:
        by_role.setdefault(str(capture.meta.get("role", "")), []).append(
            capture
        )
    for bad in ("host", "broker"):
        if bad in by_role:
            labels = ", ".join(c.label for c in by_role[bad])
            raise ReplayError(
                f"replay needs per-process stage captures; {labels} is a "
                f"{bad} capture interleaving many stages on one connection"
            )
    for role in ("source", "sink"):
        if len(by_role.get(role, [])) != 1:
            raise ReplayError(
                f"replay needs exactly one {role} capture, found "
                f"{len(by_role.get(role, []))} (is this a complete, "
                f"unsharded --flight-dir?)"
            )
    for capture in captures:
        if capture.mode != MODE_FULL:
            raise ReplayError(
                f"{capture.label}: digest-mode capture cannot be replayed "
                f"(record with --flight-mode full)"
            )
        if capture.truncated or capture.rotated:
            raise ReplayError(
                f"{capture.label}: capture lost frames to "
                f"{'truncation' if capture.truncated else 'rotation'}; "
                f"replay needs the complete stream (raise segment bounds)"
            )

    source = by_role["source"][0]
    sink = by_role["sink"][0]
    filters = sorted(
        by_role.get("filter", []),
        key=lambda c: int(c.meta.get("serial", 0)),
    )
    ordered = [source, *filters, sink]
    report.stages = [capture.label for capture in ordered]
    report.discipline = str(source.meta.get("discipline", "readonly"))
    data_type = (
        FrameType.WRITE if report.discipline == "writeonly" else FrameType.DATA
    )

    for capture in ordered:
        report.problems.extend(check_conformance(capture))

    items = _accepted_items(source.records, "out", data_type)
    delivered = _accepted_items(sink.records, "in", data_type)
    report.items = len(items)
    report.captured_invocations = sum(
        _request_count(capture, report.discipline) for capture in ordered
    )

    specs = []
    for capture in filters:
        spec = capture.meta.get("transducer_spec")
        if not spec:
            raise ReplayError(
                f"{capture.label}: capture metadata names no transducer "
                f"(recorded by an older build?)"
            )
        specs.append((str(spec), list(capture.meta.get("transducer_args", ()))))
    batch = int(sink.meta.get("batch", 1))

    from repro.api import Pipeline  # local: api imports obs lazily, not us

    result = Pipeline(
        specs, discipline=report.discipline, source=items,
    ).run(runtime="sim", batch=batch)
    report.output = result.output
    report.replayed_invocations = result.invocations

    if result.invocations != report.captured_invocations:
        report.problems.append(
            f"invocation divergence: live fleet sent "
            f"{report.captured_invocations} requests, deterministic replay "
            f"used {result.invocations}"
        )
    if result.output != delivered:
        report.problems.append(
            f"output divergence: replay produced {len(result.output)} "
            f"records, live sink accepted {len(delivered)}"
            + ("" if len(result.output) != len(delivered) else
               " (same count, different records)")
        )

    events = synthesize_replay_trace(ordered, trace_file=trace_file)
    # One log is enough: verify_exactly_once groups evidence by each
    # span's own stage label, exactly as for a hosted fleet's file.
    report.once = verify_exactly_once([load_span_log(events)])
    report.problems.extend(
        f"replayed trace: {problem}" for problem in report.once.problems
    )
    return report


def replay_flight_dir(
    flight_dir: str,
    trace_file: str | None = None,
) -> ReplayReport:
    """:func:`replay_fleet` over every capture in one ``--flight-dir``."""
    return replay_fleet(load_flight_dir(flight_dir), trace_file=trace_file)
