"""``eden-flight``: inspect, diff and replay flight-recorder captures.

Point it at the ``--flight-dir`` of a finished (or crashed) fleet:

- default — one summary line per stage capture (mode, frames in/out,
  bytes, truncation), or the same as JSON with ``--json``;
- ``--timeline`` — every stage's frames merged onto one clock-skew-
  corrected timeline.  Stages record on their own monotonic clocks;
  the correction matches frames *across* captures by CRC-32 digest (a
  frame is on the wire before it is received) and intersects the
  resulting offset intervals exactly as the span merger's causal pass
  does (:func:`repro.obs.merge.solve_offsets`);
- ``--latency`` — per-stage READ→DATA decomposition: how long each
  stage waited for its upstream (client RTT) versus how long it took
  to serve its downstream (server service time); the gap between a
  link's RTT and its server's service time is wire and queueing;
- ``--diff A B`` — compare two captures stage by stage and report the
  first diverging frame (works across full and digest modes, since
  every record carries a digest);
- ``--replay`` — feed the capture back through the deterministic sim
  kernel (:mod:`repro.obs.replay`) and check invocation counts,
  exactly-once output and the pull-stream laws; ``--trace-out FILE``
  additionally writes the synthesised replay trace for
  ``eden-trace FILE --verify-once``.  Exits non-zero on divergence.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from typing import Any, Sequence

from repro.net.framing import FrameType
from repro.obs.flight import (
    FlightCapture,
    FlightError,
    FlightRecord,
    load_flight_dir,
)
from repro.obs.merge import solve_offsets

__all__ = ["main"]


def _quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


# -- summary -----------------------------------------------------------------


def _summary_lines(captures: list[FlightCapture]) -> list[str]:
    lines = [
        f"{'STAGE':<28} {'MODE':<7} {'FRAMES':>7} {'OUT':>6} {'IN':>6} "
        f"{'BYTES':>10}  FLAGS"
    ]
    for capture in captures:
        info = capture.summary()
        flags = ",".join(
            name for name in ("truncated", "rotated") if info[name]
        ) or "-"
        lines.append(
            f"{info['label']:<28} {info['mode']:<7} {info['frames']:>7} "
            f"{info['frames_out']:>6} {info['frames_in']:>6} "
            f"{info['bytes']:>10}  {flags}"
        )
    return lines


# -- the skew-corrected timeline ---------------------------------------------


def _capture_offsets(captures: list[FlightCapture]) -> dict[str, float]:
    """Per-capture wall-clock corrections from digest-matched frames.

    A frame that appears exactly once among capture A's sent records
    and once among capture B's received records was (almost certainly)
    that very frame in flight, so B received it *after* A sent it:
    ``recv + off_B >= sent + off_A``.  Identical payloads relayed
    further down a pipeline only ever produce looser versions of the
    same bound — an upstream copy was sent earlier still — so spurious
    matches cannot tighten the interval wrongly.  Repeated digests
    (e.g. every ``READ {"n": 1}``) are ambiguous and simply skipped.
    """
    once_sent: list[dict[int, FlightRecord | None]] = []
    once_received: list[dict[int, FlightRecord | None]] = []
    for capture in captures:
        for box, records in (
            (once_sent, capture.sent()), (once_received, capture.received()),
        ):
            unique: dict[int, FlightRecord | None] = {}
            for record in records:
                unique[record.digest] = (
                    record if record.digest not in unique else None
                )
            box.append(unique)
    bounds: dict[tuple[str, str], list[float]] = {}
    for i, sender in enumerate(captures):
        for j, receiver in enumerate(captures):
            if i == j:
                continue
            for digest, sent in once_sent[i].items():
                if sent is None:
                    continue
                received = once_received[j].get(digest)
                if received is None:
                    continue
                entry = bounds.setdefault(
                    (sender.label, receiver.label),
                    [float("-inf"), float("inf")],
                )
                entry[0] = max(entry[0], sent.wall - received.wall)
    if not bounds:
        return {}
    start = max(captures, key=lambda c: len(c.records)).label
    return solve_offsets(bounds, start)


def _timeline_lines(captures: list[FlightCapture], limit: int) -> list[str]:
    offsets = _capture_offsets(captures)
    rows: list[tuple[float, str]] = []
    for capture in captures:
        offset = offsets.get(capture.label, 0.0)
        for record in capture.records:
            wall = record.wall + offset
            arrow = "->" if record.outbound else "<-"
            chan = "" if record.chan is None else f" chan={record.chan}"
            rows.append((wall, (
                f"{capture.label:<28} {arrow} {record.type.name:<7}"
                f"{chan} {record.wire_bytes}B"
            )))
    rows.sort(key=lambda row: row[0])
    origin = rows[0][0] if rows else 0.0
    shown = rows if limit <= 0 else rows[-limit:]
    lines = [f"{len(rows)} frames across {len(captures)} stages"
             + (f" (last {len(shown)})" if len(shown) < len(rows) else "")]
    lines.extend(
        f"+{(wall - origin) * 1000.0:10.3f}ms  {text}" for wall, text in shown
    )
    return lines


# -- latency decomposition ---------------------------------------------------


def _paired_latencies(
    capture: FlightCapture, client_side: bool
) -> list[float]:
    """FIFO request→reply durations (seconds) on one side of a stage.

    Client side: this stage's outbound READ/WRITE to the DATA/END/ACK
    that answered it (full round trip).  Server side: an inbound
    READ/WRITE to this stage's answering outbound frame (service time
    only).  Matching is per channel, in capture order — exactly the
    protocol's own FIFO reply discipline.
    """
    requests = (FrameType.READ, FrameType.WRITE)
    replies = (FrameType.DATA, FrameType.END, FrameType.ACK)
    pending: dict[Any, deque[FlightRecord]] = {}
    durations: list[float] = []
    for record in capture.records:
        if record.type in requests and record.outbound == client_side:
            pending.setdefault(record.chan, deque()).append(record)
        elif record.type in replies and record.outbound != client_side:
            queue = pending.get(record.chan)
            if queue:
                durations.append(record.mono - queue.popleft().mono)
    return durations


def _latency_lines(captures: list[FlightCapture]) -> list[str]:
    lines = [
        f"{'STAGE':<28} {'SIDE':<7} {'PAIRS':>6} {'P50 ms':>9} "
        f"{'P95 ms':>9} {'MAX ms':>9}"
    ]
    for capture in captures:
        for side, client in (("client", True), ("server", False)):
            durations = _paired_latencies(capture, client)
            if not durations:
                continue
            ms = [d * 1000.0 for d in durations]
            lines.append(
                f"{capture.label:<28} {side:<7} {len(ms):>6} "
                f"{_quantile(ms, 0.5):>9.3f} {_quantile(ms, 0.95):>9.3f} "
                f"{max(ms):>9.3f}"
            )
    lines.append(
        "client = READ issued to reply received (includes the wire); "
        "server = READ received to reply sent"
    )
    return lines


# -- capture diffing ---------------------------------------------------------


def _record_key(record: FlightRecord) -> tuple[Any, ...]:
    return (record.direction, record.type.name, record.chan, record.digest)


def _diff_lines(dir_a: str, dir_b: str) -> tuple[int, list[str]]:
    captures_a = {c.label: c for c in load_flight_dir(dir_a)}
    captures_b = {c.label: c for c in load_flight_dir(dir_b)}
    lines: list[str] = []
    divergent = 0
    for label in sorted(set(captures_a) | set(captures_b)):
        a, b = captures_a.get(label), captures_b.get(label)
        if a is None or b is None:
            lines.append(
                f"{label}: only in {dir_b if a is None else dir_a}"
            )
            divergent += 1
            continue
        for index, (ra, rb) in enumerate(zip(a.records, b.records)):
            ka, kb = _record_key(ra), _record_key(rb)
            if ka != kb:
                lines.append(
                    f"{label}: frame #{index} diverges: "
                    f"{ka[0]} {ka[1]} chan={ka[2]} crc={ka[3]:08x} vs "
                    f"{kb[0]} {kb[1]} chan={kb[2]} crc={kb[3]:08x}"
                )
                divergent += 1
                break
        else:
            if len(a.records) != len(b.records):
                lines.append(
                    f"{label}: {len(a.records)} frames vs {len(b.records)} "
                    f"(common prefix matches)"
                )
                divergent += 1
            else:
                lines.append(f"{label}: identical ({len(a.records)} frames)")
    return divergent, lines


# -- entry point -------------------------------------------------------------


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="eden-flight",
        description="Inspect, diff and replay flight-recorder captures.",
    )
    parser.add_argument("flight_dir", nargs="?", metavar="FLIGHT_DIR")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable capture summaries")
    parser.add_argument("--timeline", action="store_true",
                        help="merge every stage's frames onto one "
                             "skew-corrected timeline")
    parser.add_argument("--limit", type=int, default=40, metavar="N",
                        help="timeline rows to show (0 = all; default 40)")
    parser.add_argument("--latency", action="store_true",
                        help="per-stage request->reply latency decomposition")
    parser.add_argument("--diff", nargs=2, default=None,
                        metavar=("DIR_A", "DIR_B"),
                        help="compare two flight directories frame by frame")
    parser.add_argument("--replay", action="store_true",
                        help="re-execute the capture in the sim kernel and "
                             "verify invocations, output and exactly-once")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="with --replay: write the synthesised replay "
                             "trace (eden-trace FILE --verify-once)")
    options = parser.parse_args(argv)

    try:
        if options.diff is not None:
            divergent, lines = _diff_lines(*options.diff)
            print("\n".join(lines))
            return 1 if divergent else 0
        if options.flight_dir is None:
            parser.error("give a FLIGHT_DIR (or --diff DIR_A DIR_B)")
        if options.replay:
            from repro.obs.replay import ReplayError, replay_flight_dir

            try:
                report = replay_flight_dir(
                    options.flight_dir, trace_file=options.trace_out
                )
            except ReplayError as error:
                print(f"eden-flight: cannot replay: {error}", file=sys.stderr)
                return 1
            print(report.summary())
            if options.trace_out:
                print(f"replayed trace written to {options.trace_out}")
            return 0 if report.ok else 1
        captures = load_flight_dir(options.flight_dir)
        if options.timeline:
            print("\n".join(_timeline_lines(captures, options.limit)))
        elif options.latency:
            print("\n".join(_latency_lines(captures)))
        elif options.json:
            print(json.dumps(
                [capture.summary() for capture in captures],
                indent=2, sort_keys=True,
            ))
        else:
            print("\n".join(_summary_lines(captures)))
        return 0
    except FlightError as error:
        print(f"eden-flight: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
