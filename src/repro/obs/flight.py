"""The flight recorder: bounded capture of every frame a stage moves.

Spans and counters say *how much* crossed a link; the paper's argument
is about *what* crossed it.  A :class:`FlightRecorder` tees the raw
wire form of every frame a runtime sends or receives — at the
:class:`~repro.net.protocol.Connection` / :mod:`repro.net.mux` layer,
where the pooled encode buffers and decoder views already hold the
bytes, so capture adds no extra copy — into rotating per-stage
*segment files* under one ``--flight-dir``.  The capture is bounded
(``segment_bytes`` × ``max_segments``, oldest segment dropped first)
so it can stay on in production, and it has two fidelities:

- ``full`` — each record carries the frame's complete wire bytes.
  Decoding a capture reproduces the exact frames (bit-exact, any
  codec mix), which is what the deterministic replay engine
  (:mod:`repro.obs.replay`) feeds back through the sim kernel.
- ``digest`` — each record carries only a CRC-32 of the wire bytes.
  Direction, type, channel, timestamps and sizes survive — enough
  for timelines, conformance checks and capture diffing — at a cost
  low enough for hot paths (benchmark T16 gates it at <= 5 %).

Segment layout (all integers big-endian)::

    +--------+----------+--------------------+---------------------+
    | b"EFL1"| meta len | meta JSON          | records ...         |
    | 4 B    | 4 B      | meta-len bytes     |                     |
    +--------+----------+--------------------+---------------------+

    record:  flags(1) type(1) mono(8,f64) wire_len(4) [chan(4)] payload

``flags`` bit 0 = outbound, bit 1 = digest payload, bit 2 = channel id
present.  ``payload`` is the wire bytes (``wire_len`` of them) in full
mode, or a 4-byte CRC-32 in digest mode.  The metadata JSON anchors
the segment's monotonic clock to the wall clock (the same
``mono``/``wall`` pairing span logs use), and carries whatever the
recording runtime knows about itself — role, discipline, serial,
transducer spec — which is what lets the replay engine rebuild the
pipeline from the capture alone.

A segment whose final record was cut off mid-write (the process died)
loads cleanly: the loader keeps every complete record and flags the
capture ``truncated`` instead of raising.
"""

from __future__ import annotations

import json
import pathlib
import re
import struct
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.errors import EdenError
from repro.net.framing import Frame, FrameType, decode_frame

__all__ = [
    "FLIGHT_MAGIC",
    "FLIGHT_MODES",
    "MODE_FULL",
    "MODE_DIGEST",
    "DEFAULT_SEGMENT_BYTES",
    "DEFAULT_MAX_SEGMENTS",
    "FlightError",
    "FlightRecorder",
    "FlightRecord",
    "FlightCapture",
    "frame_digest",
    "load_segment",
    "load_capture",
    "load_flight_dir",
]

#: Segment-file identifier + version, first in every segment.
FLIGHT_MAGIC = b"EFL1"

#: Full-fidelity capture: records carry complete wire bytes.
MODE_FULL = "full"
#: Hot-path capture: records carry a CRC-32 of the wire bytes.
MODE_DIGEST = "digest"
#: Every capture fidelity the recorder speaks.
FLIGHT_MODES = (MODE_FULL, MODE_DIGEST)

#: Default rotation threshold per segment file.
DEFAULT_SEGMENT_BYTES = 8 * 1024 * 1024
#: Default segment count bound; the oldest segment is dropped first.
DEFAULT_MAX_SEGMENTS = 8

#: Record header: flags, raw type byte, monotonic time, wire length.
_REC = struct.Struct("!BBdI")
#: Optional channel-id extension following the record header.
_CHAN = struct.Struct("!I")
#: Segment metadata length prefix.
_META_LEN = struct.Struct("!I")

_OUT_BIT = 0x01
_DIGEST_BIT = 0x02
_CHAN_BIT = 0x04

#: Wire-header offsets the recorder parses without decoding bodies
#: (see :mod:`repro.net.framing`: magic 4, type 1, body length 4).
_TYPE_OFFSET = 4
_WIRE_CHAN_OFFSET = 9
_WIRE_CHAN_FLAG = 0x40


class FlightError(EdenError):
    """A flight segment could not be written or loaded."""


def frame_digest(data: Any) -> int:
    """CRC-32 of one frame's wire bytes (the digest-mode payload)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def _safe_label(label: str) -> str:
    """A filesystem-safe directory name for a stage label."""
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", label) or "stage"


class FlightRecorder:
    """Append frame events to rotating segment files, bounded.

    One recorder per process (or per stage), shared by every
    connection and mux channel the stage owns; asyncio's single-thread
    model makes the interleaved appends safe.  ``meta`` is embedded in
    every segment header — pass whatever a replayer needs to rebuild
    the stage (role, discipline, serial, transducer spec).

    When ``stats`` is given, the recorder keeps ``flight_frames``,
    ``flight_bytes`` (wire bytes captured) and ``flight_segments``
    gauges fresh, which is what ``eden-top``'s FLIGHT column renders.
    """

    def __init__(
        self,
        directory: str,
        label: str,
        mode: str = MODE_FULL,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
        meta: dict[str, Any] | None = None,
        stats: Any = None,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if mode not in FLIGHT_MODES:
            raise ValueError(
                f"flight mode must be one of {FLIGHT_MODES}, got {mode!r}"
            )
        if segment_bytes < 1024:
            raise ValueError(
                f"segment_bytes must be >= 1024, got {segment_bytes}"
            )
        if max_segments < 1:
            raise ValueError(f"max_segments must be >= 1, got {max_segments}")
        self.label = label
        self.mode = mode
        self.segment_bytes = segment_bytes
        self.max_segments = max_segments
        self.meta = dict(meta or {})
        self.stats = stats
        self.clock = clock
        self.wall_clock = wall_clock
        self.path = pathlib.Path(directory) / _safe_label(label)
        self.path.mkdir(parents=True, exist_ok=True)
        self.frames = 0
        self.bytes_captured = 0
        self.segments_written = 0
        #: Wall seconds spent inside :meth:`record` — the recorder's
        #: directly-attributed cost, published as ``flight_record_ms``
        #: and gated by the T16 benchmark.  The accumulator includes
        #: its own clock reads, so it over- rather than under-counts.
        self.record_seconds = 0.0
        self._digest = mode == MODE_DIGEST
        self._out: Any = None
        self._segment_size = 0
        self._segment_paths: list[pathlib.Path] = []
        self._closed = False
        # Pre-bound for the per-frame path (T16 gates it at <= 5 %).
        self._pack_rec = _REC.pack
        self._pack_chan = _CHAN.pack
        self._crc32 = zlib.crc32
        self._mode_bit = _DIGEST_BIT if self._digest else 0

    # -- the hot path --------------------------------------------------------

    def on_sent(self, data: Any) -> None:
        """Record one outbound frame's wire bytes (no copy taken)."""
        self.record(True, data)

    def on_received(self, data: Any) -> None:
        """Record one inbound frame's wire bytes (no copy taken)."""
        self.record(False, data)

    def record(self, outbound: bool, data: Any) -> None:
        """Append one frame event; ``data`` is the full wire form."""
        if self._closed:
            return
        mono = self.clock()
        wire_len = len(data)
        type_byte = data[_TYPE_OFFSET] if wire_len > _TYPE_OFFSET else 0
        flags = self._mode_bit | (_OUT_BIT if outbound else 0)
        # The channel id is lifted off the wire header here because a
        # digest payload cannot recover it at load time.  ``data`` may
        # be a memoryview borrowing an encoder or decoder buffer, so
        # the 4-byte chan slice is materialised with bytes().
        if type_byte & _WIRE_CHAN_FLAG:
            head = self._pack_rec(
                flags | _CHAN_BIT, type_byte, mono, wire_len,
            ) + bytes(data[_WIRE_CHAN_OFFSET : _WIRE_CHAN_OFFSET + 4])
        else:
            head = self._pack_rec(flags, type_byte, mono, wire_len)
        digest = self._digest
        record_size = len(head) + (4 if digest else wire_len)
        out = self._out
        if out is None or (
            self._segment_size
            and self._segment_size + record_size > self.segment_bytes
        ):
            self._rotate()
            out = self._out
        if digest:
            # One buffered write: header and 4-byte CRC concatenated.
            out.write(head + self._pack_chan(self._crc32(data) & 0xFFFFFFFF))
        else:
            out.write(head)
            out.write(data)
        self._segment_size += record_size
        self.frames += 1
        self.bytes_captured += wire_len
        self.record_seconds += self.clock() - mono
        # Gauges feed eden-top's FLIGHT column; refreshing them every
        # frame costs three dict stores on the hot path, so publish
        # every 256 frames (and on flush/close, so nothing is stale
        # when anyone actually looks).
        if self.stats is not None and not self.frames & 0xFF:
            self._publish_gauges()

    def _publish_gauges(self) -> None:
        if self.stats is None:
            return
        self.stats.set_gauge("flight_frames", float(self.frames))
        self.stats.set_gauge("flight_bytes", float(self.bytes_captured))
        self.stats.set_gauge(
            "flight_segments", float(len(self._segment_paths))
        )
        self.stats.set_gauge(
            "flight_record_ms", self.record_seconds * 1000.0
        )

    # -- segment management --------------------------------------------------

    def _rotate(self) -> None:
        if self._out is not None:
            self._out.close()
        self.segments_written += 1
        path = self.path / f"seg-{self.segments_written:06d}.efl"
        header = json.dumps(
            {
                "label": self.label,
                "mode": self.mode,
                "segment": self.segments_written,
                "created_mono": self.clock(),
                "created_wall": self.wall_clock(),
                **self.meta,
            },
            sort_keys=True, separators=(",", ":"),
        ).encode("utf-8")
        self._out = open(path, "wb")
        self._out.write(FLIGHT_MAGIC)
        self._out.write(_META_LEN.pack(len(header)))
        self._out.write(header)
        self._segment_size = 0
        self._segment_paths.append(path)
        while len(self._segment_paths) > self.max_segments:
            oldest = self._segment_paths.pop(0)
            try:
                oldest.unlink()
            except OSError:
                pass

    def flush(self) -> None:
        """Push buffered records to disk (the OS may still hold them)."""
        self._publish_gauges()
        if self._out is not None:
            self._out.flush()

    def close(self) -> None:
        """Flush and stop recording; further records are dropped."""
        if self._closed:
            return
        self._closed = True
        self._publish_gauges()
        if self._out is not None:
            self._out.close()
            self._out = None

    # -- introspection -------------------------------------------------------

    @property
    def segment_count(self) -> int:
        """Segments currently on disk."""
        return len(self._segment_paths)

    def describe(self) -> dict[str, Any]:
        """The ``health`` payload's ``flight`` entry."""
        return {
            "mode": self.mode,
            "dir": str(self.path),
            "frames": self.frames,
            "bytes": self.bytes_captured,
            "segments": len(self._segment_paths),
            "record_ms": round(self.record_seconds * 1000.0, 3),
        }


# ---------------------------------------------------------------------------
# Loading captures back.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlightRecord:
    """One captured frame event, decoded from a segment file.

    Attributes:
        index: position in the stage's capture (load order).
        direction: ``"out"`` (the stage sent it) or ``"in"``.
        mono: the recording process's monotonic timestamp.
        wall: ``mono`` mapped onto the wall clock via the segment's
            anchor — comparable across stages after skew correction.
        type: the frame's :class:`~repro.net.framing.FrameType`.
        chan: logical-channel id, or ``None`` outside a mux.
        wire_bytes: the frame's full on-wire size.
        digest: CRC-32 of the wire bytes (computed either way).
        payload: the complete wire bytes (``None`` in digest mode).
    """

    index: int
    direction: str
    mono: float
    wall: float
    type: FrameType
    chan: int | None
    wire_bytes: int
    digest: int
    payload: bytes | None = None

    @property
    def frame(self) -> Frame:
        """The decoded frame (full-mode captures only)."""
        if self.payload is None:
            raise FlightError(
                "digest-mode record carries no payload to decode"
            )
        frame, _used = decode_frame(self.payload)
        return frame

    @property
    def outbound(self) -> bool:
        return self.direction == "out"


@dataclass
class FlightCapture:
    """One stage's loaded capture: ordered records plus metadata."""

    label: str
    meta: dict[str, Any] = field(default_factory=dict)
    records: list[FlightRecord] = field(default_factory=list)
    #: True when a segment's tail record was cut off mid-write.
    truncated: bool = False
    #: True when rotation dropped the capture's oldest segment(s).
    rotated: bool = False

    @property
    def mode(self) -> str:
        return str(self.meta.get("mode", MODE_FULL))

    def sent(self) -> list[FlightRecord]:
        return [record for record in self.records if record.outbound]

    def received(self) -> list[FlightRecord]:
        return [record for record in self.records if not record.outbound]

    @property
    def wire_bytes(self) -> int:
        return sum(record.wire_bytes for record in self.records)

    def summary(self) -> dict[str, Any]:
        sent = self.sent()
        received = self.received()
        return {
            "label": self.label,
            "mode": self.mode,
            "frames": len(self.records),
            "frames_out": len(sent),
            "frames_in": len(received),
            "bytes": self.wire_bytes,
            "truncated": self.truncated,
            "rotated": self.rotated,
        }


def _iter_segment(raw: bytes, path: str) -> Iterator[tuple[dict, Any]]:
    """Yield ``(meta, record-or-None)``; ``None`` flags truncation."""
    if len(raw) < len(FLIGHT_MAGIC) + _META_LEN.size:
        raise FlightError(f"{path}: too short for a segment header")
    if raw[: len(FLIGHT_MAGIC)] != FLIGHT_MAGIC:
        raise FlightError(
            f"{path}: bad magic {raw[:len(FLIGHT_MAGIC)]!r} "
            f"(expected {FLIGHT_MAGIC!r})"
        )
    offset = len(FLIGHT_MAGIC)
    meta_len = _META_LEN.unpack_from(raw, offset)[0]
    offset += _META_LEN.size
    if offset + meta_len > len(raw):
        raise FlightError(f"{path}: truncated segment metadata")
    try:
        meta = json.loads(raw[offset : offset + meta_len].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise FlightError(f"{path}: undecodable metadata: {error}") from error
    offset += meta_len
    anchor = float(meta.get("created_wall", 0.0)) - float(
        meta.get("created_mono", 0.0)
    )
    while offset < len(raw):
        if offset + _REC.size > len(raw):
            yield meta, None
            return
        flags, type_code, mono, wire_len = _REC.unpack_from(raw, offset)
        offset += _REC.size
        chan: int | None = None
        if flags & _CHAN_BIT:
            if offset + _CHAN.size > len(raw):
                yield meta, None
                return
            chan = _CHAN.unpack_from(raw, offset)[0]
            offset += _CHAN.size
        payload_len = _CHAN.size if flags & _DIGEST_BIT else wire_len
        if offset + payload_len > len(raw):
            yield meta, None
            return
        payload = raw[offset : offset + payload_len]
        offset += payload_len
        try:
            frame_type = FrameType(type_code & 0x3F)
        except ValueError as error:
            raise FlightError(
                f"{path}: unknown frame type {type_code & 0x3F}"
            ) from error
        if flags & _DIGEST_BIT:
            digest = _CHAN.unpack(payload)[0]
            body = None
        else:
            digest = frame_digest(payload)
            body = payload
        yield meta, FlightRecord(
            index=0,
            direction="out" if flags & _OUT_BIT else "in",
            mono=mono,
            wall=mono + anchor,
            type=frame_type,
            chan=chan,
            wire_bytes=wire_len,
            digest=digest,
            payload=body,
        )


def load_segment(path: str) -> tuple[dict[str, Any], list[FlightRecord], bool]:
    """Load one segment file: ``(meta, records, truncated)``."""
    with open(path, "rb") as handle:
        raw = handle.read()
    meta: dict[str, Any] = {}
    records: list[FlightRecord] = []
    truncated = False
    for meta, record in _iter_segment(raw, str(path)):
        if record is None:
            truncated = True
            break
        records.append(record)
    return meta, records, truncated


def load_capture(stage_dir: str) -> FlightCapture:
    """Load one stage's capture directory into a :class:`FlightCapture`."""
    directory = pathlib.Path(stage_dir)
    segment_paths = sorted(directory.glob("seg-*.efl"))
    if not segment_paths:
        raise FlightError(f"no flight segments under {directory}")
    capture = FlightCapture(label=directory.name)
    first_segment = None
    for path in segment_paths:
        meta, records, truncated = load_segment(str(path))
        if not capture.meta:
            capture.meta = meta
            capture.label = str(meta.get("label", capture.label))
            first_segment = int(meta.get("segment", 1))
        capture.records.extend(records)
        capture.truncated = capture.truncated or truncated
    if first_segment is not None and first_segment > 1:
        capture.rotated = True
    capture.records = [
        FlightRecord(
            index=i, direction=r.direction, mono=r.mono, wall=r.wall,
            type=r.type, chan=r.chan, wire_bytes=r.wire_bytes,
            digest=r.digest, payload=r.payload,
        )
        for i, r in enumerate(capture.records)
    ]
    return capture


def load_flight_dir(flight_dir: str) -> list[FlightCapture]:
    """Load every stage capture under one ``--flight-dir``."""
    root = pathlib.Path(flight_dir)
    if not root.is_dir():
        raise FlightError(f"no such flight directory: {root}")
    captures = []
    for child in sorted(root.iterdir()):
        if child.is_dir() and any(child.glob("seg-*.efl")):
            captures.append(load_capture(str(child)))
    if not captures:
        raise FlightError(f"no flight captures under {root}")
    return captures
