"""``eden-trace``: merge per-stage span logs into end-to-end traces.

Feed it the ``--trace-file`` JSONL logs of a fleet (or a ``fleet.json``
manifest) and it aligns their clocks, stitches the causal chains, and
reports per-datum latency.  Modes:

- default — a summary: trace count, spans per trace, end-to-end
  latency spread, and the slowest datum's critical path;
- ``--list`` — one line per trace (id, spans, end-to-end);
- ``--trace ID`` — the full causal chain of one trace, hop by hop;
- ``--verify DISCIPLINE N_FILTERS ITEMS`` — check the paper's C1/C2
  claims structurally (exactly ``ceil(items/batch) + 1`` traces of
  exactly n+1 — or 2n+2 — chained request spans) and exit non-zero on
  any mismatch, so scripts and CI can gate on it;
- ``--verify-once [ITEMS]`` — check exactly-once delivery from the
  sequence evidence resuming readers stamp on their READ spans: per
  reading stage, the accepted slices must tile the stream with no
  overlap (duplicate) and no gap (loss), even across kills and
  reconnects.  Exit non-zero on any violation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.obs.merge import (
    TraceTree,
    load_span_log,
    merge_span_logs,
    verify_exactly_once,
    verify_invocation_chains,
)

__all__ = ["main"]


def _quantile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _summary(trees: list[TraceTree]) -> str:
    if not trees:
        return "no spans found"
    latencies = [tree.end_to_end * 1000.0 for tree in trees]
    sizes = sorted({tree.span_count for tree in trees})
    lines = [
        f"traces: {len(trees)}",
        f"spans per trace: {'/'.join(str(size) for size in sizes)}",
        (
            f"end-to-end latency ms: min {min(latencies):.3f}  "
            f"p50 {_quantile(latencies, 0.5):.3f}  "
            f"p95 {_quantile(latencies, 0.95):.3f}  "
            f"max {max(latencies):.3f}"
        ),
    ]
    slowest = max(trees, key=lambda tree: tree.end_to_end)
    lines.append(f"slowest trace {slowest.trace} critical path:")
    lines.extend(_chain_lines(slowest))
    return "\n".join(lines)


def _chain_lines(tree: TraceTree) -> list[str]:
    origin = tree.start
    return [
        (
            f"  {record.stage:<28} {record.op:<6} "
            f"+{(record.start - origin) * 1000.0:8.3f}ms  "
            f"dur {record.duration * 1000.0:8.3f}ms  "
            f"span {record.span}"
        )
        for record in tree.critical_path()
    ]


def _show_trace(trees: list[TraceTree], trace_id: str) -> tuple[int, str]:
    for tree in trees:
        if tree.trace == trace_id:
            header = (
                f"trace {tree.trace}: {tree.span_count} spans, "
                f"end-to-end {tree.end_to_end * 1000.0:.3f}ms"
            )
            return 0, "\n".join([header] + _chain_lines(tree))
    known = ", ".join(tree.trace for tree in trees[:10])
    return 1, f"no trace {trace_id!r} (first traces: {known})"


def _trace_files(options: argparse.Namespace,
                 parser: argparse.ArgumentParser) -> list[str]:
    files = list(options.files)
    if options.fleet:
        with open(options.fleet, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        files += [
            stage["trace_file"]
            for stage in manifest.get("stages", [])
            if stage.get("trace_file")
        ]
    if not files:
        parser.error("no trace files: give paths or --fleet")
    return files


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="eden-trace",
        description="Merge per-stage span logs into end-to-end traces.",
    )
    parser.add_argument("files", nargs="*", metavar="TRACE_JSONL")
    parser.add_argument("--fleet", default=None, metavar="FLEET_JSON",
                        help="read trace-file paths from a fleet manifest")
    parser.add_argument("--list", action="store_true", dest="list_traces",
                        help="one line per merged trace")
    parser.add_argument("--trace", default=None, metavar="ID",
                        help="show one trace's causal chain")
    parser.add_argument("--verify", nargs=3, default=None,
                        metavar=("DISCIPLINE", "N_FILTERS", "ITEMS"),
                        help="assert the C1/C2 chain structure; exit 1 on mismatch")
    parser.add_argument("--batch", type=int, default=1,
                        help="records per transfer (for --verify)")
    parser.add_argument("--verify-once", nargs="?", const=-1, default=None,
                        type=int, metavar="ITEMS", dest="verify_once",
                        help="assert exactly-once delivery from sequence "
                             "evidence (optionally pinning the record "
                             "count); exit 1 on violation")
    options = parser.parse_args(argv)
    try:
        logs = [load_span_log(path) for path in
                _trace_files(options, parser)]
    except (OSError, ValueError, KeyError) as error:
        print(f"eden-trace: cannot load traces: {error}", file=sys.stderr)
        return 1
    trees = merge_span_logs(logs)
    if options.verify_once is not None:
        expected = None if options.verify_once < 0 else options.verify_once
        once = verify_exactly_once(logs, expected=expected)
        print(once.summary())
        return 0 if once.ok else 1
    if options.verify is not None:
        discipline, n_filters, items = options.verify
        report = verify_invocation_chains(
            trees, discipline, int(n_filters), int(items), batch=options.batch
        )
        print(report.summary())
        for problem in report.problems:
            print(f"  - {problem}")
        return 0 if report.ok else 1
    if options.trace is not None:
        code, text = _show_trace(trees, options.trace)
        print(text)
        return code
    if options.list_traces:
        for tree in trees:
            print(
                f"{tree.trace:<12} {tree.span_count:3d} spans  "
                f"{tree.end_to_end * 1000.0:9.3f}ms"
            )
        return 0
    print(_summary(trees))
    return 0


if __name__ == "__main__":
    sys.exit(main())
