"""Lexer for the pipeline shell.

The shell exists because the paper compares its channel identifiers to
"the way transput is redirected in a conventional operating system,
where the command language provides some primitive like ASSIGN OUTPUT
CHANNEL name TO file, or like the Unix shell's 'n>' syntax" (§5).
So the command language supports exactly that ``n>`` syntax, with
channel names as well as numbers.

Token kinds:

- ``WORD`` — bare word (command names, arguments, names);
- ``STRING`` — single- or double-quoted literal;
- ``PIPE`` — ``|``;
- ``REDIRECT`` — ``>`` (value ``""``), ``Report>`` (value ``"Report"``)
  or ``2>`` (value ``"2"``);
- ``ASSIGN`` — ``=``;
- ``SEMI`` — ``;`` (statement separator).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ShellSyntaxError


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str
    value: str
    position: int

    def __str__(self) -> str:
        return f"{self.kind}({self.value!r})@{self.position}"


_WORD_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789_-./*+?[]^$\\{}()"
)


def tokenize(line: str) -> list[Token]:
    """Split one command line into tokens.

    Raises:
        ShellSyntaxError: on an unterminated string or a stray
            character.
    """
    tokens: list[Token] = []
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char in " \t":
            index += 1
            continue
        if char == "#":
            break  # comment to end of line
        if char == "|":
            tokens.append(Token("PIPE", "|", index))
            index += 1
            continue
        if char == ";":
            tokens.append(Token("SEMI", ";", index))
            index += 1
            continue
        if char == "=":
            tokens.append(Token("ASSIGN", "=", index))
            index += 1
            continue
        if char == ">":
            tokens.append(Token("REDIRECT", "", index))
            index += 1
            continue
        if char in "'\"":
            end = line.find(char, index + 1)
            if end == -1:
                raise ShellSyntaxError(
                    f"unterminated string starting at column {index}: {line!r}"
                )
            tokens.append(Token("STRING", line[index + 1 : end], index))
            index = end + 1
            continue
        if char in _WORD_CHARS:
            start = index
            while index < length and line[index] in _WORD_CHARS:
                index += 1
            word = line[start:index]
            # The Unix-shell "n>" syntax: a word glued to '>' is a
            # channel redirect (Report> window, 2> errs).
            if index < length and line[index] == ">":
                tokens.append(Token("REDIRECT", word, start))
                index += 1
            else:
                tokens.append(Token("WORD", word, start))
            continue
        raise ShellSyntaxError(
            f"unexpected character {char!r} at column {index}: {line!r}"
        )
    return tokens


def split_statements(tokens: list[Token]) -> list[list[Token]]:
    """Split a token stream on SEMI tokens (dropping empties)."""
    statements: list[list[Token]] = []
    current: list[Token] = []
    for token in tokens:
        if token.kind == "SEMI":
            if current:
                statements.append(current)
                current = []
        else:
            current.append(token)
    if current:
        statements.append(current)
    return statements
