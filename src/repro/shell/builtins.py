"""Builtin filter commands for the pipeline shell.

Each builtin maps a command name and its string arguments to a
transducer.  The table covers the paper's §3 filter catalogue.
"""

from __future__ import annotations

from typing import Callable

from repro.core.errors import ShellNameError, ShellSyntaxError
from repro.filters import (
    between,
    cut,
    paste,
    comment_stripper,
    delete_matching,
    expand_tabs,
    fold,
    grep,
    head,
    identity,
    lower_case,
    number_lines,
    paginate,
    prepend,
    pretty_print,
    reverse_line,
    sort_lines,
    strip_whitespace,
    substitute,
    tail,
    translate,
    unique_adjacent,
    upper_case,
    with_reports,
    word_count,
)
from repro.transput.filterbase import ReportingTransducer, Transducer

#: What a builtin factory returns.
TransducerFactory = Callable[..., Transducer | ReportingTransducer]


def _no_args(factory: Callable[[], Transducer], command: str):
    def build(*args: str):
        if args:
            raise ShellSyntaxError(f"{command} takes no arguments")
        return factory()

    return build


def _int_arg(factory: Callable[[int], Transducer], command: str, default: int | None = None):
    def build(*args: str):
        if not args:
            if default is None:
                raise ShellSyntaxError(f"{command} needs a number")
            return factory(default)
        if len(args) != 1:
            raise ShellSyntaxError(f"{command} takes one number")
        try:
            return factory(int(args[0]))
        except ValueError as exc:
            raise ShellSyntaxError(f"{command}: {exc}") from None

    return build


def _build_strip_comments(*args: str):
    if len(args) > 1:
        raise ShellSyntaxError("strip-comments takes at most one marker")
    return comment_stripper(args[0] if args else "C")


def _build_grep(*args: str):
    if len(args) != 1:
        raise ShellSyntaxError("grep needs exactly one pattern")
    return grep(args[0])


def _build_delete(*args: str):
    if len(args) != 1:
        raise ShellSyntaxError("delete needs exactly one pattern")
    return delete_matching(args[0])


def _build_sub(*args: str):
    if len(args) != 2:
        raise ShellSyntaxError("sub needs PATTERN REPLACEMENT")
    return substitute(args[0], args[1])


def _build_between(*args: str):
    if len(args) != 2:
        raise ShellSyntaxError("between needs START END patterns")
    return between(args[0], args[1])


def _build_tr(*args: str):
    if len(args) != 2:
        raise ShellSyntaxError("tr needs SOURCE TARGET alphabets")
    return translate(args[0], args[1])


def _build_prepend(*args: str):
    if len(args) != 1:
        raise ShellSyntaxError("prepend needs exactly one prefix")
    return prepend(args[0])


def _build_report(*args: str):
    if len(args) > 2:
        raise ShellSyntaxError("report takes [LABEL [EVERY]]")
    label = args[0] if args else "report"
    every = int(args[1]) if len(args) > 1 else 5
    return with_reports(identity(), label=label, every=every)


def _build_cut(*args: str):
    if not args:
        raise ShellSyntaxError("cut needs field numbers")
    try:
        fields = [int(arg) for arg in args]
    except ValueError as exc:
        raise ShellSyntaxError(f"cut: {exc}") from None
    return cut(fields)


def _build_paginate(*args: str):
    if len(args) > 2:
        raise ShellSyntaxError("paginate takes [LINES [TITLE]]")
    page_length = int(args[0]) if args else 60
    title = args[1] if len(args) > 1 else ""
    return paginate(page_length=page_length, title=title)


BUILTINS: dict[str, TransducerFactory] = {
    "strip-comments": _build_strip_comments,
    "grep": _build_grep,
    "delete": _build_delete,
    "sub": _build_sub,
    "between": _build_between,
    "tr": _build_tr,
    "prepend": _build_prepend,
    "report": _build_report,
    "paginate": _build_paginate,
    "cut": _build_cut,
    "paste": _int_arg(paste, "paste"),
    "upper": _no_args(upper_case, "upper"),
    "lower": _no_args(lower_case, "lower"),
    "strip": _no_args(strip_whitespace, "strip"),
    "reverse": _no_args(reverse_line, "reverse"),
    "number": _no_args(number_lines, "number"),
    "wc": _no_args(word_count, "wc"),
    "sort": _no_args(sort_lines, "sort"),
    "uniq": _no_args(unique_adjacent, "uniq"),
    "pretty": _no_args(pretty_print, "pretty"),
    "cat": _no_args(identity, "cat"),
    "head": _int_arg(head, "head"),
    "tail": _int_arg(tail, "tail"),
    "fold": _int_arg(fold, "fold", default=80),
    "expand": _int_arg(expand_tabs, "expand", default=8),
}


def build_transducer(command: str, args: tuple[str, ...]):
    """Instantiate the transducer for one pipeline stage."""
    factory = BUILTINS.get(command)
    if factory is None:
        raise ShellNameError(
            f"unknown filter {command!r}; known: {', '.join(sorted(BUILTINS))}"
        )
    return factory(*args)
