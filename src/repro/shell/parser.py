"""Parser for the pipeline shell.

Grammar (one statement; ``;`` separates statements on a line)::

    statement   := assign | set | show | pipeline
    assign      := WORD '=' words
    set         := 'set' WORD WORD
    show        := 'show' WORD
    pipeline    := stage ('|' stage)* redirect*
    stage       := WORD arg*
    arg         := WORD | STRING
    redirect    := REDIRECT WORD          # '> name' or 'chan> name'
"""

from __future__ import annotations

from repro.core.errors import ShellSyntaxError
from repro.shell.ast import (
    AssignStmt,
    PipelineStmt,
    Redirect,
    Script,
    SetStmt,
    ShowStmt,
    Stage,
    Statement,
)
from repro.shell.lexer import Token, split_statements, tokenize


def parse_line(line: str) -> Script:
    """Parse one input line into a :class:`Script`."""
    script = Script()
    for tokens in split_statements(tokenize(line)):
        script.statements.append(_parse_statement(tokens, line))
    return script


def _parse_statement(tokens: list[Token], line: str) -> Statement:
    if len(tokens) >= 2 and tokens[0].kind == "WORD" and tokens[1].kind == "ASSIGN":
        words = _require_args(tokens[2:], line, "assignment")
        # `name = echo a b c` — the conventional spelling; a leading
        # literal `echo` is the source command, not data.
        if words and words[0] == "echo":
            words = words[1:]
        return AssignStmt(name=tokens[0].value, words=tuple(words))
    if tokens and tokens[0].kind == "WORD" and tokens[0].value == "set":
        args = _require_args(tokens[1:], line, "set")
        if len(args) != 2:
            raise ShellSyntaxError(f"set needs OPTION VALUE: {line!r}")
        return SetStmt(option=args[0], value=args[1])
    if tokens and tokens[0].kind == "WORD" and tokens[0].value == "show":
        args = _require_args(tokens[1:], line, "show")
        if len(args) != 1:
            raise ShellSyntaxError(f"show needs exactly one NAME: {line!r}")
        return ShowStmt(name=args[0])
    return _parse_pipeline(tokens, line)


def _require_args(tokens: list[Token], line: str, context: str) -> list[str]:
    words: list[str] = []
    for token in tokens:
        if token.kind not in ("WORD", "STRING"):
            raise ShellSyntaxError(
                f"unexpected {token} in {context}: {line!r}"
            )
        words.append(token.value)
    return words


def _parse_pipeline(tokens: list[Token], line: str) -> PipelineStmt:
    if not tokens:
        raise ShellSyntaxError(f"empty statement: {line!r}")
    stages: list[Stage] = []
    redirects: list[Redirect] = []
    current: list[Token] = []
    index = 0

    def flush_stage() -> None:
        if not current:
            raise ShellSyntaxError(f"empty pipeline stage: {line!r}")
        head, *rest = current
        if head.kind not in ("WORD", "STRING"):
            raise ShellSyntaxError(f"stage must start with a command: {line!r}")
        stages.append(
            Stage(command=head.value, args=tuple(token.value for token in rest))
        )
        current.clear()

    while index < len(tokens):
        token = tokens[index]
        if token.kind == "PIPE":
            flush_stage()
            index += 1
            continue
        if token.kind == "REDIRECT":
            flush_stage()
            break
        if token.kind in ("WORD", "STRING"):
            current.append(token)
            index += 1
            continue
        raise ShellSyntaxError(f"unexpected {token} in pipeline: {line!r}")
    else:
        flush_stage()

    # Remaining tokens are redirects: REDIRECT WORD pairs.
    while index < len(tokens):
        token = tokens[index]
        if token.kind != "REDIRECT":
            raise ShellSyntaxError(
                f"expected a redirect, got {token}: {line!r}"
            )
        if index + 1 >= len(tokens) or tokens[index + 1].kind not in (
            "WORD",
            "STRING",
        ):
            raise ShellSyntaxError(f"redirect needs a target name: {line!r}")
        redirects.append(
            Redirect(channel=token.value, target=tokens[index + 1].value)
        )
        index += 2

    if len(stages) < 1:
        raise ShellSyntaxError(f"pipeline needs at least a source: {line!r}")
    source, *rest = stages
    seen_channels = set()
    for redirect in redirects:
        if redirect.channel in seen_channels:
            raise ShellSyntaxError(
                f"duplicate redirect for channel {redirect.channel!r}: {line!r}"
            )
        seen_channels.add(redirect.channel)
    return PipelineStmt(
        source=source, stages=tuple(rest), redirects=tuple(redirects)
    )
