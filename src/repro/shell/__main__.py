"""``python -m repro.shell`` starts the interactive pipeline shell."""

from repro.shell.repl import main

main()
