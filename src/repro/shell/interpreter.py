"""The pipeline shell interpreter.

Executes parsed statements against a simulated Eden kernel.  A
pipeline statement builds real Ejects in the configured discipline,
runs the simulation to completion, and returns/binds the collected
lines — "dynamically redirectable stream transput" (§6) driven from a
command language.

Example session::

    sh = Shell()
    sh.execute('prog = echo "C comment" "      REAL X"')
    result = sh.execute_one("prog | strip-comments C | number")
    result.output   # ['     1        REAL X']

Channel redirection uses the ``n>`` syntax the paper cites::

    sh.execute_one("prog | report F1 2 | upper Report> win > out")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.kernel import Kernel
from repro.core.errors import ShellNameError, ShellSyntaxError
from repro.shell.ast import (
    AssignStmt,
    PipelineStmt,
    SetStmt,
    ShowStmt,
    Stage,
)
from repro.shell.builtins import build_transducer
from repro.shell.parser import parse_line
from repro.transput.buffer import PassiveBuffer
from repro.transput.conventional import ConventionalFilter
from repro.transput.filterbase import OUTPUT, as_reporting
from repro.transput.pipeline import DISCIPLINES
from repro.transput.readonly import ReadOnlyFilter
from repro.transput.sink import CollectorSink, PassiveSink
from repro.transput.source import ActiveSource, ListSource
from repro.transput.stream import StreamEndpoint
from repro.transput.writeonly import WriteOnlyFilter


@dataclass
class ShellResult:
    """The outcome of one pipeline statement."""

    output: list[Any] = field(default_factory=list)
    redirected: dict[str, list[Any]] = field(default_factory=dict)
    invocations: int = 0
    discipline: str = "readonly"

    def lines(self) -> list[str]:
        """The primary output as strings."""
        return [str(item) for item in self.output]


class Shell:
    """A shell session: an environment of named line-lists plus options.

    Args:
        kernel: reuse an existing simulated kernel (default: fresh one).
        discipline: initial transput discipline for pipelines.
    """

    def __init__(
        self, kernel: Kernel | None = None, discipline: str = "readonly"
    ) -> None:
        if discipline not in DISCIPLINES:
            raise ValueError(f"discipline must be one of {DISCIPLINES}")
        self.kernel = kernel or Kernel()
        self.discipline = discipline
        self.batch = 1
        self.lookahead = 0
        self.env: dict[str, list[Any]] = {}
        self.history: list[str] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def define(self, name: str, lines: list[Any]) -> None:
        """Bind ``name`` to a list of lines (a literal source)."""
        self.env[name] = list(lines)

    def execute(self, line: str) -> list[Any]:
        """Run every statement on ``line``; returns one result each.

        Results are :class:`ShellResult` for pipelines, lists for
        ``show``, ``None`` for assignments and ``set``.
        """
        self.history.append(line)
        results: list[Any] = []
        for statement in parse_line(line).statements:
            results.append(self._execute_statement(statement))
        return results

    def execute_one(self, line: str) -> Any:
        """Run a line expected to hold exactly one statement."""
        results = self.execute(line)
        if len(results) != 1:
            raise ShellSyntaxError(
                f"expected one statement, got {len(results)}: {line!r}"
            )
        return results[0]

    def run_script(self, script: str) -> list[Any]:
        """Execute a multi-line script; returns all statement results.

        Blank lines and ``#`` comment lines are skipped.
        """
        results: list[Any] = []
        for line in script.splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            results.extend(self.execute(stripped))
        return results

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------

    def _execute_statement(self, statement: Any) -> Any:
        if isinstance(statement, AssignStmt):
            self.define(statement.name, list(statement.words))
            return None
        if isinstance(statement, SetStmt):
            return self._execute_set(statement)
        if isinstance(statement, ShowStmt):
            if statement.name not in self.env:
                raise ShellNameError(f"no binding named {statement.name!r}")
            return list(self.env[statement.name])
        assert isinstance(statement, PipelineStmt)
        return self._execute_pipeline(statement)

    def _execute_set(self, statement: SetStmt) -> None:
        if statement.option == "discipline":
            if statement.value not in DISCIPLINES:
                raise ShellSyntaxError(
                    f"discipline must be one of {DISCIPLINES}, "
                    f"got {statement.value!r}"
                )
            self.discipline = statement.value
            return None
        if statement.option in ("batch", "lookahead"):
            try:
                value = int(statement.value)
            except ValueError:
                raise ShellSyntaxError(
                    f"{statement.option} needs an integer, "
                    f"got {statement.value!r}"
                ) from None
            minimum = 1 if statement.option == "batch" else 0
            if value < minimum:
                raise ShellSyntaxError(
                    f"{statement.option} must be >= {minimum}, got {value}"
                )
            setattr(self, statement.option, value)
            return None
        raise ShellSyntaxError(f"unknown option {statement.option!r}")

    def _source_lines(self, source: Stage) -> list[Any]:
        if source.command == "echo":
            return list(source.args)
        if source.command in self.env:
            if source.args:
                raise ShellSyntaxError(
                    f"source {source.command!r} takes no arguments"
                )
            return list(self.env[source.command])
        raise ShellNameError(
            f"unknown source {source.command!r} (define it with NAME = echo …)"
        )

    def _execute_pipeline(self, statement: PipelineStmt) -> ShellResult:
        lines = self._source_lines(statement.source)
        transducers = [
            as_reporting(build_transducer(stage.command, stage.args))
            for stage in statement.stages
        ]
        channel_redirects = {
            r.channel: r.target for r in statement.redirects if r.channel != ""
        }
        # Each named channel binds to the LAST stage advertising it.
        owners: dict[str, int] = {}
        for index, transducer in enumerate(transducers):
            for channel in transducer.channels:
                if channel != OUTPUT:
                    owners[channel] = index
        for channel in channel_redirects:
            resolved = self._resolve_channel(channel, owners)
            if resolved is None:
                raise ShellNameError(
                    f"no pipeline stage provides channel {channel!r}"
                )
        start = self.kernel.stats.snapshot()
        if self.discipline == "readonly":
            result = self._run_readonly(lines, transducers, channel_redirects, owners)
        elif self.discipline == "writeonly":
            result = self._run_writeonly(lines, transducers, channel_redirects, owners)
        else:
            result = self._run_conventional(
                lines, transducers, channel_redirects, owners
            )
        result.invocations = (
            self.kernel.stats.snapshot().diff(start)["invocations_sent"]
        )
        result.discipline = self.discipline
        primary_target = statement.primary_target()
        if primary_target is not None:
            self.env[primary_target] = list(result.output)
            result.redirected[primary_target] = list(result.output)
            result.output = []
        for channel, target in channel_redirects.items():
            self.env[target] = result.redirected.get(target, [])
        return result

    def _resolve_channel(
        self, channel: str, owners: dict[str, int]
    ) -> tuple[str, int] | None:
        """Map a redirect channel (name or position) to (name, stage)."""
        if channel in owners:
            return channel, owners[channel]
        if channel.isdigit():
            # Positional: the n-th non-primary channel, in stage order.
            extras = sorted(owners.items(), key=lambda pair: pair[1])
            position = int(channel) - 1
            if 0 <= position < len(extras):
                return extras[position][0], extras[position][1]
        return None

    # -- discipline-specific runners ---------------------------------------

    def _run_readonly(
        self, lines, transducers, channel_redirects, owners
    ) -> ShellResult:
        source = self.kernel.create(ListSource, items=lines)
        upstream = source.output_endpoint()
        filters: list[ReadOnlyFilter] = []
        for transducer in transducers:
            stage = self.kernel.create(
                ReadOnlyFilter, transducer=transducer, inputs=[upstream],
                batch_in=self.batch,
                # Multi-channel stages stay lazy so channel redirects
                # cannot starve (demand-driven prefetch needs a reader).
                lookahead=self.lookahead if len(transducer.channels) == 1
                else 0,
            )
            filters.append(stage)
            upstream = stage.output_endpoint(OUTPUT if len(
                transducer.channels) > 1 else None)
        sink = self.kernel.create(
            CollectorSink, inputs=[upstream], batch=self.batch
        )
        report_sinks: dict[str, CollectorSink] = {}
        for channel, target in channel_redirects.items():
            name, stage_index = self._resolve_channel(channel, owners)
            report_sinks[target] = self.kernel.create(
                CollectorSink,
                inputs=[filters[stage_index].output_endpoint(name)],
            )
        watched = [sink, *report_sinks.values()]
        self.kernel.run(until=lambda: all(s.done for s in watched))
        self.kernel.run()
        return ShellResult(
            output=list(sink.collected),
            redirected={
                target: list(s.collected) for target, s in report_sinks.items()
            },
        )

    def _run_writeonly(
        self, lines, transducers, channel_redirects, owners
    ) -> ShellResult:
        sink = self.kernel.create(PassiveSink)
        report_sinks: dict[str, PassiveSink] = {}
        target_for_stage: dict[int, dict[str, StreamEndpoint]] = {}
        for channel, target in channel_redirects.items():
            name, stage_index = self._resolve_channel(channel, owners)
            report_sink = self.kernel.create(PassiveSink)
            report_sinks[target] = report_sink
            target_for_stage.setdefault(stage_index, {})[name] = StreamEndpoint(
                report_sink.uid, None
            )
        downstream = StreamEndpoint(sink.uid, None)
        stages: list[WriteOnlyFilter] = []
        for index in range(len(transducers) - 1, -1, -1):
            outputs: dict[str, list[StreamEndpoint]] = {OUTPUT: [downstream]}
            for name, endpoint in target_for_stage.get(index, {}).items():
                outputs[name] = [endpoint]
            stage = self.kernel.create(
                WriteOnlyFilter, transducer=transducers[index], outputs=outputs
            )
            stages.append(stage)
            downstream = StreamEndpoint(stage.uid, None)
        self.kernel.create(ActiveSource, items=lines, outputs=[downstream])
        watched = [sink, *report_sinks.values()]
        self.kernel.run(until=lambda: all(s.done for s in watched))
        self.kernel.run()
        return ShellResult(
            output=list(sink.collected),
            redirected={
                target: list(s.collected) for target, s in report_sinks.items()
            },
        )

    def _run_conventional(
        self, lines, transducers, channel_redirects, owners
    ) -> ShellResult:
        report_sinks: dict[str, PassiveSink] = {}
        target_for_stage: dict[int, dict[str, StreamEndpoint]] = {}
        for channel, target in channel_redirects.items():
            name, stage_index = self._resolve_channel(channel, owners)
            report_sink = self.kernel.create(PassiveSink)
            report_sinks[target] = report_sink
            target_for_stage.setdefault(stage_index, {})[name] = StreamEndpoint(
                report_sink.uid, None
            )
        buffers = [
            self.kernel.create(PassiveBuffer, name=f"sh-pipe-{i}")
            for i in range(len(transducers) + 1)
        ]
        for index, transducer in enumerate(transducers):
            outputs: dict[str, list[StreamEndpoint]] = {
                OUTPUT: [StreamEndpoint(buffers[index + 1].uid, None)]
            }
            for name, endpoint in target_for_stage.get(index, {}).items():
                outputs[name] = [endpoint]
            self.kernel.create(
                ConventionalFilter,
                transducer=transducer,
                inputs=[StreamEndpoint(buffers[index].uid, None)],
                outputs=outputs,
            )
        self.kernel.create(
            ActiveSource, items=lines,
            outputs=[StreamEndpoint(buffers[0].uid, None)],
        )
        sink = self.kernel.create(
            CollectorSink, inputs=[StreamEndpoint(buffers[-1].uid, None)]
        )
        watched = [sink, *report_sinks.values()]
        self.kernel.run(until=lambda: all(s.done for s in watched))
        self.kernel.run()
        return ShellResult(
            output=list(sink.collected),
            redirected={
                target: list(s.collected) for target, s in report_sinks.items()
            },
        )
