"""AST node types for the pipeline shell."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Stage:
    """One filter command in a pipeline: name plus arguments."""

    command: str
    args: tuple[str, ...] = ()

    def __str__(self) -> str:
        return " ".join([self.command, *self.args])


@dataclass(frozen=True)
class Redirect:
    """One output redirection.

    ``channel == ""`` is the primary output (plain ``>``); otherwise a
    channel name or positional number as a string (the ``n>`` syntax).
    """

    channel: str
    target: str


@dataclass(frozen=True)
class PipelineStmt:
    """``source | cmd ... | cmd [chan> name ...]``"""

    source: Stage
    stages: tuple[Stage, ...]
    redirects: tuple[Redirect, ...] = ()

    def primary_target(self) -> str | None:
        """The plain ``>`` target, if any."""
        for redirect in self.redirects:
            if redirect.channel == "":
                return redirect.target
        return None


@dataclass(frozen=True)
class AssignStmt:
    """``name = echo a b c`` — bind a literal source."""

    name: str
    words: tuple[str, ...]


@dataclass(frozen=True)
class SetStmt:
    """``set option value`` — shell configuration."""

    option: str
    value: str


@dataclass(frozen=True)
class ShowStmt:
    """``show name`` — return a binding's lines."""

    name: str


Statement = PipelineStmt | AssignStmt | SetStmt | ShowStmt


@dataclass
class Script:
    """A sequence of statements (one line may hold several, ``;``-split)."""

    statements: list[Statement] = field(default_factory=list)
