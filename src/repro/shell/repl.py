"""An interactive REPL over the pipeline shell.

Run with ``python -m repro.shell``.  Reads command lines, executes them
against one long-lived simulated kernel, and prints results.  REPL-only
conveniences (not part of the shell language): ``help``, ``env``,
``stats``, ``exit``.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.core.errors import EdenError
from repro.shell.builtins import BUILTINS
from repro.shell.interpreter import Shell, ShellResult

PROMPT = "eden$ "

HELP = """\
The Eden pipeline shell (SOSP'83 asymmetric stream transput).

  NAME = echo WORD...              define a literal source
  NAME | FILTER ARGS | ... [> OUT] run a pipeline
  ... Report> WIN                  redirect a channel (the 'n>' syntax)
  set discipline readonly|writeonly|conventional
  show NAME                        print a binding
  env                              list bindings
  stats                            kernel counters so far
  help                             this text
  exit                             leave

Filters: {filters}
"""


def render_result(result: ShellResult, out: IO[str]) -> None:
    """Print one pipeline result the way a shell prints stdout."""
    for item in result.output:
        print(item, file=out)
    extras = []
    if result.redirected:
        extras.append("redirected: " + ", ".join(sorted(result.redirected)))
    extras.append(f"{result.invocations} invocations")
    extras.append(result.discipline)
    print(f"[{'; '.join(extras)}]", file=out)


def run_repl(
    lines: IO[str] | None = None,
    out: IO[str] | None = None,
    shell: Shell | None = None,
    prompt: bool = True,
) -> Shell:
    """Drive the REPL from ``lines`` (default stdin) to ``out``.

    Returns the shell so callers (and tests) can inspect the session.
    """
    lines = lines if lines is not None else sys.stdin
    out = out if out is not None else sys.stdout
    shell = shell or Shell()

    while True:
        if prompt:
            print(PROMPT, end="", file=out, flush=True)
        raw = lines.readline()
        if not raw:
            break
        line = raw.strip()
        if not line:
            continue
        if line in ("exit", "quit"):
            break
        if line == "help":
            print(HELP.format(filters=", ".join(sorted(BUILTINS))), file=out)
            continue
        if line == "env":
            for name in sorted(shell.env):
                print(f"{name} ({len(shell.env[name])} lines)", file=out)
            continue
        if line == "stats":
            for name in shell.kernel.stats.names():
                print(f"{name:24s} {shell.kernel.stats.get(name)}", file=out)
            continue
        try:
            results = shell.execute(line)
        except EdenError as error:
            print(f"error: {error}", file=out)
            continue
        for result in results:
            if result is None:
                continue
            if isinstance(result, list):  # show
                for item in result:
                    print(item, file=out)
            else:
                render_result(result, out)
    return shell


def main() -> None:
    """Console entry point."""
    print("Eden pipeline shell — 'help' for help, 'exit' to leave.")
    run_repl()


if __name__ == "__main__":  # pragma: no cover
    main()
