"""A pipeline shell over the simulated Eden system.

The command language supports pipelines (``|``), channel redirection
(``Report> win`` — the paper's "n>" comparison in §5), discipline
selection and literal sources.
"""

from repro.shell.ast import (
    AssignStmt,
    PipelineStmt,
    Redirect,
    Script,
    SetStmt,
    ShowStmt,
    Stage,
)
from repro.shell.builtins import BUILTINS, build_transducer
from repro.shell.interpreter import Shell, ShellResult
from repro.shell.repl import run_repl
from repro.shell.lexer import Token, tokenize
from repro.shell.parser import parse_line

__all__ = [
    "AssignStmt",
    "BUILTINS",
    "PipelineStmt",
    "Redirect",
    "Script",
    "SetStmt",
    "Shell",
    "ShellResult",
    "ShowStmt",
    "Stage",
    "Token",
    "run_repl",
    "build_transducer",
    "parse_line",
    "tokenize",
]
