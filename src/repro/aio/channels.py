"""Multi-channel (report-stream) stages for the asyncio binding.

Gives ``repro.aio`` parity with the simulator's channel identifiers
(paper §5): an :class:`AioReportingStage` runs a
:class:`~repro.transput.filterbase.ReportingTransducer` and exposes one
:class:`ChannelReader` per output channel; each reader is an ordinary
``Readable``, so downstream stages and collectors need not know they
are looking at one face of a multi-output filter.

Laziness matches the simulator's lazy mode: the stage pulls from
upstream only while some channel's read is unsatisfied; records for
other channels accumulate in their buffers meanwhile.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.errors import NoSuchChannelError
from repro.transput.filterbase import ReportingTransducer, Transducer, as_reporting
from repro.aio.streams import Readable
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = ["AioReportingStage", "ChannelReader"]


class AioReportingStage:
    """A lazy multi-channel filter stage over asyncio.

    Args:
        transducer: a reporting (or plain) transducer.
        upstream: the single input Readable.
        batch_in: records pulled per upstream read.
    """

    def __init__(
        self,
        transducer: Transducer | ReportingTransducer,
        upstream: Readable,
        batch_in: int = 1,
    ) -> None:
        self.transducer = as_reporting(transducer)
        self.upstream = upstream
        self.batch_in = max(1, batch_in)
        self._buffers: dict[str, list[Any]] = {
            channel: [] for channel in self.transducer.channels
        }
        self._started = False
        self._done = False
        # Serializes pulls when several channel readers race.
        self._pull_lock = asyncio.Lock()

    def channels(self) -> list[str]:
        """The advertised channel names."""
        return list(self._buffers)

    def reader(self, channel: str) -> "ChannelReader":
        """A Readable view of one output channel."""
        if channel not in self._buffers:
            raise NoSuchChannelError(channel, "AioReportingStage")
        return ChannelReader(self, channel)

    def _distribute(self, emitted: dict) -> None:
        for channel, records in emitted.items():
            if channel in self._buffers:
                self._buffers[channel].extend(records)

    async def _pull_until(self, channel: str) -> None:
        async with self._pull_lock:
            if not self._started:
                self._started = True
                self._distribute(self.transducer.start())
            while not self._buffers[channel] and not self._done:
                transfer = await self.upstream.read(self.batch_in)
                if transfer.at_end:
                    self._distribute(self.transducer.finish())
                    self._done = True
                    return
                for item in transfer.items:
                    self._distribute(self.transducer.step(item))

    async def read_channel(self, channel: str, batch: int = 1) -> Transfer:
        """One protocol interaction on ``channel``."""
        if channel not in self._buffers:
            raise NoSuchChannelError(channel, "AioReportingStage")
        await self._pull_until(channel)
        buffer = self._buffers[channel]
        if not buffer:
            return END_TRANSFER
        batch = max(1, batch)
        taken, self._buffers[channel] = buffer[:batch], buffer[batch:]
        return Transfer.of(taken)


class ChannelReader:
    """The Readable face of one channel of an AioReportingStage."""

    def __init__(self, stage: AioReportingStage, channel: str) -> None:
        self.stage = stage
        self.channel = channel

    async def read(self, batch: int = 1) -> Transfer:
        return await self.stage.read_channel(self.channel, batch)
