"""asyncio pipeline runners for all three disciplines."""

from __future__ import annotations

import asyncio
from typing import Any, Iterable, Sequence

from repro.transput.filterbase import Transducer
from repro.aio.streams import (
    AioCollector,
    AioPipe,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    collect,
)
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "run_readonly",
    "run_writeonly",
    "run_conventional",
    "run_pipeline",
]


async def run_readonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    lookahead: int = 0,
) -> list[Any]:
    """Read-only pipeline: chain stages, then pump from the tail."""
    upstream = AioSource(items)
    for transducer in transducers:
        upstream = AioReadOnlyStage(
            transducer, upstream, lookahead=lookahead, batch_in=batch
        )
    return await collect(upstream, batch=batch)


async def run_writeonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
) -> list[Any]:
    """Write-only pipeline: build sink-first, push from the head."""
    sink = AioCollector()
    downstream = sink
    for transducer in reversed(list(transducers)):
        downstream = AioWriteOnlyStage(transducer, [downstream])
    pending = list(items)
    for start in range(0, len(pending), max(1, batch)):
        chunk = pending[start : start + max(1, batch)]
        await downstream.write(Transfer.of(chunk))
    await downstream.write(END_TRANSFER)
    await sink.done.wait()
    return list(sink.items)


async def run_conventional(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    capacity: int = 16,
) -> list[Any]:
    """Conventional pipeline: a pumping task per filter, pipes between.

    Each filter task actively reads its inbound pipe and actively
    writes its outbound pipe — concurrency comes from the tasks, and
    backpressure from the bounded pipes, exactly as in Unix.
    """
    transducers = list(transducers)
    pipes = [AioPipe(capacity=capacity) for _ in range(len(transducers) + 1)]

    async def source_task() -> None:
        pending = list(items)
        for start in range(0, len(pending), max(1, batch)):
            chunk = pending[start : start + max(1, batch)]
            await pipes[0].write(Transfer.of(chunk))
        await pipes[0].write(END_TRANSFER)

    async def filter_task(index: int, transducer: Transducer) -> None:
        inbound, outbound = pipes[index], pipes[index + 1]
        for record in transducer.start():
            await outbound.write(Transfer.single(record))
        while True:
            transfer = await inbound.read(batch)
            if transfer.at_end:
                break
            for item in transfer.items:
                for record in transducer.step(item):
                    await outbound.write(Transfer.single(record))
        for record in transducer.finish():
            await outbound.write(Transfer.single(record))
        await outbound.write(END_TRANSFER)

    async def sink_task() -> list[Any]:
        return await collect(pipes[-1], batch=batch)

    tasks = [
        asyncio.create_task(source_task()),
        *(
            asyncio.create_task(filter_task(index, transducer))
            for index, transducer in enumerate(transducers)
        ),
    ]
    output = await sink_task()
    await asyncio.gather(*tasks)
    return output


def run_pipeline(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    discipline: str = "readonly",
    **kwargs: Any,
) -> list[Any]:
    """Synchronous front door: run an aio pipeline to completion."""
    runners = {
        "readonly": run_readonly,
        "writeonly": run_writeonly,
        "conventional": run_conventional,
    }
    if discipline not in runners:
        raise ValueError(f"discipline must be one of {sorted(runners)}")
    return asyncio.run(runners[discipline](items, transducers, **kwargs))
