"""asyncio pipeline drivers for all three disciplines.

The canonical entry points are :func:`stream_readonly`,
:func:`stream_writeonly`, :func:`stream_conventional` and the by-name
dispatcher :func:`stream_segment`.  Each accepts an optional
``stats`` (:class:`~repro.core.stats.KernelStats`) and, when given
one, counts an ``invocations_sent`` for every transfer request that
crosses a stage boundary — a ``read()`` on a pull boundary, a
``write()`` on a push boundary, both sides of a conventional pipe —
which is the same thing the simulator's kernel and the TCP runtime's
frame counters measure.  That shared definition is what lets
:class:`repro.api.Pipeline` assert invocation *parity* across all
three runtimes (paper claims C1/C2: ``(n+1)(m+1)`` asymmetric vs
``(2n+2)(m+1)`` conventional).

``run_readonly`` / ``run_writeonly`` / ``run_conventional`` /
``run_pipeline`` are deprecated aliases kept for source compatibility.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Iterable, Sequence

from repro.compat import warn_deprecated
from repro.core.stats import KernelStats
from repro.transput.filterbase import Transducer
from repro.transput.flow import shard_of
from repro.aio.streams import (
    AioCollector,
    AioPipe,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    Readable,
    Writable,
    collect,
)
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "stream_readonly",
    "stream_writeonly",
    "stream_conventional",
    "stream_segment",
    "stream_pipeline",
    "stream_sharded",
    "run_readonly",
    "run_writeonly",
    "run_conventional",
    "run_pipeline",
]


class _CountingReadable:
    """Bumps ``invocations_sent`` for every READ crossing a boundary."""

    def __init__(self, inner: Readable, stats: KernelStats | None) -> None:
        self._inner = inner
        self._stats = stats

    async def read(self, batch: int = 1) -> Transfer:
        if self._stats is not None:
            self._stats.bump("invocations_sent")
        return await self._inner.read(batch)


class _CountingWritable:
    """Bumps ``invocations_sent`` for every WRITE crossing a boundary."""

    def __init__(self, inner: Writable, stats: KernelStats | None) -> None:
        self._inner = inner
        self._stats = stats

    async def write(self, transfer: Transfer) -> None:
        if self._stats is not None:
            self._stats.bump("invocations_sent")
        await self._inner.write(transfer)


async def stream_readonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    lookahead: int = 0,
    stats: KernelStats | None = None,
) -> list[Any]:
    """Read-only pipeline: chain stages, then pump from the tail."""
    upstream: Readable = AioSource(items)
    for transducer in transducers:
        upstream = AioReadOnlyStage(
            transducer,
            _CountingReadable(upstream, stats),
            lookahead=lookahead,
            batch_in=batch,
        )
    return await collect(_CountingReadable(upstream, stats), batch=batch)


async def stream_writeonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    stats: KernelStats | None = None,
) -> list[Any]:
    """Write-only pipeline: build sink-first, push from the head."""
    sink = AioCollector()
    downstream: Writable = sink
    for transducer in reversed(list(transducers)):
        downstream = AioWriteOnlyStage(
            transducer, [_CountingWritable(downstream, stats)]
        )
    head = _CountingWritable(downstream, stats)
    pending = list(items)
    for start in range(0, len(pending), max(1, batch)):
        chunk = pending[start : start + max(1, batch)]
        await head.write(Transfer.of(chunk))
    await head.write(END_TRANSFER)
    await sink.done.wait()
    return list(sink.items)


async def stream_conventional(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    capacity: int = 16,
    stats: KernelStats | None = None,
) -> list[Any]:
    """Conventional pipeline: a pumping task per filter, pipes between.

    Each filter task actively reads its inbound pipe and actively
    writes its outbound pipe — concurrency comes from the tasks, and
    backpressure from the bounded pipes, exactly as in Unix.  Both
    sides of every pipe are invocations (paper Figure 1), which is why
    this discipline counts double.
    """
    transducers = list(transducers)
    pipes = [AioPipe(capacity=capacity) for _ in range(len(transducers) + 1)]
    write_side = [_CountingWritable(pipe, stats) for pipe in pipes]
    read_side = [_CountingReadable(pipe, stats) for pipe in pipes]

    async def source_task() -> None:
        pending = list(items)
        for start in range(0, len(pending), max(1, batch)):
            chunk = pending[start : start + max(1, batch)]
            await write_side[0].write(Transfer.of(chunk))
        await write_side[0].write(END_TRANSFER)

    async def filter_task(index: int, transducer: Transducer) -> None:
        inbound, outbound = read_side[index], write_side[index + 1]
        for record in transducer.start():
            await outbound.write(Transfer.single(record))
        while True:
            transfer = await inbound.read(batch)
            if transfer.at_end:
                break
            for item in transfer.items:
                for record in transducer.step(item):
                    await outbound.write(Transfer.single(record))
        for record in transducer.finish():
            await outbound.write(Transfer.single(record))
        await outbound.write(END_TRANSFER)

    async def sink_task() -> list[Any]:
        return await collect(read_side[-1], batch=batch)

    tasks = [
        asyncio.create_task(source_task()),
        *(
            asyncio.create_task(filter_task(index, transducer))
            for index, transducer in enumerate(transducers)
        ),
    ]
    output = await sink_task()
    await asyncio.gather(*tasks)
    return output


def stream_segment(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    discipline: str = "readonly",
    stats: KernelStats | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run one linear aio segment to completion, synchronously.

    This is the asyncio building block :mod:`repro.api` composes
    graphs from — one call per linear segment of the DAG.  Front-door
    callers want :class:`repro.api.Pipeline` or
    :class:`repro.api.GraphBuilder`.
    """
    runners = {
        "readonly": stream_readonly,
        "writeonly": stream_writeonly,
        "conventional": stream_conventional,
    }
    if discipline not in runners:
        raise ValueError(f"discipline must be one of {sorted(runners)}")
    return asyncio.run(
        runners[discipline](items, transducers, stats=stats, **kwargs)
    )


def stream_sharded(
    items: Iterable[Any],
    transducer_factory: Callable[[], Sequence[Transducer]],
    discipline: str = "readonly",
    shards: int = 2,
    stats: KernelStats | None = None,
    **kwargs: Any,
) -> tuple[list[Any], list[list[Any]]]:
    """Run ``shards`` copies of the pipeline concurrently, one per partition.

    The records are partitioned by :func:`repro.transput.flow.shard_of`
    (the same stable content hash the TCP runtime's sharded fleet
    uses), each partition streams through its own freshly built stage
    chain — ``transducer_factory`` is called once per shard, because
    transducers are stateful — and the results are concatenated in
    shard order.  Returns ``(merged_output, per_shard_outputs)``.
    Invocation counts accumulate into the one shared ``stats``, so
    parity checks against the sharded TCP fleet still hold.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    runners = {
        "readonly": stream_readonly,
        "writeonly": stream_writeonly,
        "conventional": stream_conventional,
    }
    if discipline not in runners:
        raise ValueError(f"discipline must be one of {sorted(runners)}")
    buckets: list[list[Any]] = [[] for _ in range(shards)]
    for record in items:
        buckets[shard_of(record, shards)].append(record)

    async def run_all() -> list[list[Any]]:
        return list(await asyncio.gather(*(
            runners[discipline](
                bucket, transducer_factory(), stats=stats, **kwargs
            )
            for bucket in buckets
        )))

    shard_outputs = asyncio.run(run_all())
    merged = [record for lines in shard_outputs for record in lines]
    return merged, shard_outputs


# ---------------------------------------------------------------------------
# Deprecated aliases (pre-facade and pre-graph names).
# ---------------------------------------------------------------------------


def stream_pipeline(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    discipline: str = "readonly",
    stats: KernelStats | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Deprecated front door: use :class:`repro.api.Pipeline` (or, for
    one raw aio segment, :func:`stream_segment`)."""
    warn_deprecated(
        "repro.aio.stream_pipeline",
        "repro.api.Pipeline(...).run(runtime='aio') — or "
        "repro.aio.stream_segment for one raw aio segment",
    )
    return stream_segment(items, transducers, discipline=discipline,
                          stats=stats, **kwargs)


async def run_readonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    lookahead: int = 0,
) -> list[Any]:
    """Deprecated alias of :func:`stream_readonly`."""
    warn_deprecated("repro.aio.run_readonly", "repro.aio.stream_readonly")
    return await stream_readonly(items, transducers, batch=batch,
                                 lookahead=lookahead)


async def run_writeonly(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
) -> list[Any]:
    """Deprecated alias of :func:`stream_writeonly`."""
    warn_deprecated("repro.aio.run_writeonly", "repro.aio.stream_writeonly")
    return await stream_writeonly(items, transducers, batch=batch)


async def run_conventional(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    batch: int = 1,
    capacity: int = 16,
) -> list[Any]:
    """Deprecated alias of :func:`stream_conventional`."""
    warn_deprecated("repro.aio.run_conventional",
                    "repro.aio.stream_conventional")
    return await stream_conventional(items, transducers, batch=batch,
                                     capacity=capacity)


def run_pipeline(
    items: Iterable[Any],
    transducers: Sequence[Transducer],
    discipline: str = "readonly",
    **kwargs: Any,
) -> list[Any]:
    """Deprecated alias of :func:`stream_segment`."""
    warn_deprecated("repro.aio.run_pipeline", "repro.aio.stream_segment")
    return stream_segment(items, transducers, discipline=discipline, **kwargs)
