"""asyncio binding of the asymmetric stream system.

The same Transducer filters, the same four primitives, running on real
coroutines instead of the deterministic simulator.
"""

from repro.aio.channels import AioReportingStage, ChannelReader
from repro.aio.pipeline import (
    run_conventional,
    run_pipeline,
    run_readonly,
    run_writeonly,
    stream_conventional,
    stream_pipeline,
    stream_readonly,
    stream_segment,
    stream_sharded,
    stream_writeonly,
)
from repro.aio.streams import (
    AioCollector,
    AioPipe,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    Readable,
    Writable,
    collect,
    iterate,
)

__all__ = [
    "AioCollector",
    "AioReportingStage",
    "ChannelReader",
    "AioPipe",
    "AioReadOnlyStage",
    "AioSource",
    "AioWriteOnlyStage",
    "Readable",
    "Writable",
    "collect",
    "iterate",
    "run_conventional",
    "run_pipeline",
    "run_readonly",
    "run_writeonly",
    "stream_conventional",
    "stream_pipeline",
    "stream_readonly",
    "stream_segment",
    "stream_sharded",
    "stream_writeonly",
]
