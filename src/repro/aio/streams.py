"""The four transput primitives over asyncio.

The simulator (:mod:`repro.core`) measures the paper's claims; this
module shows the same asymmetric-stream design is directly usable for
real, concurrent Python I/O.  The mapping:

- **active input** — awaiting ``readable.read()``;
- **passive output** — implementing ``read()`` (a coroutine that
  produces on demand);
- **active output** — awaiting ``writable.write(transfer)``;
- **passive input** — implementing ``write()`` (a coroutine that
  accepts, possibly applying backpressure by delaying its return).

Stages carry the very same :class:`~repro.transput.filterbase.
Transducer` objects used by the simulator, so a filter written once
runs in both worlds.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Iterable, Protocol, runtime_checkable

from repro.core.errors import StreamProtocolError
from repro.transput.filterbase import Transducer, apply_transducer
from repro.transput.stream import END_TRANSFER, Transfer

__all__ = [
    "Readable",
    "Writable",
    "AioSource",
    "AioReadOnlyStage",
    "AioWriteOnlyStage",
    "AioCollector",
    "AioPipe",
    "collect",
    "iterate",
]


@runtime_checkable
class Readable(Protocol):
    """Anything answering active input: a passive-output provider."""

    async def read(self, batch: int = 1) -> Transfer:
        """Produce up to ``batch`` records, or END."""
        ...  # pragma: no cover


@runtime_checkable
class Writable(Protocol):
    """Anything answering active output: a passive-input acceptor."""

    async def write(self, transfer: Transfer) -> None:
        """Accept a transfer (END terminates the stream)."""
        ...  # pragma: no cover


class AioSource:
    """A passive source over an iterable (the read-only producer)."""

    def __init__(self, items: Iterable[Any]) -> None:
        self._iterator = iter(items)
        self._exhausted = False

    async def read(self, batch: int = 1) -> Transfer:
        if self._exhausted:
            return END_TRANSFER
        taken: list[Any] = []
        for _ in range(max(1, batch)):
            try:
                taken.append(next(self._iterator))
            except StopIteration:
                self._exhausted = True
                break
        if not taken:
            return END_TRANSFER
        return Transfer.of(taken)


class AioReadOnlyStage:
    """A read-only filter stage: active input upstream, passive output
    downstream.

    ``lookahead > 0`` starts a background prefetch task, giving real
    pipeline parallelism exactly as §4 prescribes.
    """

    def __init__(
        self,
        transducer: Transducer,
        upstream: Readable,
        lookahead: int = 0,
        batch_in: int = 1,
    ) -> None:
        self.transducer = transducer
        self.upstream = upstream
        self.lookahead = max(0, lookahead)
        self.batch_in = max(1, batch_in)
        self._buffer: list[Any] = list(transducer.start())
        self._done = False
        self._queue: asyncio.Queue | None = None
        self._task: asyncio.Task | None = None

    async def _pull_once(self) -> None:
        transfer = await self.upstream.read(self.batch_in)
        if transfer.at_end:
            self._buffer.extend(self.transducer.finish())
            self._done = True
            return
        for item in transfer.items:
            self._buffer.extend(self.transducer.step(item))

    async def _prefetch_loop(self) -> None:
        assert self._queue is not None
        while True:
            transfer = await self.upstream.read(self.batch_in)
            if transfer.at_end:
                for record in self.transducer.finish():
                    await self._queue.put(record)
                await self._queue.put(END_TRANSFER)
                return
            for item in transfer.items:
                for record in self.transducer.step(item):
                    await self._queue.put(record)

    def _ensure_prefetch(self) -> None:
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.lookahead)
            self._task = asyncio.create_task(self._prefetch_loop())

    async def read(self, batch: int = 1) -> Transfer:
        batch = max(1, batch)
        if self.lookahead > 0:
            return await self._read_prefetched(batch)
        while not self._buffer and not self._done:
            await self._pull_once()
        if not self._buffer:
            return END_TRANSFER
        taken, self._buffer = self._buffer[:batch], self._buffer[batch:]
        return Transfer.of(taken)

    async def _read_prefetched(self, batch: int) -> Transfer:
        self._ensure_prefetch()
        assert self._queue is not None
        if self._done and not self._buffer:
            return END_TRANSFER
        while len(self._buffer) < batch and not self._done:
            record = await self._queue.get()
            if record is END_TRANSFER:
                self._done = True
                break
            self._buffer.append(record)
        if not self._buffer:
            return END_TRANSFER
        taken, self._buffer = self._buffer[:batch], self._buffer[batch:]
        return Transfer.of(taken)


class AioWriteOnlyStage:
    """A write-only filter stage: passive input, active output.

    Callers ``await stage.write(...)``; the stage pushes transformed
    records to its downstream Writable(s) — fan-out is a list, exactly
    as in the simulator.
    """

    def __init__(self, transducer: Transducer, outputs: list[Writable]) -> None:
        self.transducer = transducer
        self.outputs = list(outputs)
        self._started = False
        self._ended = False

    async def _send(self, records: Iterable[Any]) -> None:
        batch = list(records)
        if not batch:
            return
        for output in self.outputs:
            await output.write(Transfer.of(batch))

    async def write(self, transfer: Transfer) -> None:
        if self._ended:
            raise StreamProtocolError("write after END")
        if not self._started:
            self._started = True
            await self._send(self.transducer.start())
        if transfer.at_end:
            await self._send(self.transducer.finish())
            for output in self.outputs:
                await output.write(END_TRANSFER)
            self._ended = True
            return
        for item in transfer.items:
            await self._send(self.transducer.step(item))


class AioCollector:
    """A passive sink: accepts writes, signals completion."""

    def __init__(self) -> None:
        self.items: list[Any] = []
        self.done = asyncio.Event()

    async def write(self, transfer: Transfer) -> None:
        if self.done.is_set():
            raise StreamProtocolError("write after END")
        if transfer.at_end:
            self.done.set()
            return
        self.items.extend(transfer.items)


class AioPipe:
    """A bounded passive buffer: the conventional discipline's pipe.

    Both ends are passive; backpressure comes from the bounded queue.

    Each deposited record remembers the span context it was written
    under (``None`` when tracing is off); a read publishes the first
    record's context as :attr:`last_read_origin`.  This is the
    *datum-follows-trace* rule: the reader's span joins the trace of
    the datum it received, which is what stitches the conventional
    discipline's WRITE→buffer→READ hops into one causal chain.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self._ended = False
        #: Span context under which the last-read record was deposited.
        self.last_read_origin: Any = None

    async def write(self, transfer: Transfer) -> None:
        if self._ended:
            raise StreamProtocolError("write after END")
        origin = _deposit_origin()
        if transfer.at_end:
            await self._queue.put((END_TRANSFER, origin))
            self._ended = True
            return
        for item in transfer.items:
            await self._queue.put((item, origin))

    async def read(self, batch: int = 1) -> Transfer:
        first, origin = await self._queue.get()
        self.last_read_origin = origin
        if first is END_TRANSFER:
            return END_TRANSFER
        taken = [first]
        while len(taken) < max(1, batch):
            try:
                extra, extra_origin = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if extra is END_TRANSFER:
                # Put END back for the next read.
                self._queue.put_nowait((END_TRANSFER, extra_origin))
                break
            taken.append(extra)
        return Transfer.of(taken)


def _deposit_origin() -> Any:
    """The span context active at deposit time (None when untraced)."""
    from repro.obs.context import current_span

    return current_span()


async def collect(readable: Readable, batch: int = 1) -> list[Any]:
    """Drain a Readable to END (the pump, as a coroutine)."""
    items: list[Any] = []
    while True:
        transfer = await readable.read(batch)
        if transfer.at_end:
            return items
        items.extend(transfer.items)


async def iterate(readable: Readable, batch: int = 1) -> AsyncIterator[Any]:
    """Async-iterate a Readable's records."""
    while True:
        transfer = await readable.read(batch)
        if transfer.at_end:
            return
        for item in transfer.items:
            yield item


def reference(transducers: list[Transducer], items: Iterable[Any]) -> list[Any]:
    """Functional reference output for the aio pipelines (tests)."""
    current = list(items)
    for transducer in transducers:
        current = apply_transducer(transducer, current)
    return current
