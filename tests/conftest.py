"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Kernel


@pytest.fixture
def kernel() -> Kernel:
    """A fresh deterministic kernel per test."""
    return Kernel(seed=0)


@pytest.fixture
def traced_kernel() -> Kernel:
    """A kernel with structured tracing enabled."""
    return Kernel(seed=0, trace=True)


def run_until_done(kernel: Kernel, *parts, max_steps: int | None = 1_000_000):
    """Run the simulation until every part's ``done`` flag is set."""
    kernel.run(max_steps=max_steps, until=lambda: all(p.done for p in parts))
    kernel.run(max_steps=max_steps)
