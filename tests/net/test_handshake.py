"""The UID/capability hello: genuine tickets pass, forgeries are cut off."""

import asyncio

import pytest

from repro.core.uid import UID
from repro.net.framing import Frame, FrameType, read_frame, write_frame
from repro.net.handshake import (
    HandshakeError,
    ROLE_PULL,
    ROLE_PUSH,
    TicketBook,
    expect_hello,
    send_hello,
)


class TestTicketBook:
    def test_same_parameters_same_tickets(self):
        one = TicketBook(space=5, seed=99)
        two = TicketBook(space=5, seed=99)
        assert [one.ticket(i) for i in range(4)] == [two.ticket(i) for i in range(4)]

    def test_different_seed_different_nonces(self):
        assert TicketBook(space=5, seed=1).ticket(0) != TicketBook(
            space=5, seed=2
        ).ticket(0)

    def test_verifies_tickets_issued_elsewhere(self):
        issuer = TicketBook(space=0, seed=7)
        verifier = TicketBook(space=0, seed=7)
        assert verifier.is_genuine(issuer.ticket(3))

    def test_rejects_forged_nonce(self):
        book = TicketBook(space=0, seed=7)
        genuine = book.ticket(0)
        forged = UID(space=genuine.space, serial=genuine.serial,
                     nonce=genuine.nonce ^ 1)
        assert not book.is_genuine(forged)

    def test_rejects_wrong_space(self):
        ticket = TicketBook(space=1, seed=7).ticket(0)
        assert not TicketBook(space=2, seed=7).is_genuine(ticket)

    def test_rejects_non_uid(self):
        assert not TicketBook().is_genuine("uid:0.0")

    def test_serial_out_of_range(self):
        with pytest.raises(HandshakeError, match="out of range"):
            TicketBook().ticket(-1)


def run(coroutine):
    return asyncio.run(coroutine)


async def _serve_one(book, server_uid, credit=0):
    """A one-connection server returning the handshake outcome."""
    result: dict = {}

    async def handler(reader, writer):
        try:
            result["hello"] = await expect_hello(
                reader, writer, book, server_uid, credit=credit
            )
        except HandshakeError as error:
            result["error"] = error
        finally:
            writer.close()

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    return server, port, result


class TestHandshakeOverSockets:
    def test_genuine_ticket_accepted_and_welcomed(self):
        async def scenario():
            book = TicketBook(space=0, seed=3)
            server, port, result = await _serve_one(book, book.ticket(0), credit=8)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            welcome = await send_hello(
                reader, writer, TicketBook(space=0, seed=3).ticket(1),
                ROLE_PUSH, book=TicketBook(space=0, seed=3),
            )
            server.close()
            await server.wait_closed()
            return welcome, result

        welcome, result = run(scenario())
        assert welcome.type is FrameType.WELCOME
        assert welcome.body["credit"] == 8
        assert result["hello"].role == ROLE_PUSH
        assert result["hello"].uid.serial == 1

    def test_forged_ticket_rejected_with_error_frame(self):
        async def scenario():
            book = TicketBook(space=0, seed=3)
            server, port, result = await _serve_one(book, book.ticket(0))
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            forged = UID(space=0, serial=1, nonce=123456789)
            with pytest.raises(HandshakeError, match="forged-uid"):
                await send_hello(reader, writer, forged, ROLE_PULL)
            server.close()
            await server.wait_closed()
            return result

        result = run(scenario())
        assert "forged" in str(result["error"])

    def test_wrong_first_frame_rejected(self):
        async def scenario():
            book = TicketBook(space=0, seed=3)
            server, port, result = await _serve_one(book, book.ticket(0))
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame(writer, Frame(FrameType.READ, {"batch": 1}))
            reply = await read_frame(reader)
            server.close()
            await server.wait_closed()
            return reply, result

        reply, result = run(scenario())
        assert reply.type is FrameType.ERROR
        assert reply.body["code"] == "bad-hello"
        assert isinstance(result["error"], HandshakeError)

    def test_unknown_role_rejected(self):
        async def scenario():
            book = TicketBook(space=0, seed=3)
            server, port, _result = await _serve_one(book, book.ticket(0))
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            await write_frame(writer, Frame(FrameType.HELLO, {
                "uid": book.ticket(1), "role": "teleport", "channel": "Output",
            }))
            reply = await read_frame(reader)
            server.close()
            await server.wait_closed()
            return reply

        reply = run(scenario())
        assert reply.type is FrameType.ERROR
        assert reply.body["code"] == "bad-role"

    def test_mutual_auth_catches_impostor_server(self):
        async def scenario():
            # The impostor verifies clients correctly (it somehow knows
            # the book) but presents a ticket from the wrong book in
            # its WELCOME; the client's mutual check must catch it.
            verifying_book = TicketBook(space=0, seed=3)
            impostor_uid = TicketBook(space=0, seed=999).ticket(0)
            server, port, _result = await _serve_one(verifying_book, impostor_uid)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            client_book = TicketBook(space=0, seed=3)
            with pytest.raises(HandshakeError, match="not genuine"):
                await send_hello(
                    reader, writer, client_book.ticket(1), ROLE_PULL,
                    book=client_book,
                )
            server.close()
            await server.wait_closed()

        run(scenario())
