"""Debug-artifact capture for the wire-runtime tests.

When ``EDEN_NET_DEBUG_DIR`` is set and a test in this package fails,
the per-stage span logs, stats snapshots, flight-recorder segments,
and fleet manifest the test left in its ``tmp_path`` are copied there
under the test's node id.  CI points the variable at a directory it
uploads on failure, so a red run ships the traces needed to diagnose
it.  Copies keep their path relative to ``tmp_path``: flight segments
are ``flight/<stage>/seg-*.efl`` and every stage names its first
segment the same, so a flat copy would collide.
"""

import os
import pathlib
import re
import shutil

import pytest

ARTIFACT_GLOBS = ("*.trace.jsonl", "*.stats.json", "fleet.json", "*.efl")


def _sanitize(nodeid: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", nodeid)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    debug_dir = os.environ.get("EDEN_NET_DEBUG_DIR")
    if not debug_dir or report.when != "call" or not report.failed:
        return
    tmp_path = item.funcargs.get("tmp_path") if hasattr(item, "funcargs") else None
    if tmp_path is None:
        return
    found = [
        path
        for pattern in ARTIFACT_GLOBS
        for path in sorted(pathlib.Path(tmp_path).rglob(pattern))
    ]
    if not found:
        return
    base = pathlib.Path(tmp_path)
    target = pathlib.Path(debug_dir) / _sanitize(item.nodeid)
    for path in found:
        destination = target / path.relative_to(base)
        destination.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy2(path, destination)
