"""Acceptance: causal span chains across a real TCP fleet.

The observability bar for the wire runtime: run the paper's 3-filter
pipeline as separate OS processes with ``--trace-file`` on, merge the
per-stage span logs, and recover *exactly* the causal structure the
cost model predicts — ``n+1`` linked request spans per datum for the
asymmetric disciplines, ``2n+2`` for the conventional emulation — with
every trace one linear chain.  Also checks the simulator and the wire
runtime agree on that structure, and that ``eden-trace --verify``
gates on it.
"""

import json

import pytest

from repro.analysis import predicted_invocations
from repro.core import Kernel
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.obs.merge import load_span_log, merge_span_logs, verify_invocation_chains
from repro.obs.trace_cli import main as trace_main
from repro.transput.filterbase import identity_transducer
from repro.transput.pipeline import compose_segment

N_FILTERS = 3
ITEMS = ["alpha", "beta", "gamma"]


def traced_run(tmp_path, discipline):
    plans = plan_linear_fleet(
        discipline, [IDENTITY] * N_FILTERS, str(tmp_path),
        source_items=list(ITEMS), trace=True,
    )
    result = run_fleet(plans, timeout=60)
    assert result.output == ITEMS
    return result


def merged_trees(result):
    return merge_span_logs(
        [load_span_log(path) for path in result.trace_files]
    )


@pytest.mark.parametrize("discipline,hops", [
    ("readonly", N_FILTERS + 1),
    ("writeonly", N_FILTERS + 1),
    ("conventional", 2 * N_FILTERS + 2),
])
def test_wire_chains_match_cost_model(tmp_path, discipline, hops):
    result = traced_run(tmp_path, discipline)
    trees = merged_trees(result)
    report = verify_invocation_chains(
        trees, discipline, N_FILTERS, len(ITEMS)
    )
    assert report.ok, report.problems
    assert report.expected_spans_per_trace == hops
    assert report.total_spans == predicted_invocations(
        discipline, N_FILTERS, len(ITEMS)
    )
    assert all(tree.is_chain() for tree in trees)


def test_wire_and_simulator_agree_on_chain_shape(tmp_path):
    result = traced_run(tmp_path, "readonly")
    wire_trees = merged_trees(result)

    kernel = Kernel(spans=True)
    pipeline = compose_segment(
        kernel, "readonly", list(ITEMS),
        [identity_transducer(f"f{index}") for index in range(N_FILTERS)],
    )
    assert pipeline.run_to_completion() == ITEMS
    sim_trees = merge_span_logs(
        [load_span_log(kernel.tracer.events, stage="sim")]
    )

    def shape(trees):
        # (spans per trace, ops along the causal chain) per trace,
        # normalised across the runtimes' op spellings.
        return sorted(
            (tree.span_count,
             tuple(record.op.upper() for record in tree.critical_path()))
            for tree in trees
        )

    assert shape(wire_trees) == shape(sim_trees)


def test_fleet_manifest_lists_trace_files(tmp_path):
    plan_linear_fleet(
        "readonly", [IDENTITY] * N_FILTERS, str(tmp_path),
        source_items=list(ITEMS), trace=True, control=True,
    )
    with open(tmp_path / "fleet.json", encoding="utf-8") as handle:
        manifest = json.load(handle)
    assert manifest["discipline"] == "readonly"
    stages = manifest["stages"]
    assert len(stages) == N_FILTERS + 2
    assert all(stage["trace_file"] for stage in stages)
    assert all(stage["control_port"] for stage in stages)


def test_eden_trace_verify_gates_on_chain_structure(tmp_path, capsys):
    result = traced_run(tmp_path, "readonly")
    files = list(result.trace_files)

    good = trace_main(files + ["--verify", "readonly", str(N_FILTERS),
                               str(len(ITEMS))])
    assert good == 0
    assert "OK" in capsys.readouterr().out

    bad = trace_main(files + ["--verify", "conventional", str(N_FILTERS),
                              str(len(ITEMS))])
    assert bad == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_eden_trace_summary_and_listing(tmp_path, capsys):
    result = traced_run(tmp_path, "readonly")
    files = list(result.trace_files)

    assert trace_main(files) == 0
    summary = capsys.readouterr().out
    assert f"traces: {len(ITEMS) + 1}" in summary
    assert "critical path" in summary

    assert trace_main(files + ["--list"]) == 0
    listing = capsys.readouterr().out.strip().splitlines()
    assert len(listing) == len(ITEMS) + 1
