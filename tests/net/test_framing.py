"""Unit tests for the wire frame codec."""

import struct

import pytest

from repro.core.capability import ChannelCapability
from repro.core.uid import UIDFactory
from repro.net.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameType,
    HEADER,
    MAGIC,
    MAX_FRAME_BODY,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
)


def roundtrip(frame: Frame) -> Frame:
    decoded, consumed = decode_frame(encode_frame(frame))
    assert consumed == len(encode_frame(frame))
    return decoded


class TestFrameRoundtrip:
    def test_every_type_roundtrips_empty(self):
        for frame_type in FrameType:
            assert roundtrip(Frame(frame_type)) == Frame(frame_type)

    def test_data_frame_carries_items(self):
        frame = Frame(FrameType.DATA, {"items": ["a", "b"], "channel": "Output"})
        assert roundtrip(frame) == frame

    def test_read_frame_carries_batch_and_channel(self):
        frame = Frame(FrameType.READ, {"batch": 4, "channel": 2})
        assert roundtrip(frame) == frame

    def test_frames_are_length_prefixed_back_to_back(self):
        one = Frame(FrameType.READ, {"batch": 1, "channel": "Output"})
        two = Frame(FrameType.END, {"channel": "Output"})
        buffer = encode_frame(one) + encode_frame(two)
        first, consumed = decode_frame(buffer)
        second, _rest = decode_frame(buffer[consumed:])
        assert (first, second) == (one, two)


class TestHeaderValidation:
    def test_bad_magic_rejected(self):
        wire = bytearray(encode_frame(Frame(FrameType.END)))
        wire[:4] = b"XXXX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(wire))

    def test_unknown_type_rejected(self):
        wire = HEADER.pack(MAGIC, 250, 2) + b"{}"
        with pytest.raises(FrameError, match="unknown frame type"):
            decode_frame(wire)

    def test_truncated_header_rejected(self):
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(b"EDN")

    def test_truncated_body_rejected(self):
        wire = encode_frame(Frame(FrameType.DATA, {"items": [1, 2, 3]}))
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(wire[:-1])

    def test_oversized_declared_body_rejected(self):
        wire = HEADER.pack(MAGIC, int(FrameType.END), MAX_FRAME_BODY + 1)
        with pytest.raises(FrameError, match="MAX_FRAME_BODY"):
            decode_frame(wire + b"x")

    def test_non_object_body_rejected(self):
        body = b"[1,2]"
        wire = HEADER.pack(MAGIC, int(FrameType.END), len(body)) + body
        with pytest.raises(FrameError, match="object"):
            decode_frame(wire)

    def test_header_is_nine_bytes(self):
        assert HEADER.size == struct.calcsize("!4sBI") == 9


class TestPayloadCodec:
    def test_bytes_tagged(self):
        assert decode_payload(encode_payload(b"\x00\xff")) == b"\x00\xff"

    def test_tuple_preserved_not_listified(self):
        value = ("a", (1, 2), [3, (4,)])
        assert decode_payload(encode_payload(value)) == value

    def test_uid_roundtrips(self):
        uid = UIDFactory(space=3, seed=9).issue()
        assert decode_payload(encode_payload(uid)) == uid

    def test_channel_capability_roundtrips_with_secret(self):
        owner = UIDFactory(space=1).issue()
        capability = ChannelCapability(owner=owner, name="Report", secret=12345)
        back = decode_payload(encode_payload(capability))
        assert back == capability
        assert back.secret == 12345

    def test_dict_with_reserved_key_escapes(self):
        tricky = {"__bytes__": "not really", "plain": 1}
        assert decode_payload(encode_payload(tricky)) == tricky

    def test_dict_with_non_string_keys(self):
        value = {1: "one", (2, 3): "pair"}
        assert decode_payload(encode_payload(value)) == value

    def test_unencodable_object_raises(self):
        with pytest.raises(FrameError, match="cannot encode"):
            encode_payload(object())

    def test_nan_rejected_at_frame_level(self):
        with pytest.raises(FrameError, match="unencodable"):
            encode_frame(Frame(FrameType.DATA, {"items": [float("nan")]}))


class TestFrameDecoder:
    def test_byte_at_a_time_feed(self):
        frame = Frame(FrameType.DATA, {"items": list(range(10)), "channel": 0})
        decoder = FrameDecoder()
        seen = []
        for byte in encode_frame(frame):
            seen.extend(decoder.feed(bytes([byte])))
        assert seen == [frame]
        assert decoder.pending == 0

    def test_many_frames_in_one_chunk(self):
        frames = [Frame(FrameType.READ, {"batch": n}) for n in range(1, 6)]
        decoder = FrameDecoder()
        wire = b"".join(encode_frame(frame) for frame in frames)
        assert decoder.feed(wire) == frames

    def test_partial_tail_stays_pending(self):
        frame = Frame(FrameType.END, {"channel": "Output"})
        wire = encode_frame(frame)
        decoder = FrameDecoder()
        assert decoder.feed(wire + wire[:5]) == [frame]
        assert decoder.pending == 5

    def test_garbage_feed_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(FrameError, match="magic"):
            decoder.feed(b"garbage-that-is-long-enough")


class TestBinaryCodec:
    """The negotiated high-throughput body codec (flag bit 0x80)."""

    def binary_roundtrip(self, frame):
        from repro.net.framing import CODEC_BINARY
        wire = encode_frame(frame, CODEC_BINARY)
        decoded, consumed = decode_frame(wire)
        assert consumed == len(wire)
        return decoded

    def test_every_type_roundtrips_empty(self):
        for frame_type in FrameType:
            frame = Frame(frame_type, {})
            assert self.binary_roundtrip(frame) == frame

    def test_flag_bit_marks_binary_frames(self):
        from repro.net.framing import BINARY_FLAG, CODEC_BINARY
        frame = Frame(FrameType.DATA, {"items": ["x"]})
        binary_wire = encode_frame(frame, CODEC_BINARY)
        json_wire = encode_frame(frame)
        assert binary_wire[4] & BINARY_FLAG
        assert not json_wire[4] & BINARY_FLAG

    def test_scalars_roundtrip_natively(self):
        frame = Frame(FrameType.DATA, {"items": [
            None, True, False, 0, -1, 2**80, -(2**80), 1.5, "héllo",
            b"\x00\xff", (1, 2), [3, 4], {"k": "v", 9: "int-key"},
        ]})
        assert self.binary_roundtrip(frame) == frame

    def test_uid_and_capability_roundtrip(self):
        uid = UIDFactory(space=3).issue()
        capability = ChannelCapability(owner=uid, name="Output", secret=99)
        frame = Frame(FrameType.HELLO, {"channel": capability, "ticket": uid})
        assert self.binary_roundtrip(frame) == frame

    def test_binary_is_smaller_than_json_for_records(self):
        from repro.net.framing import CODEC_BINARY
        frame = Frame(FrameType.DATA, {
            "items": [f"record-{i}" for i in range(64)], "seq": 12,
        })
        assert len(encode_frame(frame, CODEC_BINARY)) < len(encode_frame(frame))

    def test_trailing_bytes_in_body_rejected(self):
        from repro.net.framing import CODEC_BINARY
        wire = bytearray(encode_frame(Frame(FrameType.READ, {"batch": 1}),
                                      CODEC_BINARY))
        wire += b"\x00"
        body_len = struct.unpack("!I", wire[5:9])[0]
        struct.pack_into("!I", wire, 5, body_len + 1)
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(bytes(wire))

    def test_unknown_type_reports_the_unflagged_code(self):
        from repro.net.framing import BINARY_FLAG, CHAN_FLAG
        wire = HEADER.pack(MAGIC, 38 | BINARY_FLAG, 0)
        with pytest.raises(FrameError, match="unknown frame type 38"):
            decode_frame(wire)
        # Both flag bits strip: a garbage byte that happens to carry
        # CHAN_FLAG still reports the bare type, not an extension error.
        wire = HEADER.pack(MAGIC, 38 | BINARY_FLAG | CHAN_FLAG, 0)
        with pytest.raises(FrameError, match="unknown frame type 38"):
            decode_frame(wire)

    def test_unencodable_object_raises(self):
        from repro.net.framing import CODEC_BINARY
        with pytest.raises(FrameError, match="cannot encode"):
            encode_frame(Frame(FrameType.DATA, {"items": [object()]}),
                         CODEC_BINARY)

    def test_unknown_codec_name_rejected(self):
        with pytest.raises(FrameError, match="codec"):
            encode_frame(Frame(FrameType.READ, {}), "msgpack")


class TestDecoderCompaction:
    """feed() keeps a running offset instead of re-slicing the residue
    after every frame (the quadratic-copy fix)."""

    def test_residue_compacts_once_half_consumed(self):
        frames = [Frame(FrameType.READ, {"batch": n}) for n in range(1, 40)]
        wire = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        assert decoder.feed(wire) == frames
        assert decoder.pending == 0
        assert len(decoder._buffer) == 0

    def test_pending_counts_only_unconsumed_bytes(self):
        frame = Frame(FrameType.DATA, {"items": ["abc"]})
        wire = encode_frame(frame)
        decoder = FrameDecoder()
        decoder.feed(wire + wire[:7])
        assert decoder.pending == 7
        # The leftover prefix completes into a frame on the next feed.
        assert decoder.feed(wire[7:]) == [frame]
        assert decoder.pending == 0

    def test_interleaved_feeds_never_duplicate(self):
        frames = [
            Frame(FrameType.DATA, {"items": [f"r{i}"], "seq": i})
            for i in range(25)
        ]
        wire = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        out = []
        for start in range(0, len(wire), 13):
            out.extend(decoder.feed(wire[start:start + 13]))
        assert out == frames


class TestDecoderShrink:
    """After one huge frame the residual buffer must give the memory
    back: a long-lived connection that once saw a 4 MB frame must not
    hold a 4 MB bytearray forever."""

    def test_buffer_shrinks_after_large_frame(self):
        import sys

        from repro.net.framing import DECODER_SHRINK

        big = Frame(FrameType.DATA, {"items": ["x" * (1 << 22)]})
        small = Frame(FrameType.READ, {"batch": 1})
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(big)) == [big]
        # A few small frames later the backing allocation is small
        # again (well under the shrink threshold, not ~4 MB).
        for _ in range(3):
            assert decoder.feed(encode_frame(small)) == [small]
        assert sys.getsizeof(decoder._buffer) < DECODER_SHRINK

    def test_shrink_preserves_partial_frames(self):
        big = Frame(FrameType.DATA, {"items": ["y" * (1 << 21)]})
        tail = Frame(FrameType.DATA, {"items": ["tail"]})
        wire = encode_frame(big) + encode_frame(tail)
        decoder = FrameDecoder()
        # Deliver everything except the last 5 bytes, then the rest:
        # the shrink rebuild must carry the partial tail over intact.
        assert decoder.feed(wire[:-5]) == [big]
        assert decoder.pending == len(encode_frame(tail)) - 5
        assert decoder.feed(wire[-5:]) == [tail]
        assert decoder.pending == 0

    def test_small_traffic_never_shrinks(self):
        frame = Frame(FrameType.READ, {"batch": 2})
        decoder = FrameDecoder(shrink_threshold=1 << 16)
        for _ in range(100):
            decoder.feed(encode_frame(frame))
        assert decoder.buffer_size <= len(encode_frame(frame))

    def test_feed_sized_reports_wire_lengths(self):
        frames = [
            Frame(FrameType.DATA, {"items": ["a" * n]}) for n in (1, 50, 9)
        ]
        wire = b"".join(encode_frame(frame) for frame in frames)
        decoder = FrameDecoder()
        sized = decoder.feed_sized(wire)
        assert [frame for frame, _size in sized] == frames
        assert [size for _frame, size in sized] == [
            len(encode_frame(frame)) for frame in frames
        ]
        assert sum(size for _frame, size in sized) == len(wire)

    def test_feed_sized_accepts_memoryview(self):
        frame = Frame(FrameType.DATA, {"items": ["mv"]})
        wire = encode_frame(frame)
        decoder = FrameDecoder()
        assert decoder.feed_sized(memoryview(wire)) == [(frame, len(wire))]


class TestBufferedFrameReader:
    """Segment-oriented reads: one read() call amortises over every
    frame the segment carried."""

    def _serve(self, payload: bytes):
        import asyncio

        from repro.net.framing import BufferedFrameReader

        async def run():
            received = []
            errors = []
            done = asyncio.Event()

            async def handle(reader, _writer):
                frames = BufferedFrameReader(reader)
                try:
                    while True:
                        frame, size = await frames.recv()
                        if frame is None:
                            break
                        received.append((frame, size))
                        # Drain whatever the segment already decoded.
                        while True:
                            extra = frames.recv_nowait()
                            if extra is None:
                                break
                            received.append(extra)
                except FrameError as error:
                    errors.append(error)
                finally:
                    done.set()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(payload)
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), 5.0)
            server.close()
            await server.wait_closed()
            if errors:
                raise errors[0]
            return received

        import asyncio as _asyncio

        return _asyncio.run(run())

    def test_roundtrips_with_wire_sizes(self):
        frames = [
            Frame(FrameType.DATA, {"items": [f"r{i}"]}) for i in range(20)
        ]
        wire = [encode_frame(frame) for frame in frames]
        received = self._serve(b"".join(wire))
        assert [frame for frame, _size in received] == frames
        assert [size for _frame, size in received] == [len(w) for w in wire]

    def test_eof_mid_frame_raises(self):
        wire = encode_frame(Frame(FrameType.DATA, {"items": ["cut"]}))
        with pytest.raises(FrameError, match="mid-frame"):
            self._serve(wire[:-3])


class TestSocketFrameReader:
    def test_recv_into_roundtrip(self):
        import socket

        from repro.net.framing import SocketFrameReader

        frames = [
            Frame(FrameType.DATA, {"items": ["s", i]}) for i in range(10)
        ]
        left, right = socket.socketpair()
        try:
            left.sendall(b"".join(encode_frame(frame) for frame in frames))
            left.close()
            reader = SocketFrameReader(right, chunk=32)
            received = []
            while True:
                frame, _size = reader.recv()
                if frame is None:
                    break
                received.append(frame)
            assert received == frames
        finally:
            right.close()
