"""Kill a stage mid-stream; the supervised fleet finishes losslessly.

The acceptance bar for the fault-tolerance work: with ``resume=True``,
killing any stage of a running TCP pipeline after the k-th datum must
end with (1) the complete output at the sink, (2) span-level evidence —
checked by :func:`repro.obs.merge.verify_exactly_once`, the engine of
``eden-trace --verify-once`` — that every datum crossed each link
exactly once, and (3) the restart visible in the supervisor's counters
under the stage's own instance label.

The matrix kills each role of the read-only discipline once (source,
middle filter, sink), plus a filter under each push discipline.
"""

import os

import pytest

from repro.api import Pipeline
from repro.fault import FaultPlan
from repro.obs import load_span_log, to_prometheus
from repro.obs.merge import verify_exactly_once
from repro.obs.registry import stats_from_payload

ITEMS = [f"datum-{i:02d}" for i in range(20)]
IDENTITY = "repro.transput:identity_transducer"
KILL_AT = 7


def run_with_kill(discipline, victim_serial, tmp_path, trace=True):
    # EDEN_CHAOS_FLIGHT switches the flight recorder on fleet-wide;
    # nightly CI sets it so a failed kill-matrix run ships frame-level
    # captures (tmp_path/flight/**/*.efl) next to the span logs.
    flight = (
        str(tmp_path / "flight")
        if os.environ.get("EDEN_CHAOS_FLIGHT") else None
    )
    return Pipeline(
        [IDENTITY] * 3, discipline=discipline, source=ITEMS,
    ).run(
        runtime="tcp",
        flight=flight,
        workdir=str(tmp_path),
        faults={victim_serial: FaultPlan(kill_after=KILL_AT)},
        resume=True,
        max_restarts=2,
        io_timeout=5.0,
        timeout=90.0,
        trace=trace,
    )


def assert_exactly_once(result, expected):
    logs = [load_span_log(path) for path in result.trace_files]
    report = verify_exactly_once(logs, expected=expected)
    assert report.ok, report.summary() + "".join(
        f"\n  - {problem}" for problem in report.problems
    )
    return report


def test_killing_the_middle_filter_is_survived(tmp_path):
    """The ISSUE's acceptance scenario, end to end."""
    result = run_with_kill("readonly", victim_serial=2, tmp_path=tmp_path)

    # (1) the sink got every record, in order, exactly once.
    assert result.output == ITEMS

    # (2) span evidence: per reading stage, the accepted slices tile
    # the stream with no duplicate and no gap.
    report = assert_exactly_once(result, expected=len(ITEMS))
    assert all(count == len(ITEMS) for count in report.accepted.values())

    # (3) the recovery is observable: one injected kill, one restart,
    # attributed to the victim's instance label — in the JSON payload
    # and in the Prometheus rendering.
    counters = result.supervisor["counters"]
    assert counters["injected_kills"] == 1
    assert counters["crashes"] == 1
    assert counters["restarts"] == 1
    assert counters["restarts[filter#2]"] == 1
    assert result.restarts == 1
    rendered = to_prometheus(stats_from_payload(result.supervisor))
    assert 'eden_restarts_total{instance="filter#2"} 1' in rendered


@pytest.mark.parametrize("victim, label", [
    (0, "source#0"),
    (4, "sink#4"),
])
def test_killing_the_endpoints_is_survived(victim, label, tmp_path):
    result = run_with_kill("readonly", victim_serial=victim,
                           tmp_path=tmp_path)
    assert result.output == ITEMS
    assert_exactly_once(result, expected=len(ITEMS))
    assert result.supervisor["counters"][f"restarts[{label}]"] == 1


def test_killing_a_writeonly_filter_is_survived(tmp_path):
    # Push links carry no READ spans, so exactly-once rests on the
    # receivers' seq dedup; the sink's collected output is the check.
    result = run_with_kill("writeonly", victim_serial=2, tmp_path=tmp_path,
                           trace=False)
    assert result.output == ITEMS
    assert result.restarts == 1


def test_killing_a_conventional_filter_is_survived(tmp_path):
    result = run_with_kill("conventional", victim_serial=2,
                           tmp_path=tmp_path)
    assert result.output == ITEMS
    assert result.restarts == 1
    # Both pull sides of every pipe hop must tile the stream.
    assert_exactly_once(result, expected=len(ITEMS))


def test_eden_trace_cli_verifies_the_fleet(tmp_path, capsys):
    """``eden-trace --fleet ... --verify-once N`` is the scriptable face."""
    from repro.obs.trace_cli import main

    run_with_kill("readonly", victim_serial=2, tmp_path=tmp_path)
    code = main(["--fleet", str(tmp_path / "fleet.json"),
                 "--verify-once", str(len(ITEMS))])
    out = capsys.readouterr().out
    assert code == 0
    assert "EXACTLY-ONCE" in out
