"""The fleet supervisor: validation, restarts, and surviving diagnostics.

The recovery happy path (kill a stage mid-stream, watch the supervisor
restart it and the stream finish lossless) lives in
``tests/net/test_chaos_recovery.py``; these tests cover the
supervisor's contract edges — eager knob validation, survivor command
lines, and the property the old ``execute`` lacked: every stage's
stderr survives the fleet being killed, because it goes to files.
"""

import json

import pytest

from repro.fault import FaultPlan, FrameFault
from repro.net.launch import (
    FleetError,
    FleetSupervisor,
    plan_linear_fleet,
    run_fleet,
)

ITEMS = [f"line-{i}" for i in range(12)]
IDENTITY = ("repro.transput:identity_transducer", [])
BROKEN = ("repro.no_such_module:missing_factory", [])


def plan(tmp_path, transducers=(IDENTITY,), **kwargs):
    return plan_linear_fleet("readonly", list(transducers), str(tmp_path),
                      source_items=ITEMS, **kwargs)


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            FleetSupervisor([])

    @pytest.mark.parametrize("knob, bad", [
        ("timeout", 0), ("timeout", -1.0),
        ("max_restarts", -1), ("max_restarts", 1.5),
        ("poll_interval", 0),
    ])
    def test_bad_knobs_rejected_eagerly(self, tmp_path, knob, bad):
        plans = plan(tmp_path)
        with pytest.raises(ValueError, match=knob):
            FleetSupervisor(plans, **{knob: bad})

    def test_backoff_ordering_enforced(self, tmp_path):
        with pytest.raises(ValueError, match="backoff"):
            FleetSupervisor(plan(tmp_path), backoff_base=2.0, backoff_max=0.5)

    def test_fault_for_unknown_serial_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="serials"):
            plan(tmp_path, faults={9: FaultPlan(kill_after=1)})


class TestSurvivorArgv:
    def test_plain_plan_is_unchanged(self, tmp_path):
        for stage in plan(tmp_path):
            assert stage.survivor_argv() == stage.argv

    def test_one_shot_fault_is_stripped_on_restart(self, tmp_path):
        stage = plan(tmp_path, faults={1: FaultPlan(kill_after=3)})[1]
        assert "--fault-json" in stage.argv
        survivor = stage.survivor_argv()
        assert "--fault-json" not in survivor
        assert len(survivor) == len(stage.argv) - 2

    def test_periodic_faults_persist_across_restart(self, tmp_path):
        fault = FaultPlan(
            kill_after=3,
            frame_faults=[FrameFault(action="duplicate", every=4)],
        )
        stage = plan(tmp_path, faults={1: fault})[1]
        survivor = stage.survivor_argv()
        at = survivor.index("--fault-json")
        shipped = FaultPlan.from_json(survivor[at + 1])
        assert shipped == fault.survivor()
        assert shipped.kill_after is None and shipped.frame_faults


class TestFailureDiagnostics:
    def test_crashing_stage_diagnosed_with_its_stderr(self, tmp_path):
        plans = plan(tmp_path, transducers=[BROKEN])
        with pytest.raises(FleetError, match="stage failures") as info:
            run_fleet(plans, timeout=30.0)
        # The diagnosis names the offender and quotes its traceback.
        assert "filter#1" in str(info.value)
        result = info.value.result
        assert result is not None
        assert len(result.stderr) == len(plans)
        assert "no_such_module" in result.stderr[1]

    def test_stderr_of_killed_stage_survives_fleet_kill(self, tmp_path):
        # The filter crashes (injected kill, rc=73) with no restart
        # budget; the supervisor kills the survivors.  The dead stage
        # wrote its last words to stderr *before* the fleet went down —
        # they must still be in the gathered result (the old
        # pipe-based ``execute`` lost them).
        plans = plan(tmp_path, faults={1: FaultPlan(kill_after=4)})
        with pytest.raises(FleetError, match="injected kill") as info:
            run_fleet(plans, timeout=30.0)
        result = info.value.result
        assert result is not None
        assert "fault: killed at datum" in result.stderr[1]

    def test_timeout_kills_fleet_but_gathers_partials(self, tmp_path):
        # Spawn only the listening half of a fleet (source + filter, no
        # sink): nobody ever demands data, so the fleet wedges until
        # the supervisor's deadline kills it.
        plans = plan(tmp_path)[:2]
        with pytest.raises(FleetError, match="fleet timeout") as info:
            run_fleet(plans, timeout=2.0)
        message = str(info.value)
        assert "source#0" in message and "filter#1" in message
        result = info.value.result
        assert result is not None
        assert len(result.stderr) == len(plans)
        assert result.output == []

    def test_budget_exhaustion_counts_every_crash(self, tmp_path):
        # kill_after survives restarts?  No: the survivor argv strips
        # it, so a restarted stage runs clean — but *without* resume the
        # stream cannot continue after the first death, so neighbours
        # fail and the run ends in stage failures.  The supervisor's
        # counters must still show the injected kill and the restart.
        plans = plan(tmp_path, faults={1: FaultPlan(kill_after=4)},
                     connect_deadline=3.0)
        with pytest.raises(FleetError) as info:
            run_fleet(plans, timeout=30.0, max_restarts=1)
        supervisor = info.value.result.supervisor
        counters = supervisor["counters"]
        assert counters["injected_kills"] >= 1
        assert counters["crashes"] >= 1
        assert counters.get("restarts", 0) >= 1

    def test_failure_reasons_distinguish_budget_and_timeout(self, tmp_path):
        budget = plan(tmp_path / "budget", transducers=[BROKEN])
        with pytest.raises(FleetError) as info:
            run_fleet(budget, timeout=30.0)
        assert info.value.reason == "budget"

        wedged = plan(tmp_path / "wedge")[:2]
        with pytest.raises(FleetError) as info:
            run_fleet(wedged, timeout=2.0)
        assert info.value.reason == "timeout"

    def test_stage_logs_land_next_to_stats(self, tmp_path):
        plans = plan(tmp_path, faults={1: FaultPlan(kill_after=4)})
        with pytest.raises(FleetError):
            run_fleet(plans, timeout=30.0)
        assert (tmp_path / "stage-1-filter.stderr.log").exists()
        assert (tmp_path / "stage-0-source.stdout.log").exists()


class TestRestartStorm:
    def test_aggregate_restarts_trip_the_storm_guard(self, tmp_path):
        # The broken filter crashes instantly, forever.  Its per-member
        # budget (5) would allow the churn to continue, but the fleet-
        # wide guard sees 3 restarts inside the window and stops the
        # run with its own distinct reason.
        plans = plan(tmp_path, transducers=[BROKEN])
        with pytest.raises(FleetError, match="restart storm") as info:
            run_fleet(plans, timeout=30.0, max_restarts=5,
                      storm_window=30.0, storm_max_restarts=2)
        assert info.value.reason == "restart-storm"
        result = info.value.result
        assert result is not None
        assert result.supervisor["counters"]["restart_storms"] == 1

    def test_quiet_fleet_never_trips_the_guard(self, tmp_path):
        result = run_fleet(plan(tmp_path), timeout=60.0,
                           storm_window=30.0, storm_max_restarts=1)
        assert result.output == ITEMS
        assert result.supervisor["counters"].get("restart_storms", 0) == 0

    @pytest.mark.parametrize("knob, bad", [
        ("storm_window", 0), ("storm_window", -1.0),
        ("storm_max_restarts", 0), ("storm_max_restarts", 1.5),
    ])
    def test_storm_knobs_validated_eagerly(self, tmp_path, knob, bad):
        with pytest.raises(ValueError, match=knob):
            FleetSupervisor(plan(tmp_path), **{knob: bad})


class TestCleanRun:
    def test_supervised_clean_run_matches_execute_semantics(self, tmp_path):
        result = run_fleet(plan(tmp_path), timeout=60.0)
        assert result.output == ITEMS
        assert result.restarts == 0
        assert result.supervisor["counters"].get("crashes", 0) == 0
        # The supervisor payload is also dumped beside the stage stats.
        with open(tmp_path / "supervisor.stats.json", encoding="utf-8") as f:
            assert json.load(f) == result.supervisor

    def test_manifest_records_resume_and_faults(self, tmp_path):
        plan_linear_fleet(
            "readonly", [IDENTITY], str(tmp_path),
            source_items=ITEMS, trace=True, resume=True,
            faults={1: FaultPlan(kill_after=2)},
        )
        with open(tmp_path / "fleet.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["resume"] is True
        assert manifest["stages"][1]["fault"] == {"kill_after": 2}
        assert manifest["stages"][0]["fault"] == {}

    def test_stage_plan_labels(self, tmp_path):
        plans = plan(tmp_path)
        assert [p.label for p in plans] == ["source#0", "filter#1", "sink#2"]
