"""End-to-end: real pipelines across OS processes over localhost TCP.

The acceptance bar for the net runtime: a source → 3 filters → sink
pipeline spread over separate processes must (a) produce byte-identical
output to the simulator for the same seed, and (b) measure exactly the
paper's invocation formulas on the wire — ``(n+1)(m+1)`` for the
asymmetric disciplines (claim C1), ``(2n+2)(m+1)`` for the
conventional emulation (claim C2's other half).
"""

import json

import pytest

from repro.analysis import predicted_invocations
from repro.core import Kernel
from repro.devices import random_lines
from repro.filters import grep, unique_adjacent, upper_case
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.transput import FlowPolicy, compose_segment

N_FILTERS = 3
ITEMS = 12
SEED = 7

FILTER_SPECS = [
    ("repro.filters:grep", ["stream"]),
    ("repro.filters:upper_case", []),
    ("repro.filters:unique_adjacent", []),
]


def simulator_output(discipline: str) -> list[str]:
    kernel = Kernel(seed=0)
    pipeline = compose_segment(
        kernel,
        discipline,
        random_lines(count=ITEMS, seed=SEED),
        [grep("stream"), upper_case(), unique_adjacent()],
    )
    return [str(line) for line in pipeline.run_to_completion()]


@pytest.mark.parametrize("discipline", ["readonly", "writeonly"])
def test_tcp_pipeline_matches_simulator_byte_for_byte(tmp_path, discipline):
    plans = plan_linear_fleet(
        discipline,
        FILTER_SPECS,
        str(tmp_path),
        source_count=ITEMS,
        source_seed=SEED,
    )
    assert len(plans) == N_FILTERS + 2  # source + 3 filters + sink processes
    result = run_fleet(plans, timeout=60)
    expected = simulator_output(discipline)
    wire_bytes = "\n".join(result.output).encode()
    simulated_bytes = "\n".join(expected).encode()
    assert wire_bytes == simulated_bytes


@pytest.mark.parametrize("discipline,processes", [
    ("readonly", N_FILTERS + 2),
    ("writeonly", N_FILTERS + 2),
    ("conventional", 2 * N_FILTERS + 3),  # + a pipe process per pair
])
def test_wire_invocations_match_paper_formula(tmp_path, discipline, processes):
    """Identity pipeline so every hop moves exactly m records."""
    plans = plan_linear_fleet(
        discipline,
        [IDENTITY] * N_FILTERS,
        str(tmp_path),
        source_items=list(range(ITEMS)),
    )
    assert len(plans) == processes
    result = run_fleet(plans, timeout=60)
    assert result.output == [str(index) for index in range(ITEMS)]
    assert result.invocations == predicted_invocations(
        discipline, N_FILTERS, ITEMS
    )


def test_readonly_halves_conventional_on_the_wire(tmp_path):
    """Claim C1 measured end-to-end on real sockets: the ratio is 1/2."""
    readonly = run_fleet(plan_linear_fleet(
        "readonly", [IDENTITY] * 2, str(tmp_path / "ro"),
        source_items=list(range(6)),
    ), timeout=60)
    conventional = run_fleet(plan_linear_fleet(
        "conventional", [IDENTITY] * 2, str(tmp_path / "cv"),
        source_items=list(range(6)),
    ), timeout=60)
    assert readonly.invocations * 2 == conventional.invocations


def test_batching_divides_wire_invocations(tmp_path):
    batched = run_fleet(plan_linear_fleet(
        "readonly", [IDENTITY], str(tmp_path),
        source_items=list(range(8)),
        flow=FlowPolicy(batch=4),
    ), timeout=60)
    assert batched.output == [str(index) for index in range(8)]
    assert batched.invocations == predicted_invocations("readonly", 1, 8, batch=4)


def test_lookahead_prefetch_preserves_output(tmp_path):
    """The eager knob (T4) on real sockets: same records, same order."""
    eager = run_fleet(plan_linear_fleet(
        "readonly", FILTER_SPECS, str(tmp_path),
        source_count=ITEMS, source_seed=SEED,
        flow=FlowPolicy.eager(lookahead=4),
    ), timeout=60)
    assert eager.output == simulator_output("readonly")


def test_writeonly_credit_window_bounds_frames(tmp_path):
    """inbox_capacity=1 forces one record per WRITE frame end-to-end."""
    lazy = run_fleet(plan_linear_fleet(
        "writeonly", [IDENTITY], str(tmp_path),
        source_items=list(range(5)),
        flow=FlowPolicy(batch=5, inbox_capacity=1),
    ), timeout=60)
    assert lazy.output == [str(index) for index in range(5)]
    # batch=5 would send one frame per hop, but the credit window of 1
    # chops it into 5; two hops -> 10 WRITE frames.
    assert lazy.totals.get("write_frames_sent") == 10


def test_stats_files_are_kernelstats_shaped(tmp_path):
    plans = plan_linear_fleet(
        "readonly", [IDENTITY], str(tmp_path), source_items=["only"],
    )
    result = run_fleet(plans, timeout=60)
    assert [stage["role"] for stage in result.stats] == [
        "source", "filter", "sink",
    ]
    for stage in result.stats:
        counters = stage["counters"]
        assert all(isinstance(value, int) for value in counters.values())
        json.dumps(counters)  # snapshot-compatible, serializable
