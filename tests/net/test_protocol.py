"""In-process tests of the wire protocol's four-primitive mapping."""

import asyncio

import pytest

from repro.aio.streams import AioCollector, AioPipe, AioSource
from repro.core.errors import StreamProtocolError
from repro.net.handshake import TicketBook, expect_hello
from repro.net.metrics import NetStats
from repro.net.protocol import (
    Connection,
    RemoteReadable,
    RemoteWritable,
    WireError,
    connect_with_backoff,
    serve_pull,
    serve_push,
)
from repro.transput.stream import END_TRANSFER, Transfer

BOOK_ARGS = dict(space=0, seed=11)


def run(coroutine):
    return asyncio.run(coroutine)


async def start_stage_server(readables=None, writable=None, credit=4):
    """A minimal single-purpose stage server for protocol tests."""
    book = TicketBook(**BOOK_ARGS)
    server_uid = book.ticket(0)
    stats = NetStats()

    async def handler(reader, writer):
        try:
            hello = await expect_hello(reader, writer, book, server_uid,
                                       credit=credit)
        except Exception:
            return
        connection = Connection(reader, writer, stats=stats)
        try:
            if hello.role == "pull":
                await serve_pull(connection, readables, hello)
            else:
                await serve_push(connection, writable, hello)
        except (WireError, ConnectionError):
            pass
        finally:
            await connection.close()

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    return server, port, stats


def client_book() -> TicketBook:
    return TicketBook(**BOOK_ARGS)


class TestPullProtocol:
    def test_remote_readable_drains_a_source(self):
        async def scenario():
            server, port, _stats = await start_stage_server(
                readables=AioSource(["a", "b", "c"])
            )
            remote = RemoteReadable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            got = []
            while True:
                transfer = await remote.read(1)
                if transfer.at_end:
                    break
                got.extend(transfer.items)
            server.close()
            await server.wait_closed()
            return got, remote

        got, remote = run(scenario())
        assert got == ["a", "b", "c"]
        # one READ per record plus the END read: m+1 invocations.
        assert remote.stats.get("invocations_sent") == 4
        assert remote.stats.get("read_frames_sent") == 4
        assert remote.stats.get("data_frames_received") == 3
        assert remote.stats.get("end_frames_received") == 1

    def test_end_is_cached_locally(self):
        async def scenario():
            server, port, _stats = await start_stage_server(
                readables=AioSource([])
            )
            remote = RemoteReadable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            first = await remote.read()
            second = await remote.read()
            server.close()
            await server.wait_closed()
            return first, second, remote

        first, second, remote = run(scenario())
        assert first.at_end and second.at_end
        assert remote.stats.get("read_frames_sent") == 1  # second was local

    def test_batch_read_takes_up_to_batch(self):
        async def scenario():
            server, port, _stats = await start_stage_server(
                readables=AioSource(list(range(10)))
            )
            remote = RemoteReadable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            transfer = await remote.read(batch=4)
            server.close()
            await server.wait_closed()
            return transfer

        transfer = run(scenario())
        assert list(transfer.items) == [0, 1, 2, 3]

    def test_multi_channel_pull_by_name(self):
        async def scenario():
            channels = {
                "Output": AioSource(["primary"]),
                "Report": AioSource(["report-line"]),
            }
            server, port, _stats = await start_stage_server(readables=channels)
            outputs = {}
            for channel in ("Output", "Report"):
                remote = RemoteReadable(
                    "127.0.0.1", port, uid=client_book().ticket(1),
                    book=client_book(), channel=channel,
                )
                transfer = await remote.read()
                outputs[channel] = list(transfer.items)
                await remote.aclose()
            server.close()
            await server.wait_closed()
            return outputs

        outputs = run(scenario())
        assert outputs == {"Output": ["primary"], "Report": ["report-line"]}

    def test_unknown_channel_is_a_wire_error(self):
        async def scenario():
            server, port, _stats = await start_stage_server(
                readables={"Output": AioSource(["x"])}
            )
            remote = RemoteReadable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(), channel="NoSuch",
            )
            with pytest.raises(WireError, match="no-such-channel"):
                await remote.read()
            server.close()
            await server.wait_closed()

        run(scenario())


class TestPushProtocol:
    def test_remote_writable_fills_a_collector(self):
        async def scenario():
            collector = AioCollector()
            server, port, _stats = await start_stage_server(
                writable=collector, credit=4
            )
            remote = RemoteWritable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            await remote.write(Transfer.of(["x", "y"]))
            await remote.write(Transfer.of(["z"]))
            await remote.write(END_TRANSFER)
            server.close()
            await server.wait_closed()
            return collector, remote

        collector, remote = run(scenario())
        assert collector.items == ["x", "y", "z"]
        assert collector.done.is_set()
        # two WRITE frames + the pushed END: m'+1 style accounting.
        assert remote.stats.get("invocations_sent") == 3
        assert remote.stats.get("end_frames_sent") == 1

    def test_write_after_end_rejected_locally(self):
        async def scenario():
            collector = AioCollector()
            server, port, _stats = await start_stage_server(writable=collector)
            remote = RemoteWritable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            await remote.write(END_TRANSFER)
            with pytest.raises(StreamProtocolError):
                await remote.write(Transfer.of(["late"]))
            server.close()
            await server.wait_closed()

        run(scenario())

    def test_credit_window_one_is_synchronous(self):
        """Window 1 → every record waits for the previous ACK."""

        async def scenario():
            collector = AioCollector()
            server, port, stats = await start_stage_server(
                writable=collector, credit=1
            )
            remote = RemoteWritable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            await remote.write(Transfer.of(list(range(5))))
            await remote.write(END_TRANSFER)
            server.close()
            await server.wait_closed()
            return collector, remote

        collector, remote = run(scenario())
        assert collector.items == list(range(5))
        # one record per WRITE frame: the window chops the batch up.
        assert remote.stats.get("write_frames_sent") == 5

    def test_wide_credit_window_batches(self):
        async def scenario():
            collector = AioCollector()
            server, port, _stats = await start_stage_server(
                writable=collector, credit=64
            )
            remote = RemoteWritable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            await remote.write(Transfer.of(list(range(5))))
            await remote.write(END_TRANSFER)
            server.close()
            await server.wait_closed()
            return collector, remote

        collector, remote = run(scenario())
        assert collector.items == list(range(5))
        assert remote.stats.get("write_frames_sent") == 1  # whole batch fit


class TestPipeBothWays:
    def test_pipe_serves_push_and_pull(self):
        """A pipe process's core: passive input AND passive output."""

        async def scenario():
            pipe = AioPipe(capacity=8)
            server, port, _stats = await start_stage_server(
                readables=pipe, writable=pipe, credit=8
            )
            writer = RemoteWritable(
                "127.0.0.1", port, uid=client_book().ticket(1),
                book=client_book(),
            )
            reader = RemoteReadable(
                "127.0.0.1", port, uid=client_book().ticket(2),
                book=client_book(),
            )

            async def produce():
                for item in ("p", "q", "r"):
                    await writer.write(Transfer.single(item))
                await writer.write(END_TRANSFER)

            async def consume():
                got = []
                while True:
                    transfer = await reader.read()
                    if transfer.at_end:
                        return got
                    got.extend(transfer.items)

            _done, got = await asyncio.gather(produce(), consume())
            server.close()
            await server.wait_closed()
            return got

        assert run(scenario()) == ["p", "q", "r"]


class TestConnectBackoff:
    def test_connects_to_late_server(self):
        """The client retries until the listener appears."""

        async def scenario():
            from repro.net.stage import pick_free_port

            port = pick_free_port()
            results = {}

            async def late_server():
                await asyncio.sleep(0.3)
                server = await asyncio.start_server(
                    lambda r, w: w.close(), host="127.0.0.1", port=port
                )
                results["server"] = server

            async def client():
                reader, writer = await connect_with_backoff(
                    "127.0.0.1", port, deadline=10.0
                )
                writer.close()
                return True

            _none, connected = await asyncio.gather(late_server(), client())
            results["server"].close()
            await results["server"].wait_closed()
            return connected

        assert run(scenario())

    def test_gives_up_after_deadline(self):
        async def scenario():
            from repro.net.stage import pick_free_port

            with pytest.raises(WireError, match="could not connect"):
                await connect_with_backoff(
                    "127.0.0.1", pick_free_port(), deadline=0.2
                )

        run(scenario())
