"""Unit tests for the frame buffer pool."""

import pytest

from repro.core.stats import KernelStats
from repro.net.bufpool import BufferPool


class TestAcquireRelease:
    def test_first_acquire_is_a_miss(self):
        pool = BufferPool()
        buffer = pool.acquire()
        assert buffer == bytearray()
        assert (pool.hits, pool.misses) == (0, 1)

    def test_released_buffer_is_recycled(self):
        pool = BufferPool()
        buffer = pool.acquire()
        buffer += b"some frame bytes"
        pool.release(buffer)
        again = pool.acquire()
        assert again is buffer
        assert again == bytearray()  # cleared, not carrying old bytes
        assert (pool.hits, pool.misses) == (1, 1)

    def test_free_list_is_bounded(self):
        pool = BufferPool(max_buffers=2)
        buffers = [pool.acquire() for _ in range(5)]
        for buffer in buffers:
            pool.release(buffer)
        assert len(pool) == 2

    def test_oversize_buffers_are_dropped_not_pooled(self):
        pool = BufferPool(max_buffer=64)
        buffer = pool.acquire()
        buffer += b"x" * 65
        pool.release(buffer)
        assert len(pool) == 0
        assert pool.oversize_drops == 1

    def test_foreign_buffers_are_accepted(self):
        pool = BufferPool()
        pool.release(bytearray(b"never acquired"))
        assert len(pool) == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            BufferPool(max_buffers=0)
        with pytest.raises(ValueError):
            BufferPool(max_buffer=0)


class TestHealth:
    def test_hit_rate(self):
        pool = BufferPool()
        assert pool.hit_rate == 0.0
        first = pool.acquire()
        pool.release(first)
        pool.acquire()
        assert pool.hit_rate == 0.5

    def test_export_gauges(self):
        pool = BufferPool()
        pool.release(pool.acquire())
        pool.acquire()
        stats = KernelStats()
        pool.export_gauges(stats)
        gauges = stats.gauges()
        assert gauges["bufpool_hit_rate"] == 0.5
        assert gauges["bufpool_hits"] == 1.0
        assert gauges["bufpool_misses"] == 1.0
        assert gauges["bufpool_free"] == 0.0
