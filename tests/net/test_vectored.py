"""Vectored socket writes: parity with joined writes, safety fallbacks.

The contract under test: whichever path :func:`write_vectored` takes —
one ``sendmsg`` iovec, a partial send completed by the transport, or
the joined single ``write`` fallback — the byte stream on the wire is
identical.
"""

import asyncio

import pytest

from repro.core.stats import KernelStats
from repro.net.framing import Frame, FrameType, encode_frame
from repro.net.vectored import IOV_MAX, sendmsg_supported, write_vectored


def burst(count: int = 8) -> list[bytes]:
    return [
        encode_frame(Frame(FrameType.DATA, {"items": [f"record-{i}"] * 3}))
        for i in range(count)
    ]


async def _echo_received(buffers, **kwargs):
    """Send ``buffers`` through a real loopback socket; return the
    bytes the peer read and the stats the writer recorded."""
    received = bytearray()
    done = asyncio.Event()

    async def handle(reader, _writer):
        while True:
            chunk = await reader.read(1 << 16)
            if not chunk:
                break
            received.extend(chunk)
        done.set()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    _reader, writer = await asyncio.open_connection("127.0.0.1", port)
    stats = KernelStats()
    total = write_vectored(writer, buffers, stats, **kwargs)
    await writer.drain()
    writer.close()
    await writer.wait_closed()
    await asyncio.wait_for(done.wait(), 5.0)
    server.close()
    await server.wait_closed()
    return bytes(received), stats, total


class TestParity:
    def test_vectored_bytes_identical_to_joined(self):
        buffers = burst()
        received, stats, total = asyncio.run(_echo_received(buffers))
        assert received == b"".join(buffers)
        assert total == len(received)
        # A live loopback transport takes the sendmsg fast path.
        assert stats.get("sendmsg_writes") + stats.get(
            "sendmsg_partial_writes") + stats.get("coalesced_writes") >= 1

    def test_mixed_buffer_types(self):
        frames = burst(3)
        buffers = [frames[0], bytearray(frames[1]), memoryview(frames[2])]
        received, _stats, _total = asyncio.run(_echo_received(buffers))
        assert received == b"".join(bytes(b) for b in buffers)

    def test_burst_wider_than_iov_max(self):
        buffers = [b"x"] * (IOV_MAX + 7)
        received, _stats, total = asyncio.run(_echo_received(buffers))
        assert received == b"x" * (IOV_MAX + 7)
        assert total == IOV_MAX + 7

    def test_buffered_transport_falls_back_in_order(self):
        """Bytes already queued on the transport must go first: a
        non-empty write buffer forces the joined fallback."""

        async def run():
            received = bytearray()
            done = asyncio.Event()

            async def handle(reader, _writer):
                while True:
                    chunk = await reader.read(1 << 16)
                    if not chunk:
                        break
                    received.extend(chunk)
                done.set()

            server = await asyncio.start_server(handle, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            _reader, writer = await asyncio.open_connection("127.0.0.1", port)
            # Shrink the kernel's appetite so a large plain write leaves
            # bytes in the transport buffer, then write the burst.
            writer.transport.set_write_buffer_limits(high=0, low=0)
            head = b"h" * (1 << 22)
            writer.write(head)
            stats = KernelStats()
            write_vectored(writer, [b"tail-1", b"tail-2"], stats)
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.wait_for(done.wait(), 10.0)
            server.close()
            await server.wait_closed()
            return bytes(received), stats

        received, stats = asyncio.run(run())
        assert received == b"h" * (1 << 22) + b"tail-1tail-2"
        if stats.get("sendmsg_writes"):
            pytest.fail("took the fast path over a non-empty transport buffer")


class TestFallbacks:
    class SinkWriter:
        """A writer test double without any transport surface."""

        def __init__(self):
            self.writes = []

        def write(self, data):
            self.writes.append(bytes(data))

    def test_no_transport_means_joined_write(self):
        writer = self.SinkWriter()
        stats = KernelStats()
        total = write_vectored(writer, [b"ab", b"cd"], stats)
        assert writer.writes == [b"abcd"]
        assert total == 4
        assert stats.get("coalesced_writes") == 1
        assert stats.get("sendmsg_writes") == 0

    def test_empty_burst_writes_nothing(self):
        writer = self.SinkWriter()
        assert write_vectored(writer, [], None) == 0
        assert write_vectored(writer, [b"", b""], None) == 0
        assert writer.writes == []

    def test_sendmsg_supported(self):
        import socket

        assert not sendmsg_supported(None)
        with socket.socket() as sock:
            assert sendmsg_supported(sock) == hasattr(sock, "sendmsg")
