"""Unit tests for CPU core placement (affinity helpers + planners)."""

import json
import os

import pytest

from repro.net.affinity import (
    PLACEMENT_POLICIES,
    assign_cores,
    available_cores,
    current_affinity,
    pin_to_core,
)


class TestAssignCores:
    def test_round_robin_over_given_cores(self):
        assert assign_cores(5, cores=[0, 1, 2, 3]) == [0, 1, 2, 3, 0]

    def test_fewer_shards_than_cores_each_own_one(self):
        assert assign_cores(2, cores=[4, 5, 6, 7]) == [4, 5]

    def test_policy_none_never_pins(self):
        assert assign_cores(3, policy="none", cores=[0, 1]) == [None] * 3

    def test_single_core_machine_never_pins(self):
        # Pinning every shard to cpu0 would only add syscalls.
        assert assign_cores(4, cores=[0]) == [None] * 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="placement_policy"):
            assign_cores(2, policy="spread")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError, match="shards"):
            assign_cores(0)

    def test_default_uses_available_cores(self):
        cores = available_cores()
        expected = ([None] * 2 if len(cores) < 2 else cores[:2])
        assert assign_cores(2) == expected


class TestPinning:
    def test_pin_none_is_a_noop(self):
        assert pin_to_core(None) is False

    def test_pin_bogus_core_never_raises(self):
        assert pin_to_core(10_000_000) is False

    def test_pin_to_current_core_succeeds_on_linux(self):
        if not hasattr(os, "sched_setaffinity"):
            pytest.skip("platform has no sched_setaffinity")
        before = current_affinity()
        try:
            assert pin_to_core(before[0]) is True
            assert current_affinity() == [before[0]]
        finally:
            os.sched_setaffinity(0, set(before))

    def test_current_affinity_matches_available(self):
        if not hasattr(os, "sched_getaffinity"):
            assert current_affinity() is None
        else:
            assert current_affinity() == available_cores()


class TestPlannedPlacement:
    """The planners thread core assignments into plans and manifests."""

    SPECS = [("repro.filters:strip_whitespace", [])]

    def test_sharded_fleet_records_placement(self, tmp_path):
        from repro.net.launch import plan_sharded_fleet

        plans = plan_sharded_fleet(
            "readonly", self.SPECS, str(tmp_path), shards=2,
            source_items=["a", "b", "c", "d"], trace=True,
        )
        manifest = json.loads((tmp_path / "fleet.json").read_text())
        assert manifest["placement_policy"] == "cores"
        cores = manifest["shard_cores"]
        assert len(cores) == 2
        if len(available_cores()) >= 2:
            assert cores == available_cores()[:2]
            by_shard = {plan.shard: plan.cpu for plan in plans}
            assert by_shard == {0: cores[0], 1: cores[1]}
            for plan in plans:
                assert plan.argv[plan.argv.index("--cpu") + 1] == str(plan.cpu)
        else:
            # Single-core machine: command lines stay byte-identical
            # to the unpinned ones.
            assert cores == [None, None]
            assert all("--cpu" not in plan.argv for plan in plans)

    def test_policy_none_emits_no_cpu_flags(self, tmp_path):
        from repro.net.launch import plan_sharded_fleet

        plans = plan_sharded_fleet(
            "readonly", self.SPECS, str(tmp_path), shards=2,
            source_items=["a", "b"], placement_policy="none",
        )
        assert all("--cpu" not in plan.argv for plan in plans)
        assert all(plan.cpu is None for plan in plans)

    def test_hosted_fleet_records_placement(self, tmp_path):
        from repro.broker.launch import plan_hosted_fleet

        plans = plan_hosted_fleet(
            "readonly", self.SPECS, str(tmp_path),
            source_items=["a", "b"], hosts=2, trace=True,
        )
        manifest = json.loads((tmp_path / "fleet.json").read_text())
        assert manifest["placement_policy"] == "cores"
        host_cores = manifest["host_cores"]
        host_plans = [plan for plan in plans if plan.role == "host"]
        assert [plan.cpu for plan in host_plans] == host_cores
        for index in range(2):
            plan_data = json.loads(
                (tmp_path / f"host-{index}.plan.json").read_text()
            )
            assert plan_data["cpu"] == host_cores[index]

    def test_policies_tuple_is_the_contract(self):
        assert PLACEMENT_POLICIES == ("cores", "none")


class TestApiKnob:
    def test_placement_policy_is_tcp_only(self):
        from repro.api import Pipeline

        pipeline = Pipeline(
            stages=["repro.filters:strip_whitespace"],
            source=["x"], shards=2,
        )
        with pytest.raises(ValueError, match="placement_policy"):
            pipeline.run(runtime="sim", placement_policy="cores")

    def test_placement_policy_needs_shards_or_hosted(self):
        from repro.api import Pipeline

        pipeline = Pipeline(
            stages=["repro.filters:strip_whitespace"], source=["x"],
        )
        with pytest.raises(ValueError, match="shards"):
            pipeline.run(runtime="tcp", placement_policy="cores")

    def test_bogus_policy_rejected_eagerly(self):
        from repro.api import Pipeline

        pipeline = Pipeline(
            stages=["repro.filters:strip_whitespace"],
            source=["x"], shards=2,
        )
        with pytest.raises(ValueError, match="placement_policy"):
            pipeline.run(runtime="tcp", placement_policy="spread")
