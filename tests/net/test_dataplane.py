"""The fast data plane, end to end: negotiated binary framing, read
pipelining, adaptive autotuning and sharded fleets on real sockets.

Four contracts:

1. A fleet speaking the binary codec produces byte-identical output to
   the JSON fleet — the codec changes bytes-per-datum, never records.
2. Codec negotiation is per-link: a legacy JSON-only stage dropped into
   a binary fleet degrades its own links to JSON and the pipeline still
   runs losslessly (rolling upgrades need this).
3. Pipelined reads + binary framing preserve the recovery story: kill a
   stage mid-stream with ``resume=True`` and
   :func:`~repro.obs.merge.verify_exactly_once` still proves every
   datum crossed each link exactly once.
4. ``Pipeline(shards=N)`` partitions by content hash and yields the
   same multiset of records on every runtime, with per-shard outputs
   exposed.
"""

import dataclasses

import pytest

from repro.api import Pipeline
from repro.fault import FaultPlan
from repro.net.launch import IDENTITY, plan_linear_fleet, run_fleet
from repro.obs import load_span_log
from repro.obs.merge import verify_exactly_once
from repro.transput import FlowPolicy

ITEMS = [f"datum-{i:02d}" for i in range(20)]


def run_identity_fleet(tmp_path, codec, **kwargs):
    plans = plan_linear_fleet(
        "readonly", [IDENTITY] * 2, str(tmp_path),
        source_items=ITEMS, codec=codec, **kwargs,
    )
    return plans, run_fleet(plans, timeout=60)


class TestBinaryFleet:
    def test_binary_fleet_matches_json_fleet(self, tmp_path):
        _, json_result = run_identity_fleet(tmp_path / "json", "json")
        _, binary_result = run_identity_fleet(tmp_path / "bin", "binary")
        assert binary_result.output == json_result.output == ITEMS
        assert binary_result.invocations == json_result.invocations

    def test_binary_moves_fewer_bytes(self, tmp_path):
        _, json_result = run_identity_fleet(tmp_path / "json", "json")
        _, binary_result = run_identity_fleet(tmp_path / "bin", "binary")
        json_bytes = json_result.totals.get("bytes_sent")
        binary_bytes = binary_result.totals.get("bytes_sent")
        assert 0 < binary_bytes < json_bytes

    def test_legacy_json_stage_in_a_binary_fleet(self, tmp_path):
        """Per-link degradation: strip --codec from one filter (as if an
        old build were still deployed) and the fleet still drains."""
        plans = plan_linear_fleet(
            "readonly", [IDENTITY] * 2, str(tmp_path),
            source_items=ITEMS, codec="binary",
        )
        legacy = next(p for p in plans if p.role == "filter")
        argv = list(legacy.argv)
        at = argv.index("--codec")
        del argv[at:at + 2]
        plans[plans.index(legacy)] = dataclasses.replace(
            legacy, argv=tuple(argv)
        )
        result = run_fleet(plans, timeout=60)
        assert result.output == ITEMS


class TestPipelinedReads:
    @pytest.mark.parametrize("depth", [2, 8])
    def test_pipelining_is_lossless_and_ordered(self, tmp_path, depth):
        _, result = run_identity_fleet(
            tmp_path, "binary",
            flow=FlowPolicy(pipeline_depth=depth),
        )
        assert result.output == ITEMS

    def test_default_depth_keeps_invocation_parity(self, tmp_path):
        """depth=1 is the paper's strict alternation — the C1 count must
        be identical to the pre-pipelining runtime."""
        _, plain = run_identity_fleet(tmp_path / "plain", "json")
        _, deep = run_identity_fleet(
            tmp_path / "deep", "binary",
            flow=FlowPolicy(pipeline_depth=1),
        )
        assert deep.invocations == plain.invocations

    def test_resume_after_kill_under_pipelining(self, tmp_path):
        """The acceptance scenario: binary codec + 4-deep pipelining +
        a mid-stream kill of the middle filter, exactly-once proven
        from the span logs."""
        result = Pipeline(
            ["repro.transput:identity_transducer"] * 3,
            discipline="readonly", source=ITEMS,
        ).run(
            runtime="tcp",
            workdir=str(tmp_path),
            codec="binary",
            pipeline_depth=4,
            faults={2: FaultPlan(kill_after=7)},
            resume=True,
            max_restarts=2,
            io_timeout=5.0,
            timeout=90.0,
            trace=True,
        )
        assert result.output == ITEMS
        assert result.restarts == 1
        logs = [load_span_log(path) for path in result.trace_files]
        report = verify_exactly_once(logs, expected=len(ITEMS))
        assert report.ok, report.summary() + "".join(
            f"\n  - {problem}" for problem in report.problems
        )


class TestAdaptiveFlow:
    def test_adaptive_fleet_drains_and_exports_gauges(self, tmp_path):
        _, result = run_identity_fleet(
            tmp_path, "binary",
            flow=FlowPolicy(batch=2, credit_window=2, adaptive=True),
        )
        assert result.output == ITEMS
        tuned = [
            stage["gauges"] for stage in result.stats
            if "autotune_batch" in stage.get("gauges", {})
        ]
        assert tuned, "no stage exported autotuner gauges"
        assert all(g["autotune_batch"] >= 2 for g in tuned)
        assert all(g["autotune_credit"] >= 2 for g in tuned)


class TestShardedPipelines:
    def shard_pipeline(self, shards):
        return Pipeline(
            ["repro.transput:identity_transducer"] * 2,
            discipline="readonly", source=ITEMS, shards=shards,
        )

    @pytest.mark.parametrize("runtime", ["sim", "aio"])
    def test_in_process_sharding_preserves_the_multiset(self, runtime):
        result = self.shard_pipeline(4).run(runtime=runtime)
        assert sorted(result.output) == ITEMS
        assert result.shards == 4
        assert len(result.shard_outputs) == 4
        assert sorted(
            record for lines in result.shard_outputs for record in lines
        ) == ITEMS

    def test_tcp_sharding_matches_in_process(self, tmp_path):
        tcp = self.shard_pipeline(2).run(
            runtime="tcp", workdir=str(tmp_path), timeout=90.0,
            codec="binary",
        )
        sim = self.shard_pipeline(2).run(runtime="sim")
        assert tcp.output == sim.output
        assert tcp.invocations == sim.invocations
        assert tcp.shard_outputs == sim.shard_outputs

    def test_every_shard_sees_only_its_partition(self):
        from repro.transput.flow import shard_of
        result = self.shard_pipeline(4).run(runtime="sim")
        for index, lines in enumerate(result.shard_outputs):
            assert all(shard_of(line, 4) == index for line in lines)

    def test_faults_with_shards_rejected(self):
        with pytest.raises(ValueError, match="faults"):
            self.shard_pipeline(2).run(
                runtime="tcp", faults={1: FaultPlan(kill_after=1)},
            )
