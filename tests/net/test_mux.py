"""In-process tests of the logical-channel multiplexing layer.

A :class:`MuxChannel` must be indistinguishable from a ``Connection``
to the stream code above it, the :class:`FairWriter` must keep one hot
channel from starving the rest, and a dying connection must hang up
every channel.  These tests drive two :class:`ChannelMux` endpoints
over a real loopback socket (attaching the same channel ids on both
sides, as the broker's per-connection id rewriting guarantees).
"""

import asyncio

import pytest

from repro.net.framing import Frame, FrameType
from repro.net.metrics import NetStats
from repro.net.mux import CONTROL_CHANNEL, ChannelMux, FairWriter, MuxChannel


def run(coroutine):
    return asyncio.run(coroutine)


class SinkWriter:
    """A StreamWriter stand-in that records every write."""

    def __init__(self):
        self.writes = []

    def write(self, data):
        self.writes.append(bytes(data))

    async def drain(self):
        await asyncio.sleep(0)

    def close(self):
        pass

    async def wait_closed(self):
        pass


async def linked_muxes(**mux_options):
    """Two ChannelMux endpoints joined by a real loopback socket."""
    accepted = asyncio.get_running_loop().create_future()

    async def handler(reader, writer):
        accepted.set_result((reader, writer))

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    a_reader, a_writer = await asyncio.open_connection("127.0.0.1", port)
    b_reader, b_writer = await accepted
    left = ChannelMux(a_reader, a_writer, label="left", **mux_options)
    right = ChannelMux(b_reader, b_writer, label="right", **mux_options)
    left.start()
    right.start()
    return server, left, right


async def shutdown(server, *muxes):
    for mux in muxes:
        await mux.close()
    server.close()
    await server.wait_closed()


class TestFairWriter:
    def test_round_robin_interleaves_a_hot_channel(self):
        async def scenario():
            writer = SinkWriter()
            fair = FairWriter(writer)
            # Queue a burst on channel 1 and one frame on channel 2
            # *before* starting the scheduler: the first pass must
            # still carry one frame from each channel.
            for index in range(4):
                await fair.enqueue(1, b"one-%d|" % index)
            await fair.enqueue(2, b"two|")
            fair.start()
            while sum(len(w) for w in writer.writes) < 4 * 6 + 4:
                await asyncio.sleep(0)
            await fair.close()
            return b"".join(writer.writes)

        wire = run(scenario())
        # Channel 2's lone frame lands after exactly one channel-1
        # frame, not after the whole backlog.
        assert wire.index(b"two|") == len(b"one-0|")

    def test_coalesces_each_pass_into_one_write(self):
        async def scenario():
            writer = SinkWriter()
            fair = FairWriter(writer)
            for chan in (1, 2, 3):
                await fair.enqueue(chan, b"x")
            fair.start()
            while not writer.writes:
                await asyncio.sleep(0)
            await fair.close()
            return writer.writes

        writes = run(scenario())
        assert writes[0] == b"xxx"

    def test_backpressure_parks_only_the_full_channel(self):
        async def scenario():
            writer = SinkWriter()
            fair = FairWriter(writer, high_water=8)
            await fair.enqueue(1, b"A" * 8)  # channel 1 is now full
            parked = asyncio.ensure_future(fair.enqueue(1, b"B"))
            await asyncio.sleep(0)
            assert not parked.done()
            # Another channel is unaffected by 1's backlog.
            await asyncio.wait_for(fair.enqueue(2, b"C"), timeout=1.0)
            fair.start()  # draining frees the parked producer
            await asyncio.wait_for(parked, timeout=1.0)
            await fair.close()
            return b"".join(writer.writes)

        wire = run(scenario())
        assert wire.count(b"A") == 8 and b"B" in wire and b"C" in wire

    def test_enqueue_after_close_fails_fast(self):
        async def scenario():
            fair = FairWriter(SinkWriter())
            fair.start()
            await fair.close()
            with pytest.raises(ConnectionResetError):
                await fair.enqueue(1, b"late")

        run(scenario())


class TestChannelMux:
    def test_frames_demux_to_their_channels(self):
        async def scenario():
            server, left, right = await linked_muxes()
            send_1 = left.attach(1)
            send_2 = left.attach(2)
            recv_1 = right.attach(1)
            recv_2 = right.attach(2)
            await send_1.send(Frame(FrameType.DATA, {"seq": 0, "items": ["a"]}))
            await send_2.send(Frame(FrameType.DATA, {"seq": 0, "items": ["b"]}))
            await send_1.send(Frame(FrameType.END, {}))
            one = [await recv_1.recv(), await recv_1.recv()]
            two = [await recv_2.recv()]
            await shutdown(server, left, right)
            return one, two

        one, two = run(scenario())
        assert [frame.type for frame in one] == [FrameType.DATA, FrameType.END]
        assert one[0].body["items"] == ["a"]
        assert two[0].body["items"] == ["b"]

    def test_unknown_channel_frames_are_counted_not_fatal(self):
        async def scenario():
            stats = NetStats()
            server, left, right = await linked_muxes()
            right.stats = stats
            sender = left.attach(7)  # right never attaches 7
            await sender.send(Frame(FrameType.DATA, {"seq": 0, "items": []}))
            while stats.get("mux_orphan_frames") == 0:
                await asyncio.sleep(0)
            await shutdown(server, left, right)
            return stats.get("mux_orphan_frames")

        assert run(scenario()) == 1

    def test_control_frames_reach_the_callback(self):
        async def scenario():
            got = []

            async def on_control(frame):
                got.append(frame)

            accepted = asyncio.get_running_loop().create_future()

            async def handler(reader, writer):
                accepted.set_result((reader, writer))

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            a_reader, a_writer = await asyncio.open_connection("127.0.0.1", port)
            b_reader, b_writer = await accepted
            left = ChannelMux(a_reader, a_writer)
            right = ChannelMux(b_reader, b_writer, on_control=on_control)
            left.start()
            right.start()
            await left.send_control(
                Frame(FrameType.CTRL, {"cmd": "ping", "req": 1})
            )
            while not got:
                await asyncio.sleep(0)
            await shutdown(server, left, right)
            return got

        got = run(scenario())
        assert got[0].chan == CONTROL_CHANNEL
        assert got[0].body == {"cmd": "ping", "req": 1}

    def test_connection_death_hangs_up_every_channel(self):
        async def scenario():
            server, left, right = await linked_muxes()
            chan_1 = right.attach(1)
            chan_2 = right.attach(2)
            await left.close()  # peer goes away
            first = await asyncio.wait_for(chan_1.recv(), timeout=2.0)
            second = await asyncio.wait_for(chan_2.recv(), timeout=2.0)
            await shutdown(server, right)
            return first, second

        assert run(scenario()) == (None, None)

    def test_duplicate_attach_rejected(self):
        async def scenario():
            server, left, right = await linked_muxes()
            left.attach(1)
            with pytest.raises(ValueError, match="already attached"):
                left.attach(1)
            await shutdown(server, left, right)

        run(scenario())

    def test_channel_close_fires_on_closed_once(self):
        async def scenario():
            server, left, right = await linked_muxes()
            channel = left.attach(1)
            closed = []
            channel.on_closed = closed.append
            await channel.close()
            await channel.close()  # idempotent
            await shutdown(server, left, right)
            return closed

        closed = run(scenario())
        assert len(closed) == 1 and isinstance(closed[0], MuxChannel)

    def test_open_channel_gauge_tracks_attach_and_release(self):
        async def scenario():
            stats = NetStats()
            server, left, right = await linked_muxes()
            left.stats = stats
            channel = left.attach(1)
            left.attach(2)
            opened = stats.gauges()["mux_channels_open"]
            await channel.close()
            after = stats.gauges()["mux_channels_open"]
            await shutdown(server, left, right)
            return opened, after, stats.get("mux_channels_opened")

        opened, after, total = run(scenario())
        assert (opened, after, total) == (2.0, 1.0, 2)


class TestChannelFaults:
    def test_injected_faults_are_channel_addressable(self):
        from repro.fault.inject import FaultInjector
        from repro.fault.plan import FrameFault

        async def scenario(pinned_to):
            injector = FaultInjector(
                [FrameFault(action="duplicate", frame="data", every=1,
                            chan=pinned_to)]
            )
            server, left, right = await linked_muxes()
            sender = left.attach(3, injector=injector)
            receiver = right.attach(3)
            await sender.send(Frame(FrameType.DATA, {"seq": 0, "items": ["x"]}))
            await sender.send(Frame(FrameType.END, {}))
            got = []
            while True:
                frame = await asyncio.wait_for(receiver.recv(), timeout=2.0)
                got.append(frame.type)
                if frame.type is FrameType.END:
                    break
            await shutdown(server, left, right)
            return got

        # Pinned to this channel: the DATA frame is duplicated on the
        # wire.  Pinned to any other channel: the rule never fires.
        assert run(scenario(3)) == [FrameType.DATA, FrameType.DATA,
                                    FrameType.END]
        assert run(scenario(4)) == [FrameType.DATA, FrameType.END]


class TestMuxChannelStats:
    def test_handshake_frames_do_not_count_as_stream_traffic(self):
        async def scenario():
            server, left, right = await linked_muxes()
            stats = NetStats()
            sender = left.attach(1, stats=stats)
            receiver = right.attach(1, stats=NetStats())
            await sender.send(Frame(FrameType.HELLO, {"uid": None}))
            await sender.send(Frame(FrameType.READ, {"seq": 0, "batch": 1}))
            await receiver.recv()
            await receiver.recv()
            await shutdown(server, left, right)
            return stats, receiver.stats

        sent, received = run(scenario())
        # HELLO is invisible to the cost-model counters on both ends;
        # the READ is one invocation, exactly as on raw TCP.
        assert sent.get("invocations_sent") == 1
        assert sent.get("read_frames_sent") == 1
        assert received.get("read_frames_received") == 1
        assert received.get("frames_received") == 1
