"""Metrics: histogram semantics, Prometheus exposition, JSON round trips."""

import json

import pytest

from repro.core.stats import Histogram, KernelStats
from repro.net.metrics import NetStats, merge_stats
from repro.obs.registry import snapshot_payload, stats_from_payload, to_prometheus


class TestHistogram:
    def test_boundary_value_lands_in_its_edge_bucket(self):
        # Prometheus ``le`` is an inclusive upper bound: an observation
        # exactly on an edge belongs to that edge's bucket.
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        histogram.observe(2.0)
        assert histogram.counts == [0, 1, 0, 0]
        histogram.observe(2.0000001)
        assert histogram.counts == [0, 1, 1, 0]

    def test_below_first_and_above_last_edges(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.0)
        histogram.observe(99.0)
        assert histogram.counts == [1, 0, 1]
        assert histogram.total == 2
        assert histogram.sum == 99.0

    def test_quantile_reports_bucket_upper_edge(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0

    def test_quantile_of_empty_is_zero(self):
        assert Histogram(bounds=(1.0,)).quantile(0.5) == 0.0

    def test_quantile_above_last_edge_clamps(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.quantile(0.99) == 2.0

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0,)).quantile(1.5)

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_merge_requires_matching_edges(self):
        ours = Histogram(bounds=(1.0, 2.0))
        theirs = Histogram(bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            ours.merge(theirs)

    def test_merge_sums_elementwise(self):
        ours, theirs = Histogram(bounds=(1.0,)), Histogram(bounds=(1.0,))
        ours.observe(0.5)
        theirs.observe(2.0)
        ours.merge(theirs)
        assert ours.counts == [1, 1]
        assert ours.total == 2
        assert ours.sum == 2.5

    def test_dict_round_trip(self):
        histogram = Histogram(bounds=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        clone = Histogram.from_dict(histogram.as_dict())
        assert clone.bounds == histogram.bounds
        assert clone.counts == histogram.counts
        assert clone.total == histogram.total
        assert clone.sum == histogram.sum


class TestPrometheus:
    def test_counters_gauges_histograms_rendered(self):
        stats = KernelStats()
        stats.bump("invocations_sent", 3)
        stats.set_gauge("credit_window", 8.0)
        stats.observe("rtt_ms", 1.5, bounds=(1.0, 2.0))
        text = to_prometheus(stats)
        assert "eden_invocations_sent_total 3" in text
        assert "eden_credit_window 8" in text
        assert 'eden_rtt_ms_bucket{le="2"} 1' in text
        assert 'eden_rtt_ms_bucket{le="+Inf"} 1' in text
        assert "eden_rtt_ms_sum 1.5" in text
        assert "eden_rtt_ms_count 1" in text

    def test_instance_qualifier_becomes_label(self):
        stats = KernelStats()
        stats.set_gauge("buffer_occupancy[pipe-1]", 4.0)
        text = to_prometheus(stats)
        assert 'eden_buffer_occupancy{instance="pipe-1"} 4' in text

    def test_bucket_counts_are_cumulative(self):
        stats = KernelStats()
        for value in (0.5, 1.5, 9.0):
            stats.observe("rtt_ms", value, bounds=(1.0, 2.0))
        text = to_prometheus(stats)
        assert 'eden_rtt_ms_bucket{le="1"} 1' in text
        assert 'eden_rtt_ms_bucket{le="2"} 2' in text
        assert 'eden_rtt_ms_bucket{le="+Inf"} 3' in text


class TestPayloadRoundTrip:
    def test_full_round_trip(self):
        stats = NetStats()
        stats.bump("invocations_sent", 7)
        stats.set_gauge("credit_available", 3.0)
        stats.observe("read_rtt_ms", 1.25, bounds=(1.0, 2.0))
        clone = stats_from_payload(snapshot_payload(stats))
        assert clone.get("invocations_sent") == 7
        assert clone.gauges()["credit_available"] == 3.0
        restored = clone.histograms()["read_rtt_ms"]
        assert restored.total == 1
        assert restored.sum == 1.25

    def test_legacy_flat_payload_accepted(self):
        stats = stats_from_payload({"invocations_sent": 4, "replies_sent": 4})
        assert stats.get("invocations_sent") == 4

    def test_integral_float_counter_accepted(self):
        stats = stats_from_payload({"counters": {"frames_sent": 3.0}})
        assert stats.get("frames_sent") == 3

    def test_fractional_counter_refused_not_truncated(self):
        with pytest.raises(ValueError, match="refusing to truncate"):
            stats_from_payload({"counters": {"frames_sent": 3.5}})

    def test_negative_counter_refused(self):
        with pytest.raises(ValueError, match=">= 0"):
            stats_from_payload({"counters": {"frames_sent": -1}})

    def test_non_numeric_counter_refused(self):
        with pytest.raises(ValueError, match="must be a number"):
            stats_from_payload({"counters": {"frames_sent": "many"}})
        with pytest.raises(ValueError, match="must be a number"):
            stats_from_payload({"counters": {"frames_sent": True}})

    def test_non_numeric_gauge_refused(self):
        with pytest.raises(ValueError, match="gauge"):
            stats_from_payload({"gauges": {"credit_window": "eight"}})


class TestNetStatsJson:
    def test_json_round_trip_keeps_gauges_and_histograms(self):
        stats = NetStats()
        stats.bump("frames_sent", 2)
        stats.set_gauge("credit_window", 8.0)
        stats.observe("ack_wait_ms", 0.5, bounds=(1.0, 2.0))
        clone = NetStats.from_json(stats.to_json())
        assert clone.get("frames_sent") == 2
        assert clone.gauges()["credit_window"] == 8.0
        assert clone.histograms()["ack_wait_ms"].total == 1

    def test_from_json_refuses_fractional_counters(self):
        payload = json.dumps({"counters": {"frames_sent": 3.5}})
        with pytest.raises(ValueError, match="refusing to truncate"):
            NetStats.from_json(payload)

    def test_merge_stats_folds_histograms_without_aliasing(self):
        first, second = NetStats(), NetStats()
        first.observe("read_rtt_ms", 1.0, bounds=(1.0, 2.0))
        second.observe("read_rtt_ms", 3.0, bounds=(1.0, 2.0))
        total = merge_stats(first, second)
        assert total.histograms()["read_rtt_ms"].total == 2
        # Mutating the merge result must not touch the inputs.
        total.observe("read_rtt_ms", 1.0, bounds=(1.0, 2.0))
        assert first.histograms()["read_rtt_ms"].total == 1
