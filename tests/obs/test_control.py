"""The control protocol and the eden-top fleet table."""

import asyncio
import json

import pytest

from repro.net.framing import HEADER, MAGIC, FrameType
from repro.obs.control import (
    MAX_CONTROL_REPLY,
    ControlError,
    query_async,
    start_control_server,
)
from repro.obs.top import (
    StageRow,
    _row_from_payloads,
    gather_fleet,
    render_fleet,
    rows_payload,
)


def run(coroutine):
    return asyncio.run(coroutine)


async def control_server(handlers):
    server = await start_control_server(handlers, port=0)
    port = server.sockets[0].getsockname()[1]
    return server, port


HANDLERS = {
    "stats": lambda body: {"counters": {"invocations_sent": 5}},
    "health": lambda body: {"label": "pull#2", "role": "sink",
                            "uptime_s": 1.5},
    "echo": lambda body: body,
    "boom": lambda body: 1 / 0,
}


class TestControlProtocol:
    def test_round_trip(self):
        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                payload = await query_async("127.0.0.1", port, "stats")
                assert payload == {"counters": {"invocations_sent": 5}}
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_arguments_reach_the_handler(self):
        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                payload = await query_async(
                    "127.0.0.1", port, "echo", limit=7
                )
                assert payload == {"limit": 7}
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_unknown_command_is_an_error(self):
        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                with pytest.raises(ControlError, match="unknown command"):
                    await query_async("127.0.0.1", port, "nonsense")
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_handler_exception_reported_and_server_survives(self):
        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                with pytest.raises(ControlError, match="ZeroDivisionError"):
                    await query_async("127.0.0.1", port, "boom")
                # The listener must still answer after a handler bug.
                payload = await query_async("127.0.0.1", port, "health")
                assert payload["role"] == "sink"
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_unreachable_port_raises_control_error(self):
        with pytest.raises(ControlError):
            run(query_async("127.0.0.1", 1, "stats", timeout=0.5))


async def misbehaving_server(reply_bytes):
    """A listener that answers any request with fixed raw bytes."""

    async def handle(reader, writer):
        await reader.read(1024)
        if reply_bytes:
            writer.write(reply_bytes)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestControlHardening:
    """A dying or hostile stage yields ControlError, never a traceback."""

    def query_against(self, reply_bytes, match):
        async def scenario():
            server, port = await misbehaving_server(reply_bytes)
            try:
                with pytest.raises(ControlError, match=match):
                    await query_async("127.0.0.1", port, "stats", timeout=2.0)
            finally:
                server.close()
                await server.wait_closed()

        run(scenario())

    def test_clean_close_without_reply(self):
        self.query_against(b"", "closed without replying")

    def test_reply_truncated_mid_header(self):
        self.query_against(MAGIC[:3], "truncated mid-header")

    def test_reply_with_garbage_magic(self):
        self.query_against(b"HTTP/1.1 200 OK\r\n\r\n", "bad magic")

    def test_oversized_declared_length_is_refused_unbuffered(self):
        # The header claims 16 MB; the observer must refuse on the
        # declared length alone, before reading a single body byte.
        header = HEADER.pack(MAGIC, int(FrameType.CTRL_REPLY),
                             MAX_CONTROL_REPLY + 1)
        self.query_against(header, "over the .*-byte bound")

    def test_reply_truncated_mid_body(self):
        body = json.dumps({"ok": True}).encode("utf-8")
        header = HEADER.pack(MAGIC, int(FrameType.CTRL_REPLY), len(body) + 64)
        self.query_against(header + body, "truncated: got")

    def test_undecodable_reply_body(self):
        body = b"\xff\xfe not json at all"
        header = HEADER.pack(MAGIC, int(FrameType.CTRL_REPLY), len(body))
        self.query_against(header + body, "undecodable control reply")


class TestEdenTop:
    def test_gather_fleet_polls_live_and_marks_dead(self):
        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                return await asyncio.to_thread(
                    gather_fleet,
                    [("pull#2", "127.0.0.1", port),
                     ("gone#9", "127.0.0.1", 1)],
                    1.0,
                )
            finally:
                server.close()
                await server.wait_closed()

        live, dead = run(scenario())
        assert live.alive and live.role == "sink" and live.invocations == 5
        assert not dead.alive and dead.label == "gone#9"

    def test_render_fleet_is_a_stable_table(self):
        rows = [
            StageRow(label="source#0", alive=True, role="source",
                     uptime_s=2.0, invocations=13, replies=12,
                     bytes_moved=640, credit="3/8",
                     read_p50_ms=1.0, read_p95_ms=2.5),
            StageRow(label="sink#4", alive=False),
        ]
        table = render_fleet(rows)
        lines = table.splitlines()
        assert lines[0].startswith("STAGE")
        assert "source#0" in lines[1] and "3/8" in lines[1]
        assert "1/2.5ms" in lines[1]
        assert "sink#4" in lines[2] and "gone" in lines[2]

    def test_render_fleet_without_latency_data(self):
        row = StageRow(label="pipe#1", alive=True, role="pipe")
        table = render_fleet([row])
        assert "pipe#1" in table
        assert "ms" not in table.splitlines()[1]

    def test_hosted_rows_fill_the_chan_and_host_columns(self):
        # A stage host reports how many stages it carries and how many
        # logical channels are open; plain stages show dashes there.
        host_payloads = _row_from_payloads(
            "host#2",
            {"label": "host#2", "role": "host", "uptime_s": 3.0,
             "hosted": 120, "channels_open": 7},
            {"counters": {}, "gauges": {}},
        )
        broker_payloads = _row_from_payloads(
            "broker#1",
            {"label": "broker", "role": "broker", "uptime_s": 3.0},
            {"counters": {}, "gauges": {"mux_channels_open": 4.0}},
        )
        plain = StageRow(label="filter#1", alive=True, role="filter")
        table = render_fleet([host_payloads, broker_payloads, plain])
        lines = table.splitlines()
        assert "CHAN" in lines[0] and "HOST" in lines[0]
        assert "120" in lines[1] and "7" in lines[1]
        assert "4" in lines[2]  # channel gauge fallback for the broker
        assert lines[3].rstrip().endswith("-")

    def test_cpu_column_shows_pin_and_failure_marker(self):
        pinned = _row_from_payloads(
            "filter#2",
            {"label": "filter#2", "role": "filter", "uptime_s": 1.0,
             "cpu": 3, "pinned": True, "affinity": [3]},
            {"counters": {}, "gauges": {}},
        )
        unpinned = _row_from_payloads(
            "filter#3",
            {"label": "filter#3", "role": "filter", "uptime_s": 1.0,
             "cpu": 1, "pinned": False},
            {"counters": {}, "gauges": {}},
        )
        plain = _row_from_payloads(
            "filter#4",
            {"label": "filter#4", "role": "filter", "uptime_s": 1.0},
            {"counters": {}, "gauges": {}},
        )
        assert (pinned.cpu, unpinned.cpu, plain.cpu) == ("3", "1?", "-")
        table = render_fleet([pinned, unpinned, plain])
        lines = table.splitlines()
        # CPU sits second-to-last, before the FLIGHT column.
        assert lines[0].split()[-2] == "CPU"
        assert lines[1].split()[-2] == "3"
        assert lines[2].split()[-2] == "1?"
        assert lines[3].split()[-2] == "-"

    def test_bufpool_footer_aggregates_across_stages(self):
        one = _row_from_payloads(
            "a#1", {"label": "a#1", "role": "filter", "uptime_s": 1.0},
            {"counters": {}, "gauges": {"bufpool_hits": 30.0,
                                        "bufpool_misses": 10.0}},
        )
        two = _row_from_payloads(
            "b#2", {"label": "b#2", "role": "sink", "uptime_s": 1.0},
            {"counters": {}, "gauges": {"bufpool_hits": 45.0,
                                        "bufpool_misses": 15.0}},
        )
        table = render_fleet([one, two])
        assert table.splitlines()[-1] == \
            "bufpool: 75% hit rate (75 hits / 25 misses)"

    def test_no_bufpool_gauges_no_footer(self):
        row = StageRow(label="pipe#1", alive=True, role="pipe")
        table = render_fleet([row])
        assert "bufpool" not in table

    def test_flight_column_compacts_the_recorder_state(self):
        recording = _row_from_payloads(
            "filter#2",
            {"label": "filter#2", "role": "filter", "uptime_s": 1.0,
             "flight": {"mode": "digest", "bytes": 12288, "frames": 90}},
            {"counters": {}, "gauges": {}},
        )
        off = _row_from_payloads(
            "filter#3",
            {"label": "filter#3", "role": "filter", "uptime_s": 1.0,
             "flight": None},
            {"counters": {}, "gauges": {}},
        )
        assert recording.flight == "dig:12.0kB"
        assert off.flight == "-"
        table = render_fleet([recording, off])
        lines = table.splitlines()
        assert lines[0].rstrip().endswith("FLIGHT")
        assert lines[1].rstrip().endswith("dig:12.0kB")
        assert lines[2].rstrip().endswith("-")

    def test_rows_payload_is_the_json_surface(self):
        # eden-top --json prints exactly this: one dict per stage with
        # every table field, so scripts never parse the rendered table.
        rows = [
            StageRow(label="source#0", alive=True, role="source",
                     uptime_s=2.0, invocations=13, flight="ful:1.2MB"),
            StageRow(label="sink#4", alive=False),
        ]
        payload = rows_payload(rows)
        assert json.dumps(payload)  # JSON-safe throughout
        assert payload[0]["label"] == "source#0"
        assert payload[0]["invocations"] == 13
        assert payload[0]["flight"] == "ful:1.2MB"
        assert payload[1] == {
            "label": "sink#4", "alive": False, "role": "?", "shard": "-",
            "uptime_s": 0.0, "invocations": 0, "replies": 0,
            "bytes_moved": 0, "credit": "-", "throughput": None,
            "autotune": "-", "read_p50_ms": None, "read_p95_ms": None,
            "channels": "-", "hosted": "-", "cpu": "-", "flight": "-",
            "gauges": {},
        }

    def test_json_flag_prints_one_machine_snapshot(self, capsys):
        from repro.obs.top import main

        async def scenario():
            server, port = await control_server(HANDLERS)
            try:
                return await asyncio.to_thread(
                    main, ["--stage", f"127.0.0.1:{port}", "--json"]
                )
            finally:
                server.close()
                await server.wait_closed()

        assert run(scenario()) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        assert payload[0]["role"] == "sink"
        assert payload[0]["alive"] is True
