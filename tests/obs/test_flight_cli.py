"""``eden-flight``: summaries, the skew-corrected timeline, and diffs."""

import json

from repro.net.framing import Frame, FrameType, encode_frame
from repro.obs.flight import FlightRecorder
from repro.obs.flight_cli import main

READ = Frame(FrameType.READ, {"n": 1, "channel": None})
READ2 = Frame(FrameType.READ, {"n": 2, "channel": None})
END = Frame(FrameType.END, {"channel": None})


def data(items):
    return Frame(FrameType.DATA, {"items": items, "channel": None})


def write_capture(directory, label, timed_frames, mode="full",
                  wall_offset=0.0):
    """One stage capture from (mono, outbound, frame) tuples.

    ``wall_offset`` shifts the stage's wall clock against its
    monotonic clock, simulating per-host clock skew.
    """
    cell = [0.0]  # every clock read during one record() sees one mono
    recorder = FlightRecorder(
        str(directory), label, mode=mode,
        clock=lambda: cell[0],
        wall_clock=lambda: 100.0 + wall_offset,
    )
    for mono, outbound, frame in timed_frames:
        cell[0] = mono
        recorder.record(outbound, encode_frame(frame))
    recorder.close()


def two_stage_capture(directory, skew=0.0):
    """An upstream/downstream pair exchanging two distinct batches.

    Every frame is unique on the wire (the two READs ask for
    different counts), so digest matching can bound the clock offset
    from both directions of traffic.
    """
    write_capture(directory, "source#0", [
        (1.0, False, READ), (2.0, True, data(["a"])),
        (3.0, False, READ2), (4.0, True, data(["b"])),
    ])
    write_capture(directory, "sink#1", [
        (0.5, True, READ), (2.5, False, data(["a"])),
        (2.6, True, READ2), (4.5, False, data(["b"])),
    ], wall_offset=skew)


class TestSummaries:
    def test_default_is_a_stage_table(self, tmp_path, capsys):
        two_stage_capture(tmp_path)
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("STAGE")
        assert "source#0" in out and "sink#1" in out
        assert "full" in out

    def test_json_mode_is_machine_readable(self, tmp_path, capsys):
        two_stage_capture(tmp_path)
        assert main(["--json", str(tmp_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["label"] for entry in payload} == {
            "source#0", "sink#1",
        }
        assert all(entry["frames"] == 4 for entry in payload)

    def test_missing_directory_fails_cleanly(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 1
        assert "eden-flight:" in capsys.readouterr().err


class TestTimeline:
    def test_sends_precede_their_receives_despite_skew(self, tmp_path,
                                                       capsys):
        # The sink's wall clock runs 50s ahead; digest matching plus
        # interval intersection must still order each DATA send before
        # its receive on the merged timeline.
        two_stage_capture(tmp_path, skew=50.0)
        assert main(["--timeline", str(tmp_path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("8 frames across 2 stages")
        order = [line for line in lines[1:] if "DATA" in line]
        for sent, received in zip(order[::2], order[1::2]):
            assert "source#0" in sent and "->" in sent
            assert "sink#1" in received and "<-" in received

    def test_limit_truncates_the_tail(self, tmp_path, capsys):
        two_stage_capture(tmp_path)
        assert main(["--timeline", "--limit", "3", str(tmp_path)]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "(last 3)" in lines[0]
        assert len(lines) == 4


class TestLatency:
    def test_decomposition_has_both_sides(self, tmp_path, capsys):
        two_stage_capture(tmp_path)
        assert main(["--latency", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        # The sink paired two client round trips; the source served two.
        assert "sink#1" in out and "client" in out
        assert "source#0" in out and "server" in out


class TestDiff:
    def test_identical_captures_diff_clean(self, tmp_path, capsys):
        two_stage_capture(tmp_path / "a")
        two_stage_capture(tmp_path / "b")
        assert main(["--diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 0
        assert "identical" in capsys.readouterr().out

    def test_divergent_frame_is_named(self, tmp_path, capsys):
        two_stage_capture(tmp_path / "a")
        write_capture(tmp_path / "b", "source#0", [
            (1.0, False, READ), (2.0, True, data(["a"])),
            (3.0, False, READ2), (4.0, True, data(["CHANGED"])),
        ])
        write_capture(tmp_path / "b", "sink#1", [
            (0.5, True, READ), (2.5, False, data(["a"])),
            (2.6, True, READ2), (4.5, False, data(["b"])),
        ])
        assert main(["--diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 1
        out = capsys.readouterr().out
        assert "source#0: frame #3 diverges" in out
        assert "sink#1: identical" in out

    def test_full_vs_digest_capture_still_diffs(self, tmp_path, capsys):
        # Every record carries a digest, so mode does not matter.
        two_stage_capture(tmp_path / "a")
        write_capture(tmp_path / "b", "source#0", [
            (1.0, False, READ), (2.0, True, data(["a"])),
            (3.0, False, READ2), (4.0, True, data(["b"])),
        ], mode="digest")
        write_capture(tmp_path / "b", "sink#1", [
            (0.5, True, READ), (2.5, False, data(["a"])),
            (2.6, True, READ2), (4.5, False, data(["b"])),
        ], mode="digest")
        assert main(["--diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 0


class TestReplayErrors:
    def test_digest_capture_cannot_replay(self, tmp_path, capsys):
        write_capture(tmp_path, "source#0",
                      [(1.0, True, data(["a"]))], mode="digest")
        assert main(["--replay", str(tmp_path)]) == 1
        assert "cannot replay" in capsys.readouterr().err

    def test_dir_is_required_without_diff(self, capsys):
        import pytest
        with pytest.raises(SystemExit):
            main(["--timeline"])
