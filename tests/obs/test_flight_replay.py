"""Deterministic replay of captured fleets (the PR's acceptance bar).

A live TCP fleet recorded with ``flight=...`` must replay exactly in
the simulated kernel: same invocation count, same output records, and
a synthesised trace that passes ``eden-trace --verify-once``.  The
unit tests below exercise the conformance laws and the refusal paths
on hand-built captures.
"""

import pytest

from repro.api import Pipeline
from repro.net.framing import Frame, FrameType, encode_frame
from repro.obs.flight import FlightCapture, FlightRecorder, load_flight_dir
from repro.obs.replay import (
    ReplayError,
    check_conformance,
    replay_fleet,
    replay_flight_dir,
)

ITEMS = [f"datum-{i:02d}" for i in range(20)]
IDENTITY = "repro.transput:identity_transducer"


class TestLiveFleetReplay:
    def test_tcp_fleet_replays_deterministically(self, tmp_path):
        """The ISSUE's acceptance scenario, end to end."""
        flight = tmp_path / "flight"
        result = Pipeline(
            [IDENTITY] * 2, discipline="readonly", source=ITEMS,
        ).run(
            runtime="tcp", flight=str(flight),
            workdir=str(tmp_path), timeout=90.0,
        )
        assert result.output == ITEMS

        trace = tmp_path / "replay.trace.jsonl"
        report = replay_flight_dir(str(flight), trace_file=str(trace))
        assert report.ok, report.summary()
        assert report.summary().startswith("DETERMINISTIC")
        assert report.stages[0].startswith("source")
        assert report.stages[-1].startswith("sink")
        assert report.items == len(ITEMS)
        # The live fleet's request frames match the sim's invocation
        # count — the paper's cost model checked against real wire
        # traffic instead of a formula.
        assert report.captured_invocations == report.replayed_invocations
        assert report.replayed_invocations == result.invocations
        assert report.output == ITEMS
        assert report.once is not None and report.once.ok

        # The synthesised trace is verifiable by the actual CLI.
        from repro.obs.trace_cli import main as trace_main
        assert trace_main(
            [str(trace), "--verify-once", str(len(ITEMS))]
        ) == 0

        # And the eden-flight CLI wraps the same engine.
        from repro.obs.flight_cli import main as flight_main
        assert flight_main(["--replay", str(flight)]) == 0


def record_stage(directory, label, frames, mode="full", meta=None):
    recorder = FlightRecorder(str(directory), label, mode=mode, meta=meta)
    for outbound, frame in frames:
        recorder.record(outbound, encode_frame(frame))
    recorder.close()
    return recorder


def data(items, **extra):
    return Frame(FrameType.DATA, {"items": items, "channel": None, **extra})


READ1 = Frame(FrameType.READ, {"n": 1, "channel": None})
END = Frame(FrameType.END, {"channel": None})


class TestConformance:
    def load(self, tmp_path, frames):
        record_stage(tmp_path, "stage#1", frames)
        [capture] = load_flight_dir(str(tmp_path))
        return capture

    def test_clean_pull_stream_has_no_problems(self, tmp_path):
        capture = self.load(tmp_path, [
            (True, READ1), (False, data(["a"])),
            (True, READ1), (False, END),
        ])
        assert check_conformance(capture) == []

    def test_data_after_end_violates_end_last(self, tmp_path):
        capture = self.load(tmp_path, [
            (True, READ1), (False, END), (False, data(["late"])),
        ])
        [problem] = check_conformance(capture)
        assert "END must be last" in problem

    def test_read_after_inbound_end_is_flagged(self, tmp_path):
        capture = self.load(tmp_path, [
            (True, READ1), (False, END), (True, READ1),
        ])
        [problem] = check_conformance(capture)
        assert "after the stream ended" in problem

    def test_directions_are_independent_channels(self, tmp_path):
        # A filter's capture mixes both its links on chan=None: data
        # arriving from upstream (in) and leaving downstream (out).
        # END on one direction must not gag the other.
        capture = self.load(tmp_path, [
            (False, data(["a"])), (False, END),  # upstream closed...
            (True, data(["a"])), (True, END),    # ...downstream still fed
        ])
        assert check_conformance(capture) == []


class TestReplayRefusals:
    def test_digest_capture_is_refused(self, tmp_path):
        record_stage(tmp_path, "source#0", [(True, data(["a"]))],
                     mode="digest", meta={"role": "source"})
        record_stage(tmp_path, "sink#1", [(False, data(["a"]))],
                     mode="digest", meta={"role": "sink"})
        with pytest.raises(ReplayError, match="digest-mode"):
            replay_flight_dir(str(tmp_path))

    def test_hosted_capture_is_refused(self, tmp_path):
        captures = [
            FlightCapture(label="host-0", meta={"role": "host"}),
            FlightCapture(label="source#0", meta={"role": "source"}),
            FlightCapture(label="sink#1", meta={"role": "sink"}),
        ]
        with pytest.raises(ReplayError, match="host capture"):
            replay_fleet(captures)

    def test_missing_source_is_refused(self, tmp_path):
        with pytest.raises(ReplayError, match="exactly one source"):
            replay_fleet([FlightCapture(label="sink#1",
                                        meta={"role": "sink"})])

    def test_rotated_capture_is_refused(self, tmp_path):
        source = FlightCapture(label="source#0", meta={"role": "source"})
        sink = FlightCapture(label="sink#1", meta={"role": "sink"},
                             rotated=True)
        with pytest.raises(ReplayError, match="rotation"):
            replay_fleet([source, sink])
