"""Trace merging: clock alignment, causal chains, C1/C2 verification."""

import pytest

from repro.core import Kernel
from repro.core.tracing import TraceEvent
from repro.obs.merge import (
    StageLog,
    SpanRecord,
    load_span_log,
    merge_span_logs,
    verify_invocation_chains,
)
from repro.obs.spans import CLOCK_KIND, SPAN_KIND
from repro.transput.filterbase import identity_transducer
from repro.transput.pipeline import compose_segment

N_FILTERS = 3
ITEMS = ["alpha", "beta", "gamma"]


def run_sim(discipline: str) -> Kernel:
    kernel = Kernel(spans=True)
    pipeline = compose_segment(
        kernel, discipline, list(ITEMS),
        [identity_transducer(f"f{index}") for index in range(N_FILTERS)],
    )
    assert pipeline.run_to_completion() == ITEMS
    return kernel


def span(trace, span_id, parent, op, start, end, stage):
    return SpanRecord(
        trace=trace, span=span_id, parent=parent, op=op,
        start=start, end=end, stage=stage,
    )


class TestSimChains:
    """The paper's claims, span-by-span, on the simulated kernel."""

    @pytest.mark.parametrize("discipline,hops", [
        ("readonly", N_FILTERS + 1),
        ("writeonly", N_FILTERS + 1),
        ("conventional", 2 * N_FILTERS + 2),
    ])
    def test_one_linear_chain_per_datum(self, discipline, hops):
        kernel = run_sim(discipline)
        trees = merge_span_logs(
            [load_span_log(kernel.tracer.events, stage="sim")]
        )
        report = verify_invocation_chains(
            trees, discipline, N_FILTERS, len(ITEMS)
        )
        assert report.ok, report.problems
        assert report.expected_spans_per_trace == hops
        assert all(tree.is_chain() for tree in trees)

    def test_readonly_chains_root_at_the_sink(self):
        kernel = run_sim("readonly")
        trees = merge_span_logs(
            [load_span_log(kernel.tracer.events, stage="sim")]
        )
        for tree in trees:
            (root,) = tree.roots
            assert root.op == "Read"
            # Demand flows sink -> source: the root is the sink's Read.
            assert "sink" in tree.critical_path()[0].stage.lower()

    def test_writeonly_chains_root_at_the_source(self):
        kernel = run_sim("writeonly")
        trees = merge_span_logs(
            [load_span_log(kernel.tracer.events, stage="sim")]
        )
        for tree in trees:
            (root,) = tree.roots
            assert root.op == "Write"
            assert "source" in root.stage.lower()

    def test_conventional_chains_alternate_write_read(self):
        kernel = run_sim("conventional")
        trees = merge_span_logs(
            [load_span_log(kernel.tracer.events, stage="sim")]
        )
        for tree in trees:
            ops = [record.op for record in tree.critical_path()]
            assert ops == ["Write", "Read"] * (N_FILTERS + 1)

    def test_wrong_discipline_is_reported(self):
        kernel = run_sim("readonly")
        trees = merge_span_logs(
            [load_span_log(kernel.tracer.events, stage="sim")]
        )
        report = verify_invocation_chains(
            trees, "conventional", N_FILTERS, len(ITEMS)
        )
        assert not report.ok
        assert "MISMATCH" in report.summary()


class TestClockAlignment:
    def test_anchor_offsets_join_monotonic_epochs(self):
        # Two processes with wildly different monotonic epochs but
        # anchored to the same wall clock merge onto one timeline.
        sink = StageLog(
            stage="sink",
            anchor=(0.0, 100.0),
            spans=[span("t1", "a1", None, "READ", 0.0, 1.0, "sink")],
        )
        filt = StageLog(
            stage="filter",
            anchor=(500.0, 100.0),
            spans=[span("t1", "b1", "a1", "READ", 500.2, 500.8, "filter")],
        )
        (tree,) = merge_span_logs([sink, filt])
        assert tree.is_chain()
        parent, child = tree.critical_path()
        assert parent.start <= child.start <= child.end <= parent.end
        assert tree.end_to_end == pytest.approx(1.0)

    def test_causal_pass_corrects_unanchored_skew(self):
        # The filter's clock runs 3s ahead; nesting bounds recover a
        # correction that pulls its span back inside the parent.
        sink = StageLog(
            stage="sink",
            spans=[span("t1", "a1", None, "READ", 0.0, 1.0, "sink")],
        )
        filt = StageLog(
            stage="filter",
            spans=[span("t1", "b1", "a1", "READ", 3.1, 3.9, "filter")],
        )
        (tree,) = merge_span_logs([sink, filt])
        parent, child = tree.critical_path()
        assert parent.start <= child.start
        assert child.end <= parent.end
        assert tree.end_to_end == pytest.approx(1.0)

    def test_zero_skew_is_left_alone(self):
        sink = StageLog(
            stage="sink",
            spans=[span("t1", "a1", None, "READ", 0.0, 1.0, "sink")],
        )
        filt = StageLog(
            stage="filter",
            spans=[span("t1", "b1", "a1", "READ", 0.2, 0.8, "filter")],
        )
        (tree,) = merge_span_logs([sink, filt])
        child = tree.critical_path()[1]
        assert child.start == pytest.approx(0.2)
        assert child.end == pytest.approx(0.8)

    def test_write_edges_use_one_sided_bounds(self):
        # A WRITE span closes at frame-send, so a server-side child may
        # END after it; full nesting would force a bogus correction.
        source = StageLog(
            stage="source",
            spans=[span("t1", "w1", None, "WRITE", 0.0, 0.4, "source")],
        )
        server = StageLog(
            stage="server",
            spans=[span("t1", "x1", "w1", "WRITE", 0.1, 0.9, "server")],
        )
        (tree,) = merge_span_logs([source, server])
        child = tree.critical_path()[1]
        # Already causally consistent: no correction applied.
        assert child.start == pytest.approx(0.1)


class TestLoadSpanLog:
    def test_loads_jsonl_file_with_anchor(self, tmp_path):
        kernel = Kernel(trace=True)
        kernel.tracer.emit(0.0, CLOCK_KIND, "stage-x", mono=10.0, wall=110.0)
        kernel.tracer.emit(
            2.0, SPAN_KIND, "stage-x",
            trace="t1", span="s1", parent=None, op="READ",
            start=1.0, end=2.0, status="ok",
        )
        path = tmp_path / "trace.jsonl"
        kernel.tracer.to_jsonl(str(path))
        log = load_span_log(str(path))
        assert log.stage == "stage-x"
        assert log.anchor == (10.0, 110.0)
        assert log.anchor_offset == pytest.approx(100.0)
        (record,) = log.spans
        assert record.trace == "t1"
        assert record.duration == pytest.approx(1.0)

    def test_ignores_non_span_events(self):
        events = [
            TraceEvent(time=1.0, kind="invoke", subject="x", detail={}),
            TraceEvent(
                time=2.0, kind=SPAN_KIND, subject="x",
                detail={
                    "trace": "t1", "span": "s1", "parent": None,
                    "op": "READ", "start": 1.0, "end": 2.0,
                },
            ),
        ]
        log = load_span_log(events)
        assert len(log.spans) == 1
        assert log.anchor is None
