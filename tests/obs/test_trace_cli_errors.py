"""``eden-trace`` edge cases: bad inputs fail cleanly, skew is handled."""

import json

from repro.core.tracing import Tracer
from repro.obs.trace_cli import main


def write_stage_log(path, stage, spans, mono_offset=0.0, wall=5000.0):
    """A per-stage trace log: one clock anchor plus READ spans.

    ``mono_offset`` shifts the stage's monotonic clock; ``wall`` is
    shared, so the merger must undo the offset to align the logs.
    """
    tracer = Tracer(enabled=True)
    tracer.emit(mono_offset, "clock", stage,
                mono=mono_offset, wall=wall)
    for serial, (trace, start, seq, n) in enumerate(spans):
        tracer.emit(
            mono_offset + start + 0.010, "span", stage,
            trace=trace, span=f"{stage}-{serial}", parent=None,
            op="READ", start=mono_offset + start,
            end=mono_offset + start + 0.010,
            status="ok", seq=seq, n=n,
        )
    tracer.to_jsonl(str(path))


class TestLoadErrors:
    def test_missing_file_exits_cleanly(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("eden-trace: cannot load traces:")

    def test_corrupt_json_exits_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"time": 1.0, "kind": "span"\n')
        assert main([str(bad)]) == 1
        assert "cannot load traces" in capsys.readouterr().err

    def test_empty_log_reports_no_spans(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main([str(empty)]) == 0
        assert "no spans found" in capsys.readouterr().out

    def test_fleet_manifest_without_trace_files(self, tmp_path, capsys):
        manifest = tmp_path / "fleet.json"
        manifest.write_text(json.dumps({"stages": [{"role": "source"}]}))
        import pytest
        with pytest.raises(SystemExit):  # argparse: no trace files at all
            main(["--fleet", str(manifest)])


class TestMixedFleetSkew:
    def test_verify_once_spans_skewed_stage_clocks(self, tmp_path, capsys):
        # Two stages whose monotonic clocks disagree by 1000s; the
        # spans still tile [0, 4) each, so exactly-once must pass.
        write_stage_log(tmp_path / "a.jsonl", "filter#1", [
            ("t1", 0.0, 0, 2), ("t2", 0.1, 2, 2),
        ])
        write_stage_log(tmp_path / "b.jsonl", "sink#2", [
            ("t1", 0.05, 0, 2), ("t2", 0.15, 2, 2),
        ], mono_offset=1000.0)
        code = main([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl"),
                     "--verify-once", "4"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "EXACTLY-ONCE" in out

    def test_verify_once_catches_a_gap_across_stages(self, tmp_path, capsys):
        write_stage_log(tmp_path / "a.jsonl", "filter#1", [
            ("t1", 0.0, 0, 2), ("t2", 0.1, 3, 1),  # record 2 lost
        ])
        code = main([str(tmp_path / "a.jsonl"), "--verify-once", "4"])
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION" in out

    def test_summary_merges_skewed_logs_into_one_timeline(self, tmp_path,
                                                          capsys):
        write_stage_log(tmp_path / "a.jsonl", "filter#1",
                        [("t1", 0.0, 0, 2)])
        write_stage_log(tmp_path / "b.jsonl", "sink#2",
                        [("t1", 0.05, 0, 2)], mono_offset=1000.0)
        assert main([str(tmp_path / "a.jsonl"),
                     str(tmp_path / "b.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "traces: 1" in out
        # After skew correction the merged trace spans well under a
        # second, not the 1000s the raw clocks would suggest.
        assert "end-to-end latency ms:" in out
        latency_line = next(
            line for line in out.splitlines() if "max" in line
        )
        assert float(latency_line.rsplit()[-1]) < 1000.0
