"""The flight recorder: capture, rotation, and loading captures back."""

import zlib

import pytest

from repro.net.framing import Frame, FrameType, encode_frame
from repro.obs.flight import (
    FlightError,
    FlightRecorder,
    load_capture,
    load_flight_dir,
)

DATA = encode_frame(Frame(FrameType.DATA, {"items": ["a", "b"],
                                           "channel": None}))
READ = encode_frame(Frame(FrameType.READ, {"n": 2, "channel": None}))
MUXED = encode_frame(Frame(FrameType.DATA, {"items": ["c"]}, chan=7))


class FakeStats:
    def __init__(self):
        self.gauges = {}

    def set_gauge(self, name, value):
        self.gauges[name] = value


class TestRecorderRoundtrip:
    def test_full_mode_keeps_exact_wire_bytes(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), "filter#1")
        recorder.record(True, READ)
        recorder.record(False, DATA)
        recorder.close()

        capture = load_capture(str(recorder.path))
        assert capture.label == "filter#1"
        assert [r.type for r in capture.records] == [
            FrameType.READ, FrameType.DATA,
        ]
        assert [r.direction for r in capture.records] == ["out", "in"]
        assert capture.records[0].payload == READ
        assert capture.records[1].payload == DATA
        assert capture.records[1].frame.body["items"] == ["a", "b"]
        assert not capture.truncated and not capture.rotated

    def test_digest_mode_keeps_crc_not_payload(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), "sink#2", mode="digest")
        recorder.record(False, DATA)
        recorder.close()

        [record] = load_capture(str(recorder.path)).records
        assert record.payload is None
        assert record.digest == zlib.crc32(DATA) & 0xFFFFFFFF
        assert record.wire_bytes == len(DATA)
        with pytest.raises(FlightError, match="no payload"):
            record.frame

    def test_channel_id_survives_both_modes(self, tmp_path):
        # The chan id is lifted off the wire header at record time,
        # because a digest payload cannot recover it at load time.
        # Decoder tees hand over memoryviews, not bytes.
        for mode in ("full", "digest"):
            recorder = FlightRecorder(str(tmp_path), f"mux-{mode}", mode=mode)
            recorder.record(True, memoryview(MUXED))
            recorder.close()
            [record] = load_capture(str(recorder.path)).records
            assert record.chan == 7
            assert record.digest == zlib.crc32(MUXED) & 0xFFFFFFFF

    def test_monotonic_timestamps_and_wall_anchor(self, tmp_path):
        ticks = iter(float(n) for n in range(100))
        recorder = FlightRecorder(
            str(tmp_path), "s#0",
            clock=lambda: next(ticks), wall_clock=lambda: 1000.0,
        )
        recorder.record(True, READ)
        recorder.record(False, DATA)
        recorder.close()
        capture = load_capture(str(recorder.path))
        records = capture.records
        assert records[0].mono < records[1].mono
        # wall = mono + (created_wall - created_mono), the segment anchor.
        anchor = capture.meta["created_wall"] - capture.meta["created_mono"]
        assert records[0].wall == pytest.approx(records[0].mono + anchor)


class TestSegments:
    def test_rotation_bounds_disk_and_flags_the_loss(self, tmp_path):
        recorder = FlightRecorder(
            str(tmp_path), "s#0", segment_bytes=1024, max_segments=2,
        )
        for _ in range(200):
            recorder.record(True, DATA)
        recorder.close()

        segments = sorted(recorder.path.glob("seg-*.efl"))
        assert len(segments) == 2
        assert recorder.segments_written > 2
        capture = load_capture(str(recorder.path))
        assert capture.rotated  # the oldest frames are gone, visibly
        assert len(capture.records) < 200

    def test_truncated_tail_record_is_tolerated(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), "s#0")
        recorder.record(True, READ)
        recorder.record(False, DATA)
        recorder.close()
        [segment] = recorder.path.glob("seg-*.efl")
        whole = segment.read_bytes()
        segment.write_bytes(whole[:-3])  # a crash mid-write

        capture = load_capture(str(recorder.path))
        assert capture.truncated
        assert [r.type for r in capture.records] == [FrameType.READ]

    def test_load_flight_dir_collects_stage_captures(self, tmp_path):
        for label in ("source#0", "sink#1"):
            recorder = FlightRecorder(str(tmp_path), label)
            recorder.record(True, READ)
            recorder.close()
        captures = load_flight_dir(str(tmp_path))
        assert sorted(c.label for c in captures) == ["sink#1", "source#0"]

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(FlightError, match="no flight captures"):
            load_flight_dir(str(tmp_path))


class TestLifecycle:
    def test_records_after_close_are_dropped(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), "s#0")
        recorder.record(True, READ)
        recorder.close()
        recorder.record(True, READ)
        assert recorder.frames == 1

    def test_gauges_are_published_on_close(self, tmp_path):
        stats = FakeStats()
        recorder = FlightRecorder(str(tmp_path), "s#0", stats=stats)
        recorder.record(True, READ)
        recorder.record(False, DATA)
        recorder.close()
        assert stats.gauges["flight_frames"] == 2.0
        assert stats.gauges["flight_bytes"] == float(len(READ) + len(DATA))
        assert stats.gauges["flight_segments"] == 1.0
        assert stats.gauges["flight_record_ms"] >= 0.0

    def test_describe_matches_the_capture(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), "s#0", mode="digest",
                                  meta={"role": "sink"})
        recorder.record(False, DATA)
        described = recorder.describe()
        assert described["mode"] == "digest"
        assert described["frames"] == 1
        assert described["bytes"] == len(DATA)
        assert described["record_ms"] >= 0.0
        recorder.close()
        assert load_capture(str(recorder.path)).meta["role"] == "sink"

    @pytest.mark.parametrize("kwargs, message", [
        ({"mode": "verbose"}, "flight mode"),
        ({"segment_bytes": 16}, "segment_bytes"),
        ({"max_segments": 0}, "max_segments"),
    ])
    def test_constructor_validates(self, tmp_path, kwargs, message):
        with pytest.raises(ValueError, match=message):
            FlightRecorder(str(tmp_path), "s#0", **kwargs)
