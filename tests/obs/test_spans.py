"""Span identity: contexts, wire form, deterministic allocation."""

from repro.obs.spans import SpanContext, SpanIds


class TestSpanContext:
    def test_wire_round_trip(self):
        ctx = SpanContext(trace="t1", span="s2", parent="s1")
        assert SpanContext.from_wire(ctx.as_wire()) == ctx

    def test_root_round_trip_keeps_none_parent(self):
        ctx = SpanContext(trace="t1", span="s1")
        assert ctx.parent is None
        assert SpanContext.from_wire(ctx.as_wire()) == ctx

    def test_from_wire_tolerates_garbage(self):
        for garbage in (
            None, 42, "t1/s1", [], ["t1"], ["t1", "s1"],
            ["t1", "s1", "p", "extra"], [1, "s1", None], ["t1", 2, None],
            ["t1", "s1", 3], {"trace": "t1"},
        ):
            assert SpanContext.from_wire(garbage) is None

    def test_str_shows_lineage(self):
        assert str(SpanContext("t1", "s2", "s1")) == "t1/s2<-s1"
        assert str(SpanContext("t1", "s1")) == "t1/s1<--"


class TestSpanIds:
    def test_allocation_is_deterministic(self):
        first, second = SpanIds(prefix="k"), SpanIds(prefix="k")
        assert [first.root() for _ in range(3)] == [
            second.root() for _ in range(3)
        ]

    def test_prefix_keeps_fleets_collision_free(self):
        assert SpanIds(prefix="s0-").root() != SpanIds(prefix="s1-").root()

    def test_derive_roots_without_parent(self):
        ids = SpanIds()
        root = ids.derive(None)
        assert root.parent is None

    def test_derive_chains_with_parent(self):
        ids = SpanIds()
        root = ids.root()
        child = ids.derive(root)
        assert child.trace == root.trace
        assert child.parent == root.span
        assert child.span != root.span

    def test_adopt_joins_foreign_trace(self):
        ours, theirs = SpanIds(prefix="a"), SpanIds(prefix="b")
        origin = theirs.root()
        hop = ours.adopt(origin)
        assert hop.trace == origin.trace
        assert hop.parent == origin.span
        assert hop.span.startswith("a")
