"""Reporting wrappers, the stream editor, the comparator, spell check."""

import pytest

from repro.filters import (
    DiffRecord,
    DifferenceFilter,
    EditorCommandError,
    ErrorReporting,
    MISSING,
    SpellChecker,
    SpellCheckReporter,
    StreamEditor,
    fanout,
    parse_command,
    upper_case,
    with_reports,
)
from repro.transput import (
    CollectorSink,
    ListSource,
    apply_reporting,
    apply_transducer,
)
from tests.conftest import run_until_done


class TestWithReports:
    def test_output_passes_through(self):
        result = apply_reporting(with_reports(upper_case(), "F", every=2),
                                 ["a", "b", "c"])
        assert result["Output"] == ["A", "B", "C"]

    def test_reports_every_k(self):
        result = apply_reporting(with_reports(upper_case(), "F", every=2),
                                 ["a", "b", "c"])
        reports = result["Report"]
        assert reports[0] == "[F] starting"
        assert any("2 in" in line for line in reports)
        assert reports[-1].startswith("[F] done: 3 in")

    def test_label_defaults_to_inner_name(self):
        wrapped = with_reports(upper_case())
        result = apply_reporting(wrapped, ["x"])
        assert "[upper]" in result["Report"][0]

    def test_every_must_be_positive(self):
        with pytest.raises(ValueError):
            with_reports(upper_case(), every=0)


class TestErrorReporting:
    def test_failures_reported_not_raised(self):
        transducer = ErrorReporting(lambda x: 10 // int(x), label="div")
        result = apply_reporting(transducer, ["5", "0", "2"])
        assert result["Output"] == [2, 5]
        assert any("'0'" in line for line in result["Report"])
        assert result["Report"][-1] == "[div] 1 failures"


class TestFanout:
    def test_duplicates_to_each_channel(self):
        result = apply_reporting(fanout(3), ["x", "y"])
        assert result == {
            "out0": ["x", "y"], "out1": ["x", "y"], "out2": ["x", "y"]
        }

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            fanout(0)


class TestEditorParsing:
    def test_substitute(self):
        command = parse_command("s/cat/dog/")
        assert command.apply(["a cat sat"]) == ["a dog sat"]

    def test_alternate_delimiter(self):
        command = parse_command("s|/usr|/opt|")
        assert command.apply(["/usr/bin"]) == ["/opt/bin"]

    def test_delete(self):
        command = parse_command("d/^#/")
        assert command.apply(["# x", "y"]) == ["y"]

    def test_keep(self):
        command = parse_command("p/keep/")
        assert command.apply(["keep me", "drop me"]) == ["keep me"]

    def test_append_insert(self):
        assert parse_command("a/AFTER/").apply(["x"]) == ["x", "AFTER"]
        assert parse_command("i/BEFORE/").apply(["x"]) == ["BEFORE", "x"]

    @pytest.mark.parametrize(
        "bad", ["", "x", "q/foo/", "s/only-one/", "d/a/b/", "s/[/x/"]
    )
    def test_bad_commands_rejected(self, bad):
        with pytest.raises(EditorCommandError):
            parse_command(bad)


class TestStreamEditor:
    def test_commands_apply_in_order(self):
        editor = StreamEditor(["s/a/b/", "p/b/"])
        assert apply_transducer(editor, ["aaa", "xyz"]) == ["bbb"]

    def test_delete_stops_chain(self):
        editor = StreamEditor(["d/x/", "s/y/z/"])
        assert apply_transducer(editor, ["x y", "y"]) == ["z"]

    def test_secondary_commands(self):
        editor = StreamEditor()
        editor.accept_secondary("commands", ["s/1/one/", "", "  "])
        assert editor.command_count == 1
        assert apply_transducer(editor, ["1!"]) == ["one!"]

    def test_other_secondary_ignored(self):
        editor = StreamEditor()
        editor.accept_secondary("dictionary", ["s/1/one/"])
        assert editor.command_count == 0

    def test_empty_editor_is_identity(self):
        assert apply_transducer(StreamEditor(), ["x"]) == ["x"]


class TestDifferenceFilter:
    def build(self, kernel, left, right, **kwargs):
        a = kernel.create(ListSource, items=list(left))
        b = kernel.create(ListSource, items=list(right))
        diff = kernel.create(
            DifferenceFilter, left=a.output_endpoint(),
            right=b.output_endpoint(), **kwargs,
        )
        sink = kernel.create(CollectorSink, inputs=[diff.output_endpoint()])
        run_until_done(kernel, sink)
        return diff, sink.collected

    def test_identical_streams_no_output(self, kernel):
        diff, out = self.build(kernel, ["a", "b"], ["a", "b"])
        assert out == []
        assert diff.differences == 0

    def test_differences_reported_with_index(self, kernel):
        _, out = self.build(kernel, ["a", "x", "c"], ["a", "y", "c"])
        assert out == [DiffRecord(1, "x", "y")]

    def test_left_longer(self, kernel):
        _, out = self.build(kernel, ["a", "b", "c"], ["a"])
        assert out == [DiffRecord(1, "b", MISSING), DiffRecord(2, "c", MISSING)]

    def test_right_longer(self, kernel):
        _, out = self.build(kernel, ["a"], ["a", "z"])
        assert out == [DiffRecord(1, MISSING, "z")]

    def test_emit_equal_mode(self, kernel):
        _, out = self.build(kernel, ["a", "b"], ["a", "c"], emit_equal=True)
        assert out == [("=", "a"), DiffRecord(1, "b", "c")]

    def test_diff_record_str(self):
        assert "0:" in str(DiffRecord(0, "a", "b"))


class TestSpellCheck:
    def test_misspellings_emitted(self):
        checker = SpellChecker(dictionary=["the", "cat"])
        assert apply_transducer(checker, ["the cct sat"]) == ["cct", "sat"]

    def test_default_dictionary(self):
        checker = SpellChecker()
        assert apply_transducer(checker, ["the stream"]) == []

    def test_secondary_dictionary_input(self):
        checker = SpellChecker(dictionary=["a"])
        checker.accept_secondary("dictionary", ["zebra yak"])
        assert checker.dictionary_size == 3
        assert apply_transducer(checker, ["a zebra"]) == []

    def test_reporter_form(self):
        reporter = SpellCheckReporter(dictionary=["ok"])
        result = apply_reporting(reporter, ["ok bad"])
        assert result["Output"] == ["ok bad"]
        assert result["Report"] == ["line 1: misspelt 'bad'"]
