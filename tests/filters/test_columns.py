"""Column filters and run-length coding."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.filters import cut, paste, rle_decode, rle_encode
from repro.transput import apply_transducer


class TestCut:
    def test_selects_fields(self):
        assert apply_transducer(cut([0, 2]), ["a b c", "d e f"]) == [
            "a c", "d f"
        ]

    def test_missing_fields_skipped(self):
        assert apply_transducer(cut([0, 5]), ["a b"]) == ["a"]

    def test_custom_delimiter(self):
        assert apply_transducer(cut([1], delimiter=","), ["a,b,c"]) == ["b"]

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            cut([-1])


class TestPaste:
    def test_merges_rows(self):
        assert apply_transducer(paste(2, "|"), ["a", "b", "c", "d"]) == [
            "a|b", "c|d"
        ]

    def test_partial_tail(self):
        assert apply_transducer(paste(3), ["a", "b", "c", "d"]) == [
            "a\tb\tc", "d"
        ]

    def test_invalid_columns(self):
        with pytest.raises(ValueError):
            paste(0)


class TestRunLength:
    def test_encode(self):
        assert apply_transducer(rle_encode(), ["a", "a", "b", "a"]) == [
            (2, "a"), (1, "b"), (1, "a")
        ]

    def test_empty(self):
        assert apply_transducer(rle_encode(), []) == []
        assert apply_transducer(rle_decode(), []) == []

    def test_decode(self):
        assert apply_transducer(rle_decode(), [(2, "a"), (1, "b")]) == [
            "a", "a", "b"
        ]

    def test_round_trip(self):
        items = ["x"] * 5 + ["y"] + ["x"] * 2
        encoded = apply_transducer(rle_encode(), items)
        assert apply_transducer(rle_decode(), encoded) == items

    @pytest.mark.parametrize("junk", ["ab", (0, "a"), (1,), ("a", 1)])
    def test_decode_rejects_junk(self, junk):
        with pytest.raises(StreamProtocolError):
            apply_transducer(rle_decode(), [junk])
