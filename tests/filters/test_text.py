"""Text-processing filters: numbering, pagination, counting, sorting."""

import pytest

from repro.filters import (
    WordCountSummary,
    head,
    number_lines,
    paginate,
    pretty_print,
    sort_lines,
    tail,
    unique_adjacent,
    word_count,
)
from repro.transput import apply_transducer


class TestNumberLines:
    def test_numbers_from_one(self):
        out = apply_transducer(number_lines(), ["a", "b"])
        assert out == ["     1  a", "     2  b"]

    def test_custom_start_and_template(self):
        out = apply_transducer(
            number_lines(start=10, template="{number}:{line}"), ["x"]
        )
        assert out == ["10:x"]


class TestPaginate:
    def test_pages_and_headers(self):
        out = apply_transducer(paginate(page_length=2, title="T"), list("abcde"))
        assert out[0] == "--- T page 1 ---"
        assert out.count("\f") == 3  # two full pages + final partial
        assert out[-1] == "\f"

    def test_exact_multiple_has_no_trailing_partial(self):
        out = apply_transducer(paginate(page_length=2), list("abcd"))
        assert out.count("\f") == 2

    def test_headerless(self):
        out = apply_transducer(paginate(page_length=2, header=False), ["a"])
        assert out == ["a", "\f"]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            paginate(page_length=0)


class TestWordCount:
    def test_counts(self):
        out = apply_transducer(word_count(), ["one two", "three"])
        assert out == [WordCountSummary(lines=2, words=3,
                                        characters=len("one two") + 1
                                        + len("three") + 1)]

    def test_empty_stream(self):
        out = apply_transducer(word_count(), [])
        assert out == [WordCountSummary(0, 0, 0)]

    def test_str_form(self):
        summary = WordCountSummary(1, 2, 3)
        assert str(summary).split() == ["1", "2", "3"]


class TestSortUnique:
    def test_sort(self):
        assert apply_transducer(sort_lines(), ["c", "a", "b"]) == ["a", "b", "c"]

    def test_sort_key_reverse(self):
        out = apply_transducer(
            sort_lines(key=len, reverse=True), ["aa", "bbb", "c"]
        )
        assert out == ["bbb", "aa", "c"]

    def test_unique_adjacent(self):
        out = apply_transducer(unique_adjacent(), ["a", "a", "b", "a"])
        assert out == ["a", "b", "a"]


class TestHeadTail:
    def test_head(self):
        assert apply_transducer(head(2), [1, 2, 3, 4]) == [1, 2]
        assert apply_transducer(head(0), [1]) == []
        with pytest.raises(ValueError):
            head(-1)

    def test_tail(self):
        assert apply_transducer(tail(2), [1, 2, 3, 4]) == [3, 4]
        assert apply_transducer(tail(10), [1, 2]) == [1, 2]
        with pytest.raises(ValueError):
            tail(-1)


class TestPrettyPrint:
    def test_indents_by_nesting(self):
        source = ["proc f {", "if x {", "y", "}", "}"]
        out = apply_transducer(pretty_print(indent=2), source)
        assert out == ["proc f {", "  if x {", "    y", "  }", "}"]

    def test_depth_never_negative(self):
        out = apply_transducer(pretty_print(), ["}", "}", "x"])
        assert out == ["}", "}", "x"]

    def test_invalid_indent(self):
        with pytest.raises(ValueError):
            pretty_print(indent=-1)
