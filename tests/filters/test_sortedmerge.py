"""SortedMergeFilter: order-preserving two-stream fan-in."""

from hypothesis import given, settings, strategies as st

from repro.filters import SortedMergeFilter
from repro.transput import CollectorSink, ListSource
from repro.core import Kernel
from tests.conftest import run_until_done


def merge(kernel, left, right, **kwargs):
    a = kernel.create(ListSource, items=list(left))
    b = kernel.create(ListSource, items=list(right))
    merger = kernel.create(
        SortedMergeFilter, left=a.output_endpoint(),
        right=b.output_endpoint(), **kwargs,
    )
    sink = kernel.create(CollectorSink, inputs=[merger.output_endpoint()])
    run_until_done(kernel, sink)
    return sink.collected


class TestSortedMerge:
    def test_interleaves_sorted_streams(self, kernel):
        assert merge(kernel, [1, 3, 5], [2, 4, 6]) == [1, 2, 3, 4, 5, 6]

    def test_uneven_lengths(self, kernel):
        assert merge(kernel, [10], [1, 2, 3]) == [1, 2, 3, 10]

    def test_empty_sides(self, kernel):
        assert merge(kernel, [], [1, 2]) == [1, 2]

    def test_both_empty(self, kernel):
        assert merge(kernel, [], []) == []

    def test_duplicates_stable_left_first(self, kernel):
        assert merge(kernel, ["a1"], ["a2"], key=lambda s: s[0]) == ["a1", "a2"]

    def test_custom_key(self, kernel):
        out = merge(kernel, ["bb", "dddd"], ["a", "ccc"], key=len)
        assert out == ["a", "bb", "ccc", "dddd"]

    def test_batching(self, kernel):
        left = list(range(0, 20, 2))
        right = list(range(1, 20, 2))
        assert merge(kernel, left, right, batch_in=4) == list(range(20))

    @settings(max_examples=30, deadline=None)
    @given(
        left=st.lists(st.integers(min_value=-50, max_value=50), max_size=12),
        right=st.lists(st.integers(min_value=-50, max_value=50), max_size=12),
    )
    def test_merge_of_sorted_is_sorted_concat(self, left, right):
        kernel = Kernel()
        out = merge(kernel, sorted(left), sorted(right))
        assert out == sorted(left + right)
