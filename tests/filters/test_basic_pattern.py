"""Basic and pattern filters as pure transducers."""

import pytest

from repro.filters import (
    batch_lines,
    between,
    comment_stripper,
    delete_matching,
    expand_tabs,
    fold,
    grep,
    identity,
    lower_case,
    prepend,
    repeat,
    reverse_line,
    strip_whitespace,
    substitute,
    translate,
    upper_case,
)
from repro.transput import apply_transducer


class TestBasic:
    def test_identity(self):
        assert apply_transducer(identity(), [1, "a"]) == [1, "a"]

    def test_case_mapping(self):
        assert apply_transducer(upper_case(), ["aB"]) == ["AB"]
        assert apply_transducer(lower_case(), ["aB"]) == ["ab"]

    def test_reverse(self):
        assert apply_transducer(reverse_line(), ["abc"]) == ["cba"]

    def test_strip(self):
        assert apply_transducer(strip_whitespace(), ["  x  "]) == ["x"]

    def test_expand_tabs(self):
        assert apply_transducer(expand_tabs(4), ["a\tb"]) == ["a   b"]
        with pytest.raises(ValueError):
            expand_tabs(0)

    def test_fold_splits_long_lines(self):
        assert apply_transducer(fold(3), ["abcdefg"]) == ["abc", "def", "g"]
        assert apply_transducer(fold(3), [""]) == [""]
        with pytest.raises(ValueError):
            fold(0)

    def test_translate(self):
        assert apply_transducer(translate("abc", "xyz"), ["cab"]) == ["zxy"]
        with pytest.raises(ValueError):
            translate("ab", "x")

    def test_prepend(self):
        assert apply_transducer(prepend(">> "), ["hi"]) == [">> hi"]

    def test_repeat(self):
        assert apply_transducer(repeat(3), ["x"]) == ["x", "x", "x"]
        assert apply_transducer(repeat(0), ["x"]) == []
        with pytest.raises(ValueError):
            repeat(-1)

    def test_batch_lines(self):
        assert apply_transducer(batch_lines(2), [1, 2, 3, 4, 5]) == [
            (1, 2), (3, 4), (5,)
        ]
        with pytest.raises(ValueError):
            batch_lines(0)


class TestCommentStripper:
    def test_papers_fortran_example(self):
        """§3: omit all lines beginning with "C"."""
        deck = ["C comment", "      REAL X", "CONTINUE IS NOT SAFE",
                "      X = 1"]
        out = apply_transducer(comment_stripper("C"), deck)
        assert out == ["      REAL X", "      X = 1"]

    def test_custom_marker(self):
        assert apply_transducer(comment_stripper("#"), ["# a", "b"]) == ["b"]


class TestPatternFilters:
    def test_delete_matching(self):
        out = apply_transducer(delete_matching(r"\d"), ["a1", "bc", "2d"])
        assert out == ["bc"]

    def test_grep(self):
        out = apply_transducer(grep(r"^b"), ["abc", "bcd", "bxx"])
        assert out == ["bcd", "bxx"]

    def test_substitute(self):
        out = apply_transducer(substitute(r"o+", "0"), ["foo boo"])
        assert out == ["f0 b0"]

    def test_substitute_count(self):
        out = apply_transducer(substitute("o", "0", count=1), ["foo"])
        assert out == ["f0o"]

    def test_between_stateful(self):
        lines = ["x", "BEGIN", "a", "END", "y", "BEGIN", "b", "END", "z"]
        out = apply_transducer(between("BEGIN", "END"), lines)
        assert out == ["BEGIN", "a", "END", "BEGIN", "b", "END"]

    def test_grep_is_reusable_fresh_instances(self):
        first = apply_transducer(grep("a"), ["a", "b"])
        second = apply_transducer(grep("a"), ["ab"])
        assert first == ["a"] and second == ["ab"]
