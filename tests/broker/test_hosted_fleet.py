"""Acceptance: hosted fleets as real processes under the supervisor.

``plan_hosted_fleet`` turns a pipeline into one ``eden-broker`` daemon
plus ``eden-host`` processes; the ordinary :func:`run_fleet` runs it.
The observability bar is the same one the process placement passes:
merged span logs must show exactly the paper's C1/C2 causal chains,
span by span, even though every link now rides a multiplexed broker
connection.
"""

import json

import pytest

from repro.analysis import predicted_invocations
from repro.net.launch import IDENTITY, run_fleet
from repro.obs.merge import (
    load_span_log,
    merge_span_logs,
    verify_exactly_once,
    verify_invocation_chains,
)
from repro.broker.launch import plan_hosted_fleet

ITEMS = ["alpha", "beta", "gamma"]
N_FILTERS = 3
UPPER = ("repro.filters:upper_case", [])


def hosted_plans(tmp_path, transducers=(IDENTITY,), **kwargs):
    return plan_hosted_fleet(
        kwargs.pop("discipline", "readonly"), list(transducers),
        str(tmp_path), source_items=list(ITEMS), **kwargs,
    )


class TestHostedFleet:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly"])
    def test_pipeline_output_matches_the_transducers(self, tmp_path,
                                                     discipline):
        plans = hosted_plans(tmp_path, transducers=[UPPER],
                             discipline=discipline)
        result = run_fleet(plans, timeout=90.0)
        assert result.output == [item.upper() for item in ITEMS]

    def test_fleet_is_two_processes_regardless_of_length(self, tmp_path):
        plans = hosted_plans(tmp_path, transducers=[IDENTITY] * 6)
        # 8 pipeline stages, but one broker + one host process.
        assert len(plans) == 2
        assert [plan.role for plan in plans] == ["broker", "host"]
        assert plans[0].daemon and not plans[1].daemon

    def test_broker_daemon_is_stopped_and_dumps_stats(self, tmp_path):
        plans = hosted_plans(tmp_path)
        result = run_fleet(plans, timeout=90.0)
        assert result.output == ITEMS
        with open(tmp_path / "broker.stats.json", encoding="utf-8") as handle:
            stats = json.load(handle)
        assert stats["role"] == "broker"
        assert stats["counters"]["registrations"] == 3
        assert stats["counters"]["relayed_frames"] > 0

    def test_stages_spread_over_multiple_hosts(self, tmp_path):
        plans = hosted_plans(tmp_path, transducers=[UPPER, IDENTITY],
                             hosts=2)
        assert [plan.role for plan in plans] == ["broker", "host", "host"]
        result = run_fleet(plans, timeout=90.0)
        assert result.output == [item.upper() for item in ITEMS]
        # Each host got a contiguous chunk of the 4 stages.
        for index, size in ((0, 2), (1, 2)):
            with open(tmp_path / f"host-{index}.plan.json",
                      encoding="utf-8") as handle:
                assert len(json.load(handle)["stages"]) == size

    def test_conventional_discipline_is_refused(self, tmp_path):
        with pytest.raises(ValueError, match="conventional"):
            hosted_plans(tmp_path, discipline="conventional")

    def test_manifest_names_the_broker_and_placement(self, tmp_path):
        hosted_plans(tmp_path, control=True)
        with open(tmp_path / "fleet.json", encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert manifest["placement"] == "hosted"
        assert ":" in manifest["broker"]
        assert [entry["role"] for entry in manifest["stages"]] == [
            "broker", "host"
        ]


class TestHostedSpans:
    def test_hosted_chains_match_the_cost_model(self, tmp_path):
        # The acceptance bar: C1/C2 span by span through the broker
        # path, exactly as the per-process placement produces them.
        plans = hosted_plans(tmp_path, transducers=[IDENTITY] * N_FILTERS,
                             trace=True)
        result = run_fleet(plans, timeout=120.0)
        assert result.output == ITEMS
        trees = merge_span_logs(
            [load_span_log(path) for path in result.trace_files]
        )
        report = verify_invocation_chains(
            trees, "readonly", N_FILTERS, len(ITEMS)
        )
        assert report.ok, report.problems
        assert report.expected_spans_per_trace == N_FILTERS + 1
        assert report.total_spans == predicted_invocations(
            "readonly", N_FILTERS, len(ITEMS)
        )
        assert all(tree.is_chain() for tree in trees)

    def test_hosted_delivery_is_exactly_once(self, tmp_path):
        plans = hosted_plans(tmp_path, trace=True, resume=True)
        result = run_fleet(plans, timeout=90.0)
        logs = [load_span_log(path) for path in result.trace_files]
        report = verify_exactly_once(logs, expected=len(ITEMS))
        assert report.ok, report.problems
