"""In-process tests of the broker's naming, issuance, and relay.

An in-process :class:`Broker` plus real :class:`BrokerClient`
attachments over loopback TCP: registrations mint stable serials,
opens are compatibility-checked at issuance, unregistered names park,
and a full pull stream runs through the codec-blind relay.
"""

import asyncio

import pytest

from repro.aio.streams import AioSource
from repro.net.handshake import (
    ROLE_PULL,
    ROLE_PUSH,
    TicketBook,
    expect_hello_over,
    send_hello_over,
)
from repro.net.protocol import serve_pull
from repro.broker.client import BrokerClient
from repro.broker.daemon import (
    BROKER_SERIAL,
    FIRST_STAGE_SERIAL,
    Broker,
    BrokerError,
)

BOOK_ARGS = dict(space=3, seed=7)


def run(coroutine):
    return asyncio.run(coroutine)


def book():
    return TicketBook(**BOOK_ARGS)


async def start_broker(**options):
    broker = Broker(book(), **options)
    await broker.start()
    return broker


async def attach(broker, serial, **options):
    client = BrokerClient(
        broker.host, broker.port, book(), serial=serial,
        connect_deadline=5.0, request_timeout=5.0, **options,
    )
    await client.connect()
    return client


class TestRegistration:
    def test_serials_count_up_from_the_stage_floor(self):
        async def scenario():
            broker = await start_broker()
            client = await attach(broker, 2)
            first = await client.register("source", serves=(ROLE_PULL,))
            second = await client.register("sink")
            await client.close()
            await broker.close()
            return first, second

        first, second = run(scenario())
        assert first == FIRST_STAGE_SERIAL
        assert second == FIRST_STAGE_SERIAL + 1

    def test_reregistration_keeps_the_serial(self):
        async def scenario():
            broker = await start_broker()
            client = await attach(broker, 2)
            original = await client.register("source", serves=(ROLE_PULL,))
            await client.close()  # the host crashes...
            revived = await attach(broker, 2)  # ...and comes back
            again = await revived.register("source", serves=(ROLE_PULL,))
            await revived.close()
            await broker.close()
            return original, again

        original, again = run(scenario())
        assert again == original

    def test_live_names_cannot_be_stolen(self):
        async def scenario():
            broker = await start_broker()
            owner = await attach(broker, 2)
            thief = await attach(broker, 3)
            await owner.register("source", serves=(ROLE_PULL,))
            with pytest.raises(BrokerError, match="name-taken"):
                await thief.register("source")
            await owner.close()
            await thief.close()
            await broker.close()

        run(scenario())

    def test_bad_names_and_roles_are_refused(self):
        async def scenario():
            broker = await start_broker()
            client = await attach(broker, 2)
            with pytest.raises(BrokerError, match="bad-name"):
                await client.register("")
            with pytest.raises(BrokerError, match="bad-roles"):
                await client.register("x", serves=("launch-missiles",))
            await client.close()
            await broker.close()

        run(scenario())


class TestIssuance:
    def test_incompatible_role_refused_at_open_time(self):
        async def scenario():
            broker = await start_broker()
            server = await attach(broker, 2)
            opener = await attach(broker, 3)
            # "source" serves pull endpoints only; a push endpoint
            # must be refused at issuance, not deadlock at runtime.
            await server.register("source", serves=(ROLE_PULL,))
            with pytest.raises(BrokerError, match="incompatible-channel"):
                await opener.open("source", ROLE_PUSH)
            count = broker.stats.get("incompatible_opens")
            await server.close()
            await opener.close()
            await broker.close()
            return count

        assert run(scenario()) == 1

    def test_unknown_name_fails_fast_without_parking(self):
        async def scenario():
            broker = await start_broker(park_deadline=0)
            client = await attach(broker, 2)
            with pytest.raises(BrokerError, match="no-such-name"):
                await client.open("nobody", ROLE_PULL)
            await client.close()
            await broker.close()

        run(scenario())

    def test_parked_open_times_out_with_no_such_name(self):
        async def scenario():
            broker = await start_broker(park_deadline=0.2)
            client = await attach(broker, 2)
            with pytest.raises(BrokerError, match="no-such-name"):
                await client.open("late", ROLE_PULL)
            count = broker.stats.get("park_timeouts")
            await client.close()
            await broker.close()
            return count

        assert run(scenario()) == 1

    def test_parked_open_completes_when_the_name_registers(self):
        async def scenario():
            broker = await start_broker(park_deadline=5.0)
            accepted = []
            server = await attach(
                broker, 2,
                on_accept=lambda channel, notice: accepted.append(notice),
            )
            opener = await attach(broker, 3)
            pending = asyncio.ensure_future(opener.open("slow", ROLE_PULL))
            await asyncio.sleep(0.05)
            assert not pending.done()  # parked, not refused
            await server.register("slow", serves=(ROLE_PULL,))
            channel = await asyncio.wait_for(pending, timeout=5.0)
            await opener.close()
            await server.close()
            await broker.close()
            return channel.chan, accepted

        chan, accepted = run(scenario())
        assert chan > 0
        assert accepted and accepted[0]["name"] == "slow"
        assert accepted[0]["role"] == ROLE_PULL

    def test_ping_and_idempotent_close_chan(self):
        async def scenario():
            broker = await start_broker()
            client = await attach(broker, 2)
            assert await client.request("ping") == {}
            # Unknown channel: empty success, so close races are benign.
            assert await client.request("close-chan", chan=99) == {}
            with pytest.raises(BrokerError, match="unknown-command"):
                await client.request("frobnicate")
            await client.close()
            await broker.close()

        run(scenario())


class TestRelay:
    def test_pull_stream_runs_through_the_relay(self):
        async def scenario():
            broker = await start_broker()
            client_book = book()
            server_uid = client_book.ticket(FIRST_STAGE_SERIAL)

            def serve(channel, notice):
                async def body():
                    hello = await expect_hello_over(
                        channel, client_book, server_uid, credit=0
                    )
                    await serve_pull(
                        channel, AioSource(["a", "b"]), hello,
                        batch_limit=None,
                    )
                    await server.release(channel)

                asyncio.ensure_future(body())

            server = await attach(broker, 2, on_accept=serve)
            await server.register("source", serves=(ROLE_PULL,))
            opener = await attach(broker, 3)
            channel = await opener.open("source", ROLE_PULL)
            await send_hello_over(
                channel, client_book.ticket(200), ROLE_PULL,
                book=client_book,
            )
            from repro.net.framing import Frame, FrameType

            got = []
            for seq in range(3):
                await channel.send(
                    Frame(FrameType.READ, {"seq": seq, "batch": 1})
                )
                reply = await asyncio.wait_for(channel.recv(), timeout=5.0)
                got.append(reply)
            relayed = broker.stats.get("relayed_frames")
            await opener.release(channel)
            await opener.close()
            await server.close()
            await broker.close()
            return got, relayed

        got, relayed = run(scenario())
        assert [frame.type.name for frame in got] == ["DATA", "DATA", "END"]
        assert [frame.body.get("items") for frame in got[:2]] == [["a"], ["b"]]
        assert relayed > 0

    def test_local_close_hangs_up_the_peer(self):
        async def scenario():
            broker = await start_broker()
            accepted = asyncio.get_running_loop().create_future()
            server = await attach(
                broker, 2,
                on_accept=lambda channel, notice: accepted.set_result(channel),
            )
            await server.register("source", serves=(ROLE_PULL,))
            opener = await attach(broker, 3)
            channel = await opener.open("source", ROLE_PULL)
            passive_end = await accepted
            await opener.release(channel)
            # The passive end learns about it through the broker.
            hung_up = await asyncio.wait_for(passive_end.recv(), timeout=5.0)
            await opener.close()
            await server.close()
            await broker.close()
            return hung_up

        assert run(scenario()) is None

    def test_dead_attachment_hangs_up_its_routes(self):
        async def scenario():
            broker = await start_broker()
            accepted = asyncio.get_running_loop().create_future()
            server = await attach(
                broker, 2,
                on_accept=lambda channel, notice: accepted.set_result(channel),
            )
            await server.register("source", serves=(ROLE_PULL,))
            opener = await attach(broker, 3)
            await opener.open("source", ROLE_PULL)
            passive_end = await accepted
            await opener.close()  # whole host dies, no close-chan sent
            hung_up = await asyncio.wait_for(passive_end.recv(), timeout=5.0)
            await server.close()
            await broker.close()
            return hung_up

        assert run(scenario()) is None


class TestIntrospection:
    def test_health_and_channel_listing(self):
        async def scenario():
            broker = await start_broker()
            accepted = asyncio.get_running_loop().create_future()
            server = await attach(
                broker, 2,
                on_accept=lambda channel, notice: accepted.set_result(channel),
            )
            await server.register("source", serves=(ROLE_PULL,))
            opener = await attach(broker, 3)
            await opener.open("source", ROLE_PULL)
            await accepted
            handlers = broker.control_handlers()
            health = handlers["health"]({})
            channels = handlers["channels"]({})
            await opener.close()
            await server.close()
            await broker.close()
            return health, channels

        health, channels = run(scenario())
        assert health["role"] == "broker"
        assert health["hosts"] == 2
        assert health["names"] == 1
        assert health["channels_open"] == 1
        assert len(channels) == 1
        assert channels[0]["name"] == "source"
        assert channels[0]["role"] == ROLE_PULL

    def test_broker_uid_is_the_reserved_serial(self):
        broker = Broker(book())
        assert broker.uid == book().ticket(BROKER_SERIAL)
        assert broker.book.verify(broker.uid)

    def test_rejects_forged_attachments(self):
        async def scenario():
            broker = await start_broker()
            impostor = BrokerClient(
                broker.host, broker.port, TicketBook(space=9, seed=9),
                serial=2, connect_deadline=5.0,
            )
            with pytest.raises(Exception):
                await impostor.connect()
                await impostor.request("ping", timeout=1.0)
            rejected = broker.stats.get("rejected_attachments")
            await impostor.close()
            await broker.close()
            return rejected

        assert run(scenario()) == 1
