"""In-process tests of the eden-host stage runtime.

One event loop carries the broker *and* a :class:`StageHost` running
a whole pipeline: stages register by name, open channels through the
relay, and the host's in-process supervision restarts a crashed stage
without touching its neighbours.
"""

import asyncio

import pytest

from repro.fault.plan import FaultPlan
from repro.net.handshake import ROLE_PULL, ROLE_PUSH, TicketBook
from repro.broker.daemon import Broker, FIRST_STAGE_SERIAL
from repro.broker.host import (
    HostConfig,
    HostError,
    HostedStageSpec,
    StageHost,
    serves_roles,
)

BOOK_ARGS = dict(space=5, seed=21)
ITEMS = ["pearl", "coral", "amber", "jade"]
UPPER = "repro.filters:upper_case"


def run(coroutine):
    return asyncio.run(coroutine)


def pipeline_specs(discipline, faults=None, transducer=UPPER):
    faults = faults or {}
    links = (
        {"upstream": True} if discipline == "readonly"
        else {"downstream": True}
    )
    source = HostedStageSpec(
        name="source", role="source", source_items=list(ITEMS),
        downstream="filter1" if "downstream" in links else None,
        fault=faults.get("source", FaultPlan()),
    )
    filter1 = HostedStageSpec(
        name="filter1", role="filter", transducer_spec=transducer,
        upstream="source" if "upstream" in links else None,
        downstream="sink" if "downstream" in links else None,
        fault=faults.get("filter1", FaultPlan()),
    )
    sink = HostedStageSpec(
        name="sink", role="sink",
        upstream="filter1" if "upstream" in links else None,
        fault=faults.get("sink", FaultPlan()),
    )
    return [source, filter1, sink]


async def hosted_run(discipline, faults=None, **config_options):
    broker = Broker(TicketBook(**BOOK_ARGS))
    await broker.start()
    config = HostConfig(
        broker_host=broker.host, broker_port=broker.port,
        stages=pipeline_specs(discipline, faults),
        discipline=discipline,
        ticket_space=BOOK_ARGS["space"], ticket_seed=BOOK_ARGS["seed"],
        connect_deadline=5.0,
        **config_options,
    )
    host = StageHost(config)
    try:
        await asyncio.wait_for(host.run(), timeout=60.0)
    finally:
        await broker.close()
    return broker, host


def sink_output(host):
    return next(
        stage.collected for stage in host.stages
        if stage.spec.role == "sink"
    )


class TestHostedPipelines:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly"])
    def test_pipeline_completes_through_the_broker(self, discipline):
        broker, host = run(hosted_run(discipline))
        assert sink_output(host) == [item.upper() for item in ITEMS]
        # Every link went through the relay; nothing bound a data port.
        assert broker.stats.get("relayed_frames") > 0
        assert broker.stats.get("registrations") == 3

    def test_stages_get_broker_minted_serials_and_uids(self):
        _broker, host = run(hosted_run("readonly"))
        serials = [stage.serial for stage in host.stages]
        assert serials == [FIRST_STAGE_SERIAL + i for i in range(3)]
        book = TicketBook(**BOOK_ARGS)
        for stage in host.stages:
            assert book.verify(stage.uid)
            assert f"#{stage.serial}" in stage.label

    def test_conventional_discipline_refused(self):
        with pytest.raises(ValueError, match="conventional|readonly"):
            HostConfig(
                broker_host="127.0.0.1", broker_port=1,
                stages=pipeline_specs("readonly"),
                discipline="conventional",
            )

    def test_duplicate_stage_names_refused(self):
        specs = pipeline_specs("readonly")
        specs[2] = HostedStageSpec(
            name="source", role="sink", upstream="filter1"
        )
        with pytest.raises(ValueError, match="unique"):
            HostConfig(
                broker_host="127.0.0.1", broker_port=1, stages=specs,
            )


class TestServesRoles:
    @pytest.mark.parametrize("role,discipline,expected", [
        ("source", "readonly", (ROLE_PULL,)),
        ("filter", "readonly", (ROLE_PULL,)),
        ("sink", "readonly", ()),
        ("source", "writeonly", ()),
        ("filter", "writeonly", (ROLE_PUSH,)),
        ("sink", "writeonly", (ROLE_PUSH,)),
    ])
    def test_passive_ends_by_role(self, role, discipline, expected):
        assert serves_roles(role, discipline) == expected


class TestInProcessSupervision:
    def test_killed_filter_restarts_and_the_stream_recovers(self):
        faults = {"filter1": FaultPlan(kill_after=3)}
        _broker, host = run(hosted_run(
            "readonly", faults=faults, resume=True,
            max_restarts=2, restart_backoff=0.01,
        ))
        assert sink_output(host) == [item.upper() for item in ITEMS]
        filter_stage = host.stages[1]
        assert filter_stage.restarts >= 1
        assert filter_stage.state == "done"
        assert host.stats.get("stage_crashes") >= 1
        assert host.stats.get("stage_restarts") >= 1

    def test_spent_restart_budget_fails_the_host(self):
        # With budget 0 the first crash is final and names the stage.
        faults = {"filter1": FaultPlan(kill_after=2)}
        with pytest.raises(HostError, match="filter1.*restart"):
            run(hosted_run(
                "readonly", faults=faults, resume=True,
                max_restarts=0, restart_backoff=0.01,
            ))

    def test_frame_faults_inject_on_hosted_channels(self):
        from repro.fault.plan import FrameFault

        # The filter's injector duplicates every DATA frame it sends;
        # seq-based dedup keeps delivery exactly-once regardless.
        faults = {"filter1": FaultPlan(frame_faults=[
            FrameFault(action="duplicate", frame="data", every=1),
        ])}
        _broker, host = run(hosted_run(
            "readonly", faults=faults, resume=True,
        ))
        assert sink_output(host) == [item.upper() for item in ITEMS]
        assert host.stats.get("fault_duplicate") >= len(ITEMS)

    def test_refused_accepts_are_retried_by_the_peer(self):
        faults = {"filter1": FaultPlan(refuse_accepts=1)}
        _broker, host = run(hosted_run(
            "readonly", faults=faults, resume=True,
            max_restarts=0, restart_backoff=0.01,
        ))
        assert sink_output(host) == [item.upper() for item in ITEMS]
        assert host.stats.get("refused_accepts") == 1


class TestIntrospection:
    def test_control_payloads_describe_the_host(self):
        _broker, host = run(hosted_run("readonly"))
        handlers = host.control_handlers()
        health = handlers["health"]({})
        assert health["role"] == "host"
        assert health["hosted"] == 3
        assert health["states"] == {"done": 3}
        stages = handlers["stages"]({})
        assert [row["name"] for row in stages] == ["source", "filter1", "sink"]
        assert all(row["state"] == "done" for row in stages)
        assert all(row["serial"] >= FIRST_STAGE_SERIAL for row in stages)

    def test_host_output_lists_sink_items_in_stage_order(self, capsys):
        _broker, host = run(hosted_run("readonly"))
        host.emit_output()
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines == [item.upper() for item in ITEMS]
