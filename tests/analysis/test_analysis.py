"""Cost model exactness, the measurement harness, table rendering."""

import pytest

from repro.analysis import (
    conventional_shape,
    format_ratio,
    format_table,
    invocation_savings,
    measure_pipeline,
    predicted_invocations,
    predicted_lazy_makespan,
    predicted_pipelined_makespan,
    readonly_shape,
    shape_for,
    sweep_pipeline_lengths,
    writeonly_shape,
)
from repro.core import TransportCosts


class TestShapes:
    def test_paper_formulas(self):
        """C1/C2 verbatim: n+2 Ejects & n+1 inv/datum vs 2n+3 & 2n+2."""
        for n in range(0, 10):
            ro = readonly_shape(n)
            assert ro.ejects == n + 2
            assert ro.buffers == 0
            assert ro.invocations_per_datum == n + 1
            conv = conventional_shape(n)
            assert conv.ejects == 2 * n + 3
            assert conv.buffers == n + 1
            assert conv.invocations_per_datum == 2 * n + 2
            assert writeonly_shape(n) == ro

    def test_savings_is_exactly_half(self):
        """§4: "roughly half as many invocations" — exactly half here."""
        for n in range(0, 10):
            assert invocation_savings(n) == 0.5

    def test_shape_for_dispatch(self):
        assert shape_for("readonly", 2) == readonly_shape(2)
        with pytest.raises(ValueError):
            shape_for("psychic", 2)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            readonly_shape(-1)


class TestPredictedInvocations:
    def test_batching(self):
        # 10 items, batch 4 -> 3 data + 1 END = 4 transfers per hop.
        assert predicted_invocations("readonly", 2, 10, batch=4) == 3 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_invocations("readonly", 1, -1)
        with pytest.raises(ValueError):
            predicted_invocations("readonly", 1, 10, batch=0)

    def test_makespan_models_monotone(self):
        assert predicted_lazy_makespan(3, 100, 1.0) > predicted_lazy_makespan(
            1, 100, 1.0
        )
        assert predicted_pipelined_makespan(3, 100, 2.0) == (100 + 4) * 2.0
        with pytest.raises(ValueError):
            predicted_lazy_makespan(-1, 1, 1.0)
        with pytest.raises(ValueError):
            predicted_pipelined_makespan(-1, 1, 1.0)


class TestMeasureMatchesModel:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    @pytest.mark.parametrize("n", [0, 1, 3, 6])
    def test_exact_for_identity_pipelines(self, discipline, n):
        """The simulator reproduces the paper's counts *exactly*."""
        measurement = measure_pipeline(discipline, n, items=12)
        assert measurement.matches_prediction, measurement

    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_exact_across_batch_sizes(self, batch):
        measurement = measure_pipeline("readonly", 2, items=10, batch=batch)
        assert measurement.invocations == measurement.predicted_invocations

    def test_sweep(self):
        measurements = sweep_pipeline_lengths(
            ("readonly", "conventional"), (1, 2), items=5
        )
        assert len(measurements) == 4
        assert all(m.matches_prediction for m in measurements)

    def test_invocations_per_datum_property(self):
        measurement = measure_pipeline("readonly", 3, items=50)
        # n+1 = 4 plus END overhead: between 4 and 4.1.
        assert 4.0 <= measurement.invocations_per_datum <= 4.1

    def test_custom_costs_affect_makespan_not_counts(self):
        cheap = measure_pipeline("readonly", 2, items=5)
        slow = measure_pipeline(
            "readonly", 2, items=5,
            costs=TransportCosts(local_latency=10.0),
        )
        assert cheap.invocations == slow.invocations
        assert slow.virtual_makespan > cheap.virtual_makespan

    def test_zero_items_per_datum_guard(self):
        measurement = measure_pipeline("readonly", 1, items=0)
        assert measurement.invocations_per_datum == 0.0


class TestFormatting:
    def test_table_alignment(self):
        table = format_table(
            ["name", "n"], [["readonly", 3], ["conventional", 10]],
            title="T",
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        assert lines[3].endswith("3")
        assert lines[4].endswith("10")

    def test_float_rendering(self):
        table = format_table(["x"], [[1.0], [1.25]])
        assert " 1" in table or "1\n" in table
        assert "1.25" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table

    def test_ratio(self):
        assert format_ratio(1, 2) == "0.50x"
        assert format_ratio(1, 0) == "n/a"


class TestMeasurementMismatchPath:
    def test_matches_prediction_false_when_counts_differ(self):
        from dataclasses import replace

        measurement = measure_pipeline("readonly", 1, items=5)
        broken = replace(measurement, invocations=measurement.invocations + 1)
        assert measurement.matches_prediction
        assert not broken.matches_prediction


class TestTracerFormatting:
    def test_format_subset(self):
        from repro.core.tracing import Tracer

        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "invoke", "a")
        tracer.emit(2.0, "reply", "b")
        only_replies = tracer.format(tracer.of_kind("reply"))
        assert "reply" in only_replies and "invoke" not in only_replies
