"""Trace analysis helpers: timelines, histograms, sequence diagrams."""

import pytest

from repro.analysis import (
    format_sequence_diagram,
    interaction_histogram,
    invocation_timeline,
    participants,
)
from repro.core import Kernel
from repro.filters import upper_case
from repro.transput import compose_readonly_pipeline


@pytest.fixture
def traced_run():
    kernel = Kernel(trace=True)
    pipeline = compose_readonly_pipeline(kernel, ["a", "b"], [upper_case()])
    pipeline.run_to_completion()
    return kernel, pipeline


class TestTimeline:
    def test_rows_in_send_order(self, traced_run):
        kernel, _ = traced_run
        timeline = invocation_timeline(kernel.tracer)
        assert len(timeline) == 6  # 3 sink reads + 3 filter reads
        assert all(
            earlier.time <= later.time
            for earlier, later in zip(timeline, timeline[1:])
        )

    def test_targets_resolved_to_names(self, traced_run):
        kernel, pipeline = traced_run
        timeline = invocation_timeline(kernel.tracer)
        names = {entry.target for entry in timeline}
        assert pipeline.filters[0].name in names
        assert pipeline.source.name in names

    def test_empty_trace(self):
        kernel = Kernel(trace=True)
        assert invocation_timeline(kernel.tracer) == []


class TestHistogram:
    def test_counts_per_edge(self, traced_run):
        kernel, pipeline = traced_run
        histogram = interaction_histogram(kernel.tracer)
        sink_edge = (
            pipeline.sink.name, pipeline.filters[0].name, "Read"
        )
        filter_edge = (
            pipeline.filters[0].name, pipeline.source.name, "Read"
        )
        assert histogram[sink_edge] == 3
        assert histogram[filter_edge] == 3

    def test_participants_order(self, traced_run):
        kernel, pipeline = traced_run
        names = participants(kernel.tracer)
        assert names[0] == pipeline.sink.name  # first sender


class TestSequenceDiagram:
    def test_renders_all_parties(self, traced_run):
        kernel, pipeline = traced_run
        diagram = format_sequence_diagram(kernel.tracer)
        for eject in pipeline.ejects:
            assert eject.name in diagram
        assert "Read @" in diagram
        assert ">" in diagram

    def test_truncation_note(self, traced_run):
        kernel, _ = traced_run
        diagram = format_sequence_diagram(kernel.tracer, max_messages=2)
        assert "more messages" in diagram

    def test_empty(self):
        kernel = Kernel(trace=True)
        assert "no invocations" in format_sequence_diagram(kernel.tracer)

    def test_self_invocation_marked(self):
        from repro.core import Eject

        kernel = Kernel(trace=True)

        class Selfie(Eject):
            eden_type = "Selfie"

            def op_Pong(self, invocation):
                return True

            def op_Go(self, invocation):
                # Invoke ourselves; the second server process answers.
                return (yield self.call(self.uid, "Pong"))

            def process_bodies(self):
                return [("main", self.main()), ("second", self.main())]

        selfie = kernel.create(Selfie)
        assert kernel.call_sync(selfie.uid, "Go") is True
        diagram = format_sequence_diagram(kernel.tracer)
        assert "O" in diagram
