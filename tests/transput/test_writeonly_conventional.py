"""Write-only and conventional filters: duality, fan-out, secondaries."""

import pytest

from repro.transput import (
    ActiveSource,
    CollectorSink,
    ConventionalFilter,
    ListSource,
    PassiveBuffer,
    PassiveSink,
    Primitive,
    StreamEndpoint,
    Transfer,
    WriteOnlyFilter,
)
from repro.filters import StreamEditor, identity, upper_case, with_reports
from repro.transput.stream import END_TRANSFER
from tests.conftest import run_until_done


class TestWriteOnlyBasics:
    def build(self, kernel, items, transducer, **kwargs):
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter, transducer=transducer,
            outputs=[StreamEndpoint(sink.uid, None)], **kwargs,
        )
        kernel.create(
            ActiveSource, items=list(items),
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        return stage, sink

    def test_transforms(self, kernel):
        _, sink = self.build(kernel, ["a", "b"], upper_case())
        run_until_done(kernel, sink)
        assert sink.collected == ["A", "B"]

    def test_uses_only_writeonly_primitives(self, kernel):
        stage, sink = self.build(kernel, ["a"], identity())
        run_until_done(kernel, sink)
        assert stage.interface_primitives() <= {
            Primitive.PASSIVE_INPUT, Primitive.ACTIVE_OUTPUT
        }

    def test_fan_out(self, kernel):
        """§5: write-only has "arbitrary fan-out"."""
        sinks = [kernel.create(PassiveSink) for _ in range(3)]
        stage = kernel.create(
            WriteOnlyFilter, transducer=upper_case(),
            outputs=[StreamEndpoint(s.uid, None) for s in sinks],
        )
        kernel.create(
            ActiveSource, items=["x"], outputs=[StreamEndpoint(stage.uid, None)]
        )
        run_until_done(kernel, *sinks)
        for sink in sinks:
            assert sink.collected == ["X"]

    def test_multi_channel_outputs(self, kernel):
        out = kernel.create(PassiveSink)
        reports = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter,
            transducer=with_reports(identity(), "W", every=1),
            outputs={
                "Output": [StreamEndpoint(out.uid, None)],
                "Report": [StreamEndpoint(reports.uid, None)],
            },
        )
        kernel.create(
            ActiveSource, items=["a", "b"],
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        run_until_done(kernel, out, reports)
        assert out.collected == ["a", "b"]
        assert reports.collected[0] == "[W] starting"

    def test_unwired_channel_dropped_silently(self, kernel):
        out = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter,
            transducer=with_reports(identity(), "W"),
            outputs={"Output": [StreamEndpoint(out.uid, None)]},
        )
        kernel.create(
            ActiveSource, items=["a"], outputs=[StreamEndpoint(stage.uid, None)]
        )
        run_until_done(kernel, out)
        assert out.collected == ["a"]

    def test_expected_ends_fan_in(self, kernel):
        """Several writers, indistinguishable to the filter (§5)."""
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter, transducer=identity(),
            outputs=[StreamEndpoint(sink.uid, None)], expected_ends=2,
        )
        for items in ([1, 2], [3, 4]):
            kernel.create(
                ActiveSource, items=items,
                outputs=[StreamEndpoint(stage.uid, None)],
            )
        run_until_done(kernel, sink)
        assert sorted(sink.collected) == [1, 2, 3, 4]

    def test_inbox_capacity_backpressure(self, kernel):
        sink = kernel.create(PassiveSink, work_cost=5.0)  # slow consumer
        stage = kernel.create(
            WriteOnlyFilter, transducer=identity(),
            outputs=[StreamEndpoint(sink.uid, None)], inbox_capacity=2,
        )
        kernel.create(
            ActiveSource, items=list(range(10)),
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        run_until_done(kernel, sink)
        assert sink.collected == list(range(10))

    def test_non_transfer_payload_rejected(self, kernel):
        from repro.core.errors import StreamProtocolError

        stage = kernel.create(WriteOnlyFilter, transducer=identity())
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(stage.uid, "Write", "junk")


class TestSecondaryInputs:
    def test_stream_editor_reads_command_input(self, kernel):
        """§5: "a number of secondary inputs, which are actively read.
        These secondary inputs will typically be passive buffers"."""
        commands = kernel.create(PassiveBuffer, name="commands")
        kernel.call_sync(commands.uid, "Write", Transfer.of(["s/a/o/"]))
        kernel.call_sync(commands.uid, "Write", END_TRANSFER)

        sink = kernel.create(PassiveSink)
        editor = kernel.create(
            WriteOnlyFilter,
            transducer=StreamEditor(),
            outputs=[StreamEndpoint(sink.uid, None)],
            secondary_inputs={"commands": StreamEndpoint(commands.uid, None)},
        )
        kernel.create(
            ActiveSource, items=["cat", "bat"],
            outputs=[StreamEndpoint(editor.uid, None)],
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["cot", "bot"]
        assert Primitive.ACTIVE_INPUT in editor.interface_primitives()


class TestConventionalFilter:
    def test_pumps_between_passive_ends(self, kernel):
        source = kernel.create(ListSource, items=["a", "b"])
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            ConventionalFilter, transducer=upper_case(),
            inputs=[source.output_endpoint()],
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["A", "B"]
        assert stage.done
        # Both active primitives used: the filter is the pump (§3).
        assert stage.interface_primitives() == {
            Primitive.ACTIVE_INPUT, Primitive.ACTIVE_OUTPUT
        }

    def test_fan_in_and_fan_out(self, kernel):
        """Conventional transput allows both (§5)."""
        a = kernel.create(ListSource, items=[1])
        b = kernel.create(ListSource, items=[2])
        sinks = [kernel.create(PassiveSink) for _ in range(2)]
        kernel.create(
            ConventionalFilter, transducer=identity(),
            inputs=[a.output_endpoint(), b.output_endpoint()],
            outputs=[StreamEndpoint(s.uid, None) for s in sinks],
        )
        run_until_done(kernel, *sinks)
        for sink in sinks:
            assert sink.collected == [1, 2]

    def test_through_buffers(self, kernel):
        source = kernel.create(ListSource, items=list(range(5)))
        pipe_in = kernel.create(PassiveBuffer)
        pipe_out = kernel.create(PassiveBuffer)
        kernel.create(
            ConventionalFilter, transducer=upper_caseish(),
            inputs=[StreamEndpoint(pipe_in.uid, None)],
            outputs=[StreamEndpoint(pipe_out.uid, None)],
        )
        kernel.create(
            ConventionalFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
            outputs=[StreamEndpoint(pipe_in.uid, None)],
        )
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(pipe_out.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == [i * 2 for i in range(5)]

    def test_counters(self, kernel):
        source = kernel.create(ListSource, items=[1, 2, 3])
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            ConventionalFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        run_until_done(kernel, sink)
        assert stage.reads_issued == 4   # 3 data + END
        assert stage.writes_issued == 4

    def test_bad_strategy_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(
                ConventionalFilter, transducer=identity(),
                input_strategy="middle-out",
            )


def upper_caseish():
    from repro.transput.filterbase import make_transducer

    return make_transducer(lambda x: (x * 2,), name="x2")
