"""The four paper figures: parity, shape and cost relationships."""

import pytest

from repro.figures import (
    build_figure1,
    build_figure2,
    build_figure3,
    build_figure4,
    default_filters,
    default_input,
)
from repro.transput import Primitive, compose_apply


@pytest.fixture(scope="module")
def runs():
    """Run every figure once on the default input."""
    results = {}
    for build in (build_figure1, build_figure2, build_figure3, build_figure4):
        run = build()
        output = run.run()
        results[run.figure] = (run, output)
    return results


REFERENCE = compose_apply(default_filters(), default_input())


class TestOutputs:
    @pytest.mark.parametrize(
        "figure", ["figure1", "figure2", "figure3", "figure4"]
    )
    def test_every_figure_computes_the_same_output(self, runs, figure):
        _, output = runs[figure]
        assert output == REFERENCE

    def test_reference_is_nontrivial(self):
        assert len(REFERENCE) >= 4


class TestShapes:
    def test_figure1_has_two_pipes(self, runs):
        run, _ = runs["figure1"]
        names = [eject.name for eject in run.ejects]
        assert "p1" in names and "p2" in names
        assert run.eject_count() == 7  # source, 3 filters, 2 pipes, sink

    def test_figure2_has_no_pipes(self, runs):
        run, _ = runs["figure2"]
        assert run.eject_count() == 5  # n + 2

    def test_figure2_cheaper_than_figure1(self, runs):
        fig1, _ = runs["figure1"]
        fig2, _ = runs["figure2"]
        assert fig2.invocations_used() < fig1.invocations_used()

    def test_figure3_and_4_have_matching_boxes(self, runs):
        fig3, _ = runs["figure3"]
        fig4, _ = runs["figure4"]
        assert fig3.eject_count() == fig4.eject_count()


class TestPrimitiveDiscipline:
    def test_figure2_filters_are_read_only(self, runs):
        run, _ = runs["figure2"]
        for eject in run.ejects[1:-1]:
            assert eject.interface_primitives() <= {
                Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
            }

    def test_figure3_filters_are_write_only(self, runs):
        run, _ = runs["figure3"]
        for eject in run.ejects:
            if eject.name in ("source", "F1", "F2", "F3"):
                assert eject.interface_primitives() <= {
                    Primitive.PASSIVE_INPUT, Primitive.ACTIVE_OUTPUT
                }

    def test_figure1_filters_are_both_active(self, runs):
        run, _ = runs["figure1"]
        for eject in run.ejects:
            if eject.name in ("F1", "F2", "F3"):
                assert eject.interface_primitives() == {
                    Primitive.ACTIVE_INPUT, Primitive.ACTIVE_OUTPUT
                }


class TestReportStreams:
    def test_shared_window_carries_both_reporters(self, runs):
        for figure in ("figure3", "figure4"):
            run, _ = runs[figure]
            window_text = "\n".join(run.window_lines(0))
            assert "[source]" in window_text
            assert "[F1]" in window_text
            assert "[F3]" not in window_text

    def test_f3_window_only_carries_f3(self, runs):
        for figure in ("figure3", "figure4"):
            run, _ = runs[figure]
            window_text = "\n".join(run.window_lines(1))
            assert "[F3]" in window_text
            assert "[F1]" not in window_text

    def test_report_contents_match_across_disciplines(self, runs):
        """The same report lines flow in both disciplines; Figure 4's
        window additionally labels them with the origin it read from."""
        fig3, _ = runs["figure3"]
        fig4, _ = runs["figure4"]
        fig3_payloads = sorted(fig3.window_lines(0))
        fig4_payloads = sorted(
            line.split(": ", 1)[1] for line in fig4.window_lines(0)
        )
        assert fig3_payloads == fig4_payloads


class TestCapabilityVariant:
    def test_figure4_capability_mode_runs_identically(self):
        open_run = build_figure4()
        secure_run = build_figure4(channel_mode="capability")
        assert open_run.run() == secure_run.run()

    def test_run_twice_not_required(self):
        run = build_figure2()
        with pytest.raises(RuntimeError):
            run.invocations_used()
