"""The read-only filter: laziness, lookahead, fan-in, secondary outputs."""

import pytest

from repro.core.errors import NoSuchChannelError
from repro.transput import (
    CollectorSink,
    ListSource,
    PassiveSink,
    Primitive,
    ReadOnlyFilter,
    StreamEndpoint,
)
from repro.filters import (
    identity,
    sort_lines,
    upper_case,
    with_reports,
)
from repro.transput.filterbase import make_transducer
from tests.conftest import run_until_done


def build_chain(kernel, items, transducers, **filter_kwargs):
    source = kernel.create(ListSource, items=list(items))
    upstream = source.output_endpoint()
    filters = []
    for transducer in transducers:
        stage = kernel.create(
            ReadOnlyFilter, transducer=transducer, inputs=[upstream],
            **filter_kwargs,
        )
        filters.append(stage)
        upstream = stage.output_endpoint()
    sink = kernel.create(CollectorSink, inputs=[upstream])
    return source, filters, sink


class TestBasicOperation:
    def test_single_stage(self, kernel):
        _, _, sink = build_chain(kernel, ["a", "b"], [upper_case()])
        run_until_done(kernel, sink)
        assert sink.collected == ["A", "B"]

    def test_multi_stage(self, kernel):
        _, _, sink = build_chain(
            kernel, ["c", "a", "b"], [upper_case(), sort_lines()]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["A", "B", "C"]

    def test_one_to_many_transducer(self, kernel):
        doubler = make_transducer(lambda x: (x, x), name="double")
        _, _, sink = build_chain(kernel, [1, 2], [doubler])
        run_until_done(kernel, sink)
        assert sink.collected == [1, 1, 2, 2]

    def test_end_is_idempotent(self, kernel):
        source = kernel.create(ListSource, items=["x"])
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
        )
        kernel.call_sync(stage.uid, "Read", 1)
        assert kernel.call_sync(stage.uid, "Read", 1).at_end
        assert kernel.call_sync(stage.uid, "Read", 1).at_end

    def test_uses_only_readonly_primitives(self, kernel):
        """Paper §8: the read-only pipeline needs just two primitives."""
        source, filters, sink = build_chain(
            kernel, list("ab"), [identity(), identity()]
        )
        run_until_done(kernel, sink)
        for stage in filters:
            assert stage.interface_primitives() <= {
                Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
            }
        assert source.interface_primitives() == {Primitive.PASSIVE_OUTPUT}
        assert sink.interface_primitives() == {Primitive.ACTIVE_INPUT}


class TestLaziness:
    def test_no_pulls_before_demand(self, kernel):
        """Paper §4: "No data flows until a sink is connected"."""
        source = kernel.create(ListSource, items=[1, 2, 3])
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
        )
        kernel.run()  # quiesce with no sink attached
        assert stage.pulls_issued == 0
        assert source.reads_served == 0

    def test_demand_pulls_exactly_enough(self, kernel):
        source = kernel.create(ListSource, items=[1, 2, 3])
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
        )
        kernel.call_sync(stage.uid, "Read", 1)
        assert stage.pulls_issued == 1  # not 3

    def test_head_via_laziness_avoids_work(self, kernel):
        """Reading only k records computes only k — laziness subsumes
        early exit."""
        source = kernel.create(ListSource, items=list(range(1000)))
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()],
        )
        sink = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint()], max_items=5
        )
        run_until_done(kernel, sink)
        assert sink.collected == [0, 1, 2, 3, 4]
        assert stage.pulls_issued <= 6


class TestLookahead:
    def test_same_output_as_lazy(self, kernel):
        _, _, sink = build_chain(
            kernel, list(range(20)), [upper_caseish()], lookahead=4
        )
        run_until_done(kernel, sink)
        assert sink.collected == [i * 10 for i in range(20)]

    def test_prefetches_without_demand(self, kernel):
        source = kernel.create(ListSource, items=list(range(50)))
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()], lookahead=8,
        )
        kernel.run()  # no sink: the prefetcher still buffers ahead
        assert 8 <= stage.pulls_issued <= 10
        assert sum(len(b) for b in stage.buffers.values()) >= 8

    def test_lookahead_bounded(self, kernel):
        source = kernel.create(ListSource, items=list(range(100)))
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()], lookahead=5,
        )
        kernel.run()
        assert sum(len(b) for b in stage.buffers.values()) <= 6

    def test_multichannel_lookahead(self, kernel):
        """Demand-driven prefetch: a parked Report reader keeps the
        prefetcher pulling even when Output already meets the lookahead
        target."""
        source = kernel.create(
            ListSource, items=[f"i{n}" for n in range(20)]
        )
        stage = kernel.create(
            ReadOnlyFilter,
            transducer=with_reports(identity(), "F", every=4),
            inputs=[source.output_endpoint()],
            lookahead=4,
        )
        out = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint("Output")]
        )
        reports = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint("Report")]
        )
        run_until_done(kernel, out, reports)
        assert out.collected == [f"i{n}" for n in range(20)]
        assert reports.collected[0] == "[F] starting"
        assert reports.collected[-1].startswith("[F] done")

    def test_multichannel_lookahead_report_only_reader(self, kernel):
        """Reading only the Report channel must not deadlock even though
        the Output buffer grows past the lookahead bound."""
        source = kernel.create(
            ListSource, items=[f"i{n}" for n in range(10)]
        )
        stage = kernel.create(
            ReadOnlyFilter,
            transducer=with_reports(identity(), "F", every=3),
            inputs=[source.output_endpoint()],
            lookahead=2,
        )
        reports = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint("Report")]
        )
        run_until_done(kernel, reports)
        assert reports.collected[-1].startswith("[F] done")
        assert len(stage.buffers["Output"]) == 10  # parked, undemanded


def upper_caseish():
    return make_transducer(lambda x: (x * 10,), name="x10")


class TestFanIn:
    def test_concat_inputs(self, kernel):
        a = kernel.create(ListSource, items=[1, 2])
        b = kernel.create(ListSource, items=[3, 4])
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[a.output_endpoint(), b.output_endpoint()],
        )
        sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        run_until_done(kernel, sink)
        assert sink.collected == [1, 2, 3, 4]

    def test_round_robin_inputs(self, kernel):
        a = kernel.create(ListSource, items=[1, 2, 3])
        b = kernel.create(ListSource, items=[10, 20])
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[a.output_endpoint(), b.output_endpoint()],
            input_strategy="round_robin",
        )
        sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        run_until_done(kernel, sink)
        assert sorted(sink.collected) == [1, 2, 3, 10, 20]

    def test_many_inputs(self, kernel):
        """§5: "If F needs n inputs, it maintains n UIDs"."""
        sources = [
            kernel.create(ListSource, items=[f"s{i}"]) for i in range(6)
        ]
        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[s.output_endpoint() for s in sources],
        )
        sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        run_until_done(kernel, sink)
        assert sink.collected == [f"s{i}" for i in range(6)]

    def test_no_inputs_ends_immediately(self, kernel):
        stage = kernel.create(ReadOnlyFilter, transducer=identity())
        assert kernel.call_sync(stage.uid, "Read", 1).at_end


class TestSecondaryOutputs:
    def test_reports_volunteered_by_write(self, kernel):
        """The §5 'unsatisfactory' variant: reports pushed actively."""
        source = kernel.create(ListSource, items=["a", "b", "c", "d"])
        report_buffer = kernel.create(PassiveSink)
        stage = kernel.create(
            ReadOnlyFilter,
            transducer=with_reports(identity(), "F", every=2),
            inputs=[source.output_endpoint()],
            secondary_outputs={
                "Report": [StreamEndpoint(report_buffer.uid, None)]
            },
        )
        sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        run_until_done(kernel, sink, report_buffer)
        assert sink.collected == ["a", "b", "c", "d"]
        assert any("done" in line for line in report_buffer.collected)
        # The filter is no longer purely read-only: it used active output.
        assert Primitive.ACTIVE_OUTPUT in stage.interface_primitives()

    def test_secondary_channel_not_readable(self, kernel):
        source = kernel.create(ListSource, items=["a"])
        report_buffer = kernel.create(PassiveSink)
        stage = kernel.create(
            ReadOnlyFilter,
            transducer=with_reports(identity(), "F"),
            inputs=[source.output_endpoint()],
            secondary_outputs={
                "Report": [StreamEndpoint(report_buffer.uid, None)]
            },
        )
        with pytest.raises(NoSuchChannelError):
            kernel.call_sync(stage.uid, "Read", 1, channel="Report")

    def test_all_channels_secondary_rejected(self, kernel):
        source = kernel.create(ListSource, items=[])
        sink = kernel.create(PassiveSink)
        with pytest.raises(ValueError, match="readable"):
            kernel.create(
                ReadOnlyFilter,
                transducer=identity(),
                inputs=[source.output_endpoint()],
                secondary_outputs={
                    "Output": [StreamEndpoint(sink.uid, None)]
                },
            )


class TestValidation:
    def test_bad_strategy(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(
                ReadOnlyFilter, transducer=identity(), input_strategy="random"
            )

    def test_work_cost_charged(self, kernel):
        expensive = identity()
        expensive.cost_per_item = 5.0
        source = kernel.create(ListSource, items=[1, 2])
        stage = kernel.create(
            ReadOnlyFilter, transducer=expensive,
            inputs=[source.output_endpoint()],
        )
        sink = kernel.create(CollectorSink, inputs=[stage.output_endpoint()])
        run_until_done(kernel, sink)
        assert kernel.clock.now >= 10.0
