"""TaggedMerger: fan-in that keeps stream identity (read-only only)."""

import pytest

from repro.transput import CollectorSink, ListSource, Primitive, TaggedMerger
from tests.conftest import run_until_done


def build(kernel, streams, **kwargs):
    sources = {
        label: kernel.create(ListSource, items=list(items))
        for label, items in streams.items()
    }
    merger = kernel.create(
        TaggedMerger,
        inputs=[(label, source.output_endpoint())
                for label, source in sources.items()],
        **kwargs,
    )
    sink = kernel.create(CollectorSink, inputs=[merger.output_endpoint()])
    run_until_done(kernel, sink)
    return merger, sink.collected


class TestTaggedMerger:
    def test_round_robin_interleaves_with_labels(self, kernel):
        _, out = build(kernel, {"A": ["a1", "a2", "a3"], "B": ["b1"]})
        assert out == [("A", "a1"), ("B", "b1"), ("A", "a2"), ("A", "a3")]

    def test_concat_drains_in_order(self, kernel):
        _, out = build(
            kernel, {"A": ["a1", "a2"], "B": ["b1"]}, strategy="concat"
        )
        assert out == [("A", "a1"), ("A", "a2"), ("B", "b1")]

    def test_identity_preserved_unlike_writeonly_fan_in(self, kernel):
        """The §5 contrast: the read-only consumer can always tell its
        inputs apart because it holds their UIDs."""
        _, out = build(kernel, {"A": ["x"], "B": ["x"], "C": ["x"]})
        assert sorted(label for label, _ in out) == ["A", "B", "C"]

    def test_stays_purely_read_only(self, kernel):
        merger, _ = build(kernel, {"A": ["a"], "B": ["b"]})
        assert merger.interface_primitives() <= {
            Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
        }

    def test_no_inputs_ends(self, kernel):
        merger = kernel.create(TaggedMerger)
        assert kernel.call_sync(merger.uid, "Read", 1).at_end

    def test_connect_labelled(self, kernel):
        source = kernel.create(ListSource, items=["late"])
        merger = kernel.create(TaggedMerger)
        merger.connect_labelled("L", source.output_endpoint())
        sink = kernel.create(CollectorSink, inputs=[merger.output_endpoint()])
        run_until_done(kernel, sink)
        assert sink.collected == [("L", "late")]

    def test_batching(self, kernel):
        _, out = build(
            kernel, {"A": list(range(6)), "B": list(range(10, 13))},
            batch_in=2,
        )
        assert [pair for pair in out if pair[0] == "A"] == [
            ("A", value) for value in range(6)
        ]
        assert [pair for pair in out if pair[0] == "B"] == [
            ("B", value) for value in range(10, 13)
        ]

    def test_bad_strategy(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(TaggedMerger, strategy="psychic")
