"""The OutputBatcher: chunking, remainders, fan-out, unwired channels."""

from repro.transput import (
    ActiveSource,
    PassiveSink,
    StreamEndpoint,
    WriteOnlyFilter,
)
from repro.transput.batching import OutputBatcher
from repro.transput.filterbase import make_transducer
from tests.conftest import run_until_done


def exploding(n):
    """A transducer emitting n outputs per input."""
    return make_transducer(lambda x: (x,) * n, name=f"explode({n})")


class TestChunking:
    def test_full_chunks_flush_incrementally(self, kernel):
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter, transducer=exploding(3),
            outputs=[StreamEndpoint(sink.uid, None)], batch_out=4,
        )
        kernel.create(
            ActiveSource, items=list(range(4)),
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        run_until_done(kernel, sink)
        # 12 outputs in chunks of 4 + END = 4 writes downstream.
        assert stage.writes_issued == 4
        assert sink.collected == [i for i in range(4) for _ in range(3)]

    def test_remainder_flushes_at_finish(self, kernel):
        sink = kernel.create(PassiveSink)
        stage = kernel.create(
            WriteOnlyFilter, transducer=exploding(1),
            outputs=[StreamEndpoint(sink.uid, None)], batch_out=4,
        )
        kernel.create(
            ActiveSource, items=list(range(6)),
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        run_until_done(kernel, sink)
        # 6 outputs: one chunk of 4, one remainder of 2, one END.
        assert stage.writes_issued == 3
        assert sink.collected == list(range(6))

    def test_fan_out_counts_per_endpoint(self, kernel):
        sinks = [kernel.create(PassiveSink) for _ in range(3)]
        stage = kernel.create(
            WriteOnlyFilter, transducer=exploding(1),
            outputs=[StreamEndpoint(s.uid, None) for s in sinks],
        )
        kernel.create(
            ActiveSource, items=["x"], outputs=[StreamEndpoint(stage.uid, None)]
        )
        run_until_done(kernel, *sinks)
        assert stage.writes_issued == 6  # (1 data + 1 END) x 3 endpoints

    def test_unwired_channel_dropped(self, kernel):
        sink = kernel.create(PassiveSink)
        batcher_holder = kernel.create(
            WriteOnlyFilter,
            transducer=make_transducer(lambda x: (x,), name="id"),
            outputs={"Output": [StreamEndpoint(sink.uid, None)]},
        )
        batcher = OutputBatcher(
            batcher_holder, {"Output": []}, batch=1
        )
        # Emitting on a channel with no endpoints (or an undeclared
        # one) silently drops — verified by exhausting the generators.
        list(batcher.emit({"Output": ["a"], "Ghost": ["b"]}))
        assert batcher.writes_issued == 0

    def test_finish_is_idempotent(self, kernel):
        sink = kernel.create(PassiveSink)
        host = kernel.create(
            WriteOnlyFilter,
            transducer=make_transducer(lambda x: (x,), name="id"),
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        batcher = OutputBatcher(host, {"Output": []}, batch=1)
        list(batcher.finish())
        list(batcher.finish())  # no error, no double END
        assert batcher.finished
