"""Sources and sinks in both roles."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.transput import (
    ActiveSource,
    CollectorSink,
    FunctionSource,
    ListSource,
    NullSink,
    PassiveSink,
    StreamEndpoint,
    Transfer,
)
from tests.conftest import run_until_done


class TestListSource:
    def test_serves_reads_then_end(self, kernel):
        source = kernel.create(ListSource, items=["a", "b"])
        assert kernel.call_sync(source.uid, "Read", 1).items == ("a",)
        assert kernel.call_sync(source.uid, "Read", 1).items == ("b",)
        assert kernel.call_sync(source.uid, "Read", 1).at_end
        # END is idempotent.
        assert kernel.call_sync(source.uid, "Read", 1).at_end

    def test_batch_read(self, kernel):
        source = kernel.create(ListSource, items=list(range(5)))
        assert kernel.call_sync(source.uid, "Read", 3).items == (0, 1, 2)
        assert kernel.call_sync(source.uid, "Read", 3).items == (3, 4)

    def test_transfer_synonym(self, kernel):
        source = kernel.create(ListSource, items=["x"])
        assert kernel.call_sync(source.uid, "Transfer", 1).items == ("x",)

    def test_missing_batch_defaults_to_one(self, kernel):
        source = kernel.create(ListSource, items=["x", "y"])
        assert kernel.call_sync(source.uid, "Read").items == ("x",)

    def test_work_cost_charges_time(self, kernel):
        source = kernel.create(ListSource, items=["x"], work_cost=7.0)
        kernel.call_sync(source.uid, "Read", 1)
        assert kernel.clock.now >= 7.0

    def test_checkpoint_restores_position(self, kernel):
        source = kernel.create(ListSource, items=["a", "b", "c"])
        kernel.call_sync(source.uid, "Read", 1)

        # Checkpoint mid-stream, crash, then continue where we left off.
        class _Saver:
            pass

        def save():
            yield source.checkpoint()

        process = kernel.scheduler.spawn(save(), name="saver", owner=source)
        kernel.run(until=lambda: not process.alive)
        kernel.crash_eject(source.uid)
        assert kernel.call_sync(source.uid, "Read", 1).items == ("b",)

    def test_reads_served_counter(self, kernel):
        source = kernel.create(ListSource, items=["a"])
        kernel.call_sync(source.uid, "Read", 1)
        kernel.call_sync(source.uid, "Read", 1)
        assert source.reads_served == 2


class TestFunctionSource:
    def test_producer_called_lazily(self, kernel):
        calls = []

        def producer():
            calls.append(1)
            return (i * i for i in range(3))

        source = kernel.create(FunctionSource, producer=producer)
        assert calls == []  # nothing until the first Read
        assert kernel.call_sync(source.uid, "Read", 3).items == (0, 1, 4)
        assert calls == [1]

    def test_empty_producer(self, kernel):
        source = kernel.create(FunctionSource, producer=None)
        assert kernel.call_sync(source.uid, "Read", 1).at_end


class TestActiveSource:
    def test_pushes_to_sink(self, kernel):
        sink = kernel.create(PassiveSink)
        source = kernel.create(
            ActiveSource, items=[1, 2, 3],
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        run_until_done(kernel, sink)
        assert sink.collected == [1, 2, 3]
        assert source.done
        assert source.writes_issued == 4

    def test_fan_out_duplicates(self, kernel):
        sinks = [kernel.create(PassiveSink) for _ in range(3)]
        kernel.create(
            ActiveSource, items=["x", "y"],
            outputs=[StreamEndpoint(s.uid, None) for s in sinks],
        )
        run_until_done(kernel, *sinks)
        for sink in sinks:
            assert sink.collected == ["x", "y"]

    def test_no_outputs_is_inert(self, kernel):
        source = kernel.create(ActiveSource, items=[1, 2])
        kernel.run()
        assert not source.done
        assert source.writes_issued == 0

    def test_batching(self, kernel):
        sink = kernel.create(PassiveSink)
        source = kernel.create(
            ActiveSource, items=list(range(10)), batch=4,
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        run_until_done(kernel, sink)
        assert source.writes_issued == 4  # 3 data + END
        assert sink.collected == list(range(10))


class TestActiveSink:
    def test_collects_everything(self, kernel):
        source = kernel.create(ListSource, items=list("abc"))
        sink = kernel.create(CollectorSink, inputs=[source.output_endpoint()])
        run_until_done(kernel, sink)
        assert sink.collected == ["a", "b", "c"]
        assert sink.reads_issued == 4

    def test_null_sink_discards(self, kernel):
        source = kernel.create(ListSource, items=list(range(7)))
        sink = kernel.create(NullSink, inputs=[source.output_endpoint()])
        run_until_done(kernel, sink)
        assert sink.collected == []
        assert sink.discarded == 7

    def test_max_items_bounds_the_pump(self, kernel):
        source = kernel.create(ListSource, items=list(range(100)))
        sink = kernel.create(
            CollectorSink, inputs=[source.output_endpoint()], max_items=5
        )
        run_until_done(kernel, sink)
        assert sink.collected == [0, 1, 2, 3, 4]

    def test_concat_strategy_multiple_inputs(self, kernel):
        a = kernel.create(ListSource, items=[1, 2])
        b = kernel.create(ListSource, items=[3, 4])
        sink = kernel.create(
            CollectorSink,
            inputs=[a.output_endpoint(), b.output_endpoint()],
            strategy="concat",
        )
        run_until_done(kernel, sink)
        assert sink.collected == [1, 2, 3, 4]

    def test_round_robin_strategy_interleaves(self, kernel):
        a = kernel.create(ListSource, items=[1, 2, 3])
        b = kernel.create(ListSource, items=[10, 20])
        sink = kernel.create(
            CollectorSink,
            inputs=[a.output_endpoint(), b.output_endpoint()],
            strategy="round_robin",
        )
        run_until_done(kernel, sink)
        assert sink.collected == [1, 10, 2, 20, 3]

    def test_no_inputs_is_immediately_done(self, kernel):
        sink = kernel.create(CollectorSink)
        kernel.run()
        assert sink.done

    def test_invalid_strategy_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(CollectorSink, strategy="zigzag")


class TestPassiveSink:
    def test_accepts_writes(self, kernel):
        sink = kernel.create(PassiveSink)
        kernel.call_sync(sink.uid, "Write", Transfer.of([1, 2]))
        kernel.call_sync(sink.uid, "Write", Transfer.of([3]))
        from repro.transput.stream import END_TRANSFER

        kernel.call_sync(sink.uid, "Write", END_TRANSFER)
        assert sink.collected == [1, 2, 3]
        assert sink.done

    def test_expected_ends_fan_in(self, kernel):
        from repro.transput.stream import END_TRANSFER

        sink = kernel.create(PassiveSink, expected_ends=2)
        kernel.call_sync(sink.uid, "Write", END_TRANSFER)
        assert not sink.done
        kernel.call_sync(sink.uid, "Write", END_TRANSFER)
        assert sink.done

    def test_write_after_end_rejected(self, kernel):
        from repro.transput.stream import END_TRANSFER

        sink = kernel.create(PassiveSink)
        kernel.call_sync(sink.uid, "Write", END_TRANSFER)
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(sink.uid, "Write", Transfer.single("late"))

    def test_non_transfer_payload_rejected(self, kernel):
        sink = kernel.create(PassiveSink)
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(sink.uid, "Write", "not a transfer")
