"""The Sequence protocol records: Transfer, WriteAck, endpoints."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.core.uid import UIDFactory
from repro.transput.stream import (
    END_TRANSFER,
    StreamAssembler,
    StreamEndpoint,
    StreamStatus,
    Transfer,
)


class TestTransfer:
    def test_of_builds_data(self):
        transfer = Transfer.of(["a", "b"])
        assert transfer.status is StreamStatus.DATA
        assert transfer.items == ("a", "b")
        assert not transfer.at_end

    def test_single(self):
        assert Transfer.single("x").items == ("x",)

    def test_empty_data_rejected(self):
        with pytest.raises(StreamProtocolError):
            Transfer.of([])

    def test_end_carries_nothing(self):
        assert END_TRANSFER.at_end
        assert END_TRANSFER.items == ()

    def test_end_with_items_rejected(self):
        with pytest.raises(StreamProtocolError):
            Transfer(status=StreamStatus.END, items=("x",))

    def test_frozen(self):
        transfer = Transfer.single("x")
        with pytest.raises(Exception):
            transfer.items = ()  # type: ignore[misc]


class TestEndpoint:
    def test_str_without_channel(self):
        uid = UIDFactory().issue()
        assert str(StreamEndpoint(uid)) == str(uid)

    def test_str_with_channel(self):
        uid = UIDFactory().issue()
        assert "[Report]" in str(StreamEndpoint(uid, "Report"))

    def test_equality(self):
        uid = UIDFactory().issue()
        assert StreamEndpoint(uid, "a") == StreamEndpoint(uid, "a")
        assert StreamEndpoint(uid, "a") != StreamEndpoint(uid, "b")


class TestAssembler:
    def test_accumulates_until_end(self):
        assembler = StreamAssembler()
        assert not assembler.accept(Transfer.of([1, 2]))
        assert not assembler.accept(Transfer.of([3]))
        assert assembler.accept(END_TRANSFER)
        assert assembler.items == [1, 2, 3]
        assert assembler.transfers == 3

    def test_rejects_data_after_end(self):
        assembler = StreamAssembler()
        assembler.accept(END_TRANSFER)
        with pytest.raises(StreamProtocolError):
            assembler.accept(Transfer.single("late"))
