"""The four primitives: correspondence, accounting, helper routines."""

from repro.core import Receive
from repro.transput import (
    ListSource,
    PassiveSink,
    Primitive,
    StreamEndpoint,
    Transfer,
    TransputEject,
    active_input,
    active_output,
    passive_input,
    passive_output,
    read_stream,
    write_stream,
)


class TestCorrespondence:
    def test_pairs(self):
        assert Primitive.ACTIVE_INPUT.corresponding is Primitive.PASSIVE_OUTPUT
        assert Primitive.PASSIVE_OUTPUT.corresponding is Primitive.ACTIVE_INPUT
        assert Primitive.ACTIVE_OUTPUT.corresponding is Primitive.PASSIVE_INPUT
        assert Primitive.PASSIVE_INPUT.corresponding is Primitive.ACTIVE_OUTPUT

    def test_correspondence_is_involutive(self):
        for primitive in Primitive:
            assert primitive.corresponding.corresponding is primitive

    def test_active_flags(self):
        assert Primitive.ACTIVE_INPUT.active
        assert Primitive.ACTIVE_OUTPUT.active
        assert not Primitive.PASSIVE_INPUT.active
        assert not Primitive.PASSIVE_OUTPUT.active

    def test_every_pair_couples_active_with_passive(self):
        for primitive in Primitive:
            assert primitive.active != primitive.corresponding.active


class Reader(TransputEject):
    eden_type = "TestReader"

    def __init__(self, kernel, uid, source=None, name=None, batch=1):
        super().__init__(kernel, uid, name=name)
        self.source = source
        self.batch = batch
        self.got = None
        self.done = False

    def main(self):
        self.got = yield from read_stream(
            self, StreamEndpoint(self.source, None), self.batch
        )
        self.done = True


class Writer(TransputEject):
    eden_type = "TestWriter"

    def __init__(self, kernel, uid, target=None, items=(), name=None, batch=1):
        super().__init__(kernel, uid, name=name)
        self.target = target
        self.items = list(items)
        self.batch = batch
        self.writes = None
        self.done = False

    def main(self):
        self.writes = yield from write_stream(
            self, StreamEndpoint(self.target, None), self.items, self.batch
        )
        self.done = True


class TestReadPair:
    def test_read_stream_drains_source(self, kernel):
        source = kernel.create(ListSource, items=[1, 2, 3])
        reader = kernel.create(Reader, source=source.uid)
        kernel.run()
        assert reader.got == [1, 2, 3]

    def test_primitive_accounting(self, kernel):
        source = kernel.create(ListSource, items=[1, 2, 3])
        reader = kernel.create(Reader, source=source.uid)
        kernel.run()
        # 3 data reads + 1 END read.
        assert reader.primitive_use[Primitive.ACTIVE_INPUT] == 4
        assert source.primitive_use[Primitive.PASSIVE_OUTPUT] == 4
        assert kernel.stats.get("prim_active_input") == 4
        assert kernel.stats.get("prim_passive_output") == 4

    def test_batching_reduces_interactions(self, kernel):
        source = kernel.create(ListSource, items=list(range(10)))
        reader = kernel.create(Reader, source=source.uid, batch=5)
        kernel.run()
        assert reader.got == list(range(10))
        assert reader.primitive_use[Primitive.ACTIVE_INPUT] == 3  # 2 data + END

    def test_interface_primitives_sets(self, kernel):
        source = kernel.create(ListSource, items=[1])
        reader = kernel.create(Reader, source=source.uid)
        kernel.run()
        assert reader.interface_primitives() == {Primitive.ACTIVE_INPUT}
        assert source.interface_primitives() == {Primitive.PASSIVE_OUTPUT}


class TestWritePair:
    def test_write_stream_fills_sink(self, kernel):
        sink = kernel.create(PassiveSink)
        writer = kernel.create(Writer, target=sink.uid, items=["a", "b"])
        kernel.run()
        assert sink.collected == ["a", "b"]
        assert sink.done
        assert writer.writes == 3  # 2 data + 1 END

    def test_primitive_accounting(self, kernel):
        sink = kernel.create(PassiveSink)
        writer = kernel.create(Writer, target=sink.uid, items=["a", "b"])
        kernel.run()
        assert writer.primitive_use[Primitive.ACTIVE_OUTPUT] == 3
        assert sink.primitive_use[Primitive.PASSIVE_INPUT] == 3

    def test_write_batching(self, kernel):
        sink = kernel.create(PassiveSink)
        writer = kernel.create(Writer, target=sink.uid,
                               items=list(range(10)), batch=4)
        kernel.run()
        assert sink.collected == list(range(10))
        assert writer.writes == 4  # ceil(10/4)=3 data + 1 END


class TestLowLevelPrimitives:
    def test_passive_input_returns_transfer_and_acks(self, kernel):
        class Acceptor(TransputEject):
            eden_type = "Acceptor"

            def __init__(self, kernel, uid, name=None):
                super().__init__(kernel, uid, name=name)
                self.seen = []

            def main(self):
                invocation = yield Receive(operations={"Write"})
                transfer = yield from passive_input(self, invocation)
                self.seen.append(transfer.items)

        acceptor = kernel.create(Acceptor)
        ack = kernel.call_sync(acceptor.uid, "Write", Transfer.of([1, 2]))
        assert ack.accepted == 2
        assert acceptor.seen == [(1, 2)]

    def test_passive_output_answers_a_read(self, kernel):
        class Producer(TransputEject):
            eden_type = "Producer"

            def main(self):
                invocation = yield Receive(operations={"Read"})
                yield from passive_output(self, invocation, Transfer.single(7))

        producer = kernel.create(Producer)
        transfer = kernel.call_sync(producer.uid, "Read", 1)
        assert transfer.items == (7,)

    def test_active_pair_between_two_ejects(self, kernel):
        results = {}

        class Passive(TransputEject):
            eden_type = "PassiveBoth"

            def main(self):
                invocation = yield Receive(operations={"Write"})
                transfer = yield from passive_input(self, invocation)
                results["got"] = transfer.items
                invocation = yield Receive(operations={"Read"})
                yield from passive_output(
                    self, invocation, Transfer.of(list(transfer.items))
                )

        class Active(TransputEject):
            eden_type = "ActiveBoth"

            def main(self):
                endpoint = StreamEndpoint(passive.uid, None)
                yield from active_output(self, endpoint, Transfer.of(["ping"]))
                transfer = yield from active_input(self, endpoint)
                results["back"] = transfer.items

        passive = kernel.create(Passive)
        kernel.create(Active)
        kernel.run()
        assert results == {"got": ("ping",), "back": ("ping",)}
