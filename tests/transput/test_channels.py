"""Channel identifiers: names, positions and capabilities (paper §5)."""

import pytest

from repro.core import Kernel
from repro.core.errors import ChannelSecurityError, NoSuchChannelError
from repro.transput import (
    ChannelTable,
    CollectorSink,
    ListSource,
    ReadOnlyFilter,
)
from repro.filters import with_reports, identity
from tests.conftest import run_until_done


@pytest.fixture
def reporter(kernel):
    """A read-only filter with Output and Report channels (open mode)."""
    source = kernel.create(ListSource, items=[f"item-{i}" for i in range(4)])
    return kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=2),
        inputs=[source.output_endpoint()],
    )


@pytest.fixture
def secure_reporter(kernel):
    """The same filter in capability mode."""
    source = kernel.create(ListSource, items=[f"item-{i}" for i in range(4)])
    return kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=2),
        inputs=[source.output_endpoint()],
        channel_mode="capability",
    )


class TestChannelTable:
    def make(self, kernel, mode="open"):
        owner = kernel.create(ListSource, items=[])
        return ChannelTable(owner, ["Output", "Report"], mode=mode), owner

    def test_default_is_first(self, kernel):
        table, _ = self.make(kernel)
        assert table.default == "Output"
        assert table.resolve(None) == "Output"

    def test_name_resolution(self, kernel):
        table, _ = self.make(kernel)
        assert table.resolve("Report") == "Report"

    def test_integer_resolution(self, kernel):
        table, _ = self.make(kernel)
        assert table.resolve(0) == "Output"
        assert table.resolve(1) == "Report"

    def test_unknown_name_rejected(self, kernel):
        table, _ = self.make(kernel)
        with pytest.raises(NoSuchChannelError):
            table.resolve("Errors")

    def test_out_of_range_integer_rejected(self, kernel):
        table, _ = self.make(kernel)
        with pytest.raises(NoSuchChannelError):
            table.resolve(2)

    def test_capability_accepted_in_open_mode(self, kernel):
        table, owner = self.make(kernel)
        assert table.resolve(table.capability("Report")) == "Report"

    def test_capability_mode_rejects_plain_ids(self, kernel):
        table, _ = self.make(kernel, mode="capability")
        with pytest.raises(ChannelSecurityError):
            table.resolve("Report")
        with pytest.raises(ChannelSecurityError):
            table.resolve(0)
        with pytest.raises(ChannelSecurityError):
            table.resolve(None)

    def test_advertise(self, kernel):
        open_table, _ = self.make(kernel)
        assert open_table.advertise() == {"Output": "Output", "Report": "Report"}
        cap_table, _ = self.make(kernel, mode="capability")
        advertised = cap_table.advertise()
        assert set(advertised) == {"Output", "Report"}
        assert all(hasattr(cap, "secret") for cap in advertised.values())

    def test_capability_for_unknown_channel_rejected(self, kernel):
        table, _ = self.make(kernel)
        with pytest.raises(NoSuchChannelError):
            table.capability("Nope")

    def test_bad_mode_rejected(self, kernel):
        owner = kernel.create(ListSource, items=[])
        with pytest.raises(ValueError):
            ChannelTable(owner, ["Output"], mode="paranoid")

    def test_empty_names_rejected(self, kernel):
        owner = kernel.create(ListSource, items=[])
        with pytest.raises(ValueError):
            ChannelTable(owner, [])


class TestChannelQualifiedReads:
    def test_read_by_name(self, kernel, reporter):
        transfer = kernel.call_sync(reporter.uid, "Read", 1, channel="Report")
        assert "[F] starting" in transfer.items[0]

    def test_read_by_integer(self, kernel, reporter):
        transfer = kernel.call_sync(reporter.uid, "Read", 1, channel=1)
        assert "[F]" in transfer.items[0]

    def test_unqualified_read_is_primary(self, kernel, reporter):
        transfer = kernel.call_sync(reporter.uid, "Read", 1)
        assert transfer.items == ("item-0",)

    def test_unknown_channel_errors(self, kernel, reporter):
        with pytest.raises(NoSuchChannelError):
            kernel.call_sync(reporter.uid, "Read", 1, channel="Bogus")

    def test_channels_are_independent_streams(self, kernel, reporter):
        out = kernel.create(
            CollectorSink, inputs=[reporter.output_endpoint("Output")]
        )
        rep = kernel.create(
            CollectorSink, inputs=[reporter.output_endpoint("Report")]
        )
        run_until_done(kernel, out, rep)
        assert out.collected == [f"item-{i}" for i in range(4)]
        assert rep.collected[0] == "[F] starting"
        assert rep.collected[-1].startswith("[F] done")


class TestCapabilitySecurity:
    def test_holder_of_capability_may_read(self, kernel, secure_reporter):
        endpoint = secure_reporter.output_endpoint("Report")
        transfer = kernel.call_sync(
            secure_reporter.uid, "Read", 1, channel=endpoint.channel
        )
        assert "[F]" in transfer.items[0]

    def test_name_read_rejected(self, kernel, secure_reporter):
        """Told to read channel Output, nothing lets you read Report by
        name — the §5 dishonest-programmer scenario."""
        with pytest.raises(ChannelSecurityError):
            kernel.call_sync(secure_reporter.uid, "Read", 1, channel="Report")

    def test_unqualified_read_rejected(self, kernel, secure_reporter):
        with pytest.raises(ChannelSecurityError):
            kernel.call_sync(secure_reporter.uid, "Read", 1)

    def test_foreign_capability_rejected(self, kernel, secure_reporter):
        other_kernel_filter_cap = Kernel(seed=99)
        src = other_kernel_filter_cap.create(ListSource, items=[])
        foreign = src.mint_channel("Report")
        with pytest.raises(ChannelSecurityError):
            kernel.call_sync(
                secure_reporter.uid, "Read", 1, channel=foreign
            )

    def test_forged_secret_rejected(self, kernel, secure_reporter):
        from repro.core.capability import ChannelCapability

        genuine = secure_reporter.output_endpoint("Report").channel
        forged = ChannelCapability(
            owner=genuine.owner, name=genuine.name,
            secret=genuine.secret ^ 0xDEADBEEF,
        )
        with pytest.raises(ChannelSecurityError):
            kernel.call_sync(secure_reporter.uid, "Read", 1, channel=forged)

    def test_end_to_end_with_capabilities(self, kernel, secure_reporter):
        sink = kernel.create(
            CollectorSink, inputs=[secure_reporter.output_endpoint("Output")]
        )
        run_until_done(kernel, sink)
        assert sink.collected == [f"item-{i}" for i in range(4)]
