"""Pipeline builders: equivalence across disciplines and exact costs."""

import pytest

from repro.core import Kernel, TransportCosts
from repro.transput import (
    FlowPolicy,
    compose_conventional_pipeline,
    compose_segment,
    compose_readonly_pipeline,
    compose_writeonly_pipeline,
    compose_apply,
)
from repro.filters import (
    comment_stripper,
    sort_lines,
    upper_case,
    word_count,
)

ITEMS = [
    "C header", "  alpha  ", "beta", "C note", "gamma", "delta", "C end",
]


def fresh_transducers():
    return [comment_stripper("C"), upper_case(), sort_lines()]


class TestEquivalence:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_matches_functional_reference(self, discipline):
        kernel = Kernel()
        pipeline = compose_segment(kernel, discipline, ITEMS, fresh_transducers())
        output = pipeline.run_to_completion()
        assert output == compose_apply(fresh_transducers(), ITEMS)

    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_stateful_finish_only_filter(self, discipline):
        kernel = Kernel()
        pipeline = compose_segment(kernel, discipline, ITEMS, [word_count()])
        output = pipeline.run_to_completion()
        assert len(output) == 1
        assert output[0].lines == len(ITEMS)

    def test_empty_input(self):
        for discipline in ("readonly", "writeonly", "conventional"):
            kernel = Kernel()
            pipeline = compose_segment(kernel, discipline, [], [upper_case()])
            assert pipeline.run_to_completion() == []

    def test_zero_filters(self):
        for discipline in ("readonly", "writeonly", "conventional"):
            kernel = Kernel()
            pipeline = compose_segment(kernel, discipline, [1, 2, 3], [])
            assert pipeline.run_to_completion() == [1, 2, 3]


class TestShapeClaims:
    def test_readonly_has_no_buffers(self):
        kernel = Kernel()
        pipeline = compose_readonly_pipeline(kernel, ITEMS, fresh_transducers())
        assert pipeline.buffer_count() == 0
        assert pipeline.eject_count() == 3 + 2  # n + 2

    def test_conventional_buffer_count(self):
        kernel = Kernel()
        pipeline = compose_conventional_pipeline(kernel, ITEMS, fresh_transducers())
        assert pipeline.buffer_count() == 4  # n + 1
        assert pipeline.eject_count() == 2 * 3 + 3  # 2n + 3

    def test_writeonly_matches_readonly_shape(self):
        kernel = Kernel()
        pipeline = compose_writeonly_pipeline(kernel, ITEMS, fresh_transducers())
        assert pipeline.buffer_count() == 0
        assert pipeline.eject_count() == 5

    def test_invocation_halving(self):
        """The headline claim: ~half the invocations (paper §4)."""
        results = {}
        for discipline in ("readonly", "conventional"):
            kernel = Kernel()
            pipeline = compose_segment(
                kernel, discipline, [f"i{k}" for k in range(30)],
                [upper_case(), upper_case(), upper_case()],
            )
            pipeline.run_to_completion()
            results[discipline] = pipeline.invocations_used()
        assert results["readonly"] * 2 == results["conventional"]


class TestFlowPolicies:
    def test_batching_cuts_invocations(self):
        counts = {}
        for batch in (1, 4):
            kernel = Kernel()
            pipeline = compose_readonly_pipeline(
                kernel, [f"i{k}" for k in range(32)], [upper_case()],
                flow=FlowPolicy(batch=batch),
            )
            pipeline.run_to_completion()
            counts[batch] = pipeline.invocations_used()
        assert counts[4] < counts[1] / 3

    def test_lookahead_same_results(self):
        for lookahead in (0, 1, 3, 16):
            kernel = Kernel()
            pipeline = compose_readonly_pipeline(
                kernel, ITEMS, fresh_transducers(),
                flow=FlowPolicy(lookahead=lookahead),
            )
            assert pipeline.run_to_completion() == compose_apply(
                fresh_transducers(), ITEMS
            )

    def test_lookahead_restores_parallelism(self):
        """§4: anticipatory buffering lets all Ejects run concurrently."""

        def makespan(lookahead):
            kernel = Kernel()
            transducers = []
            for _ in range(3):
                transducer = upper_case()
                transducer.cost_per_item = 4.0
                transducers.append(transducer)
            pipeline = compose_readonly_pipeline(
                kernel, [f"i{k}" for k in range(20)], transducers,
                flow=FlowPolicy(lookahead=lookahead),
            )
            pipeline.run_to_completion()
            return pipeline.virtual_makespan

        lazy, eager = makespan(0), makespan(8)
        assert eager < lazy / 1.5

    def test_flow_policy_validation(self):
        with pytest.raises(ValueError):
            FlowPolicy(lookahead=-1)
        with pytest.raises(ValueError):
            FlowPolicy(batch=0)
        with pytest.raises(ValueError):
            FlowPolicy(buffer_capacity=0)
        with pytest.raises(ValueError):
            FlowPolicy(inbox_capacity=0)
        assert FlowPolicy.lazy().lookahead == 0
        assert FlowPolicy.eager().lookahead == 8
        assert FlowPolicy().with_batch(4).batch == 4


class TestPlacement:
    def test_spread_uses_distinct_nodes(self):
        kernel = Kernel()
        pipeline = compose_readonly_pipeline(
            kernel, ITEMS, fresh_transducers(), placement="spread"
        )
        nodes = {eject.node.name for eject in pipeline.ejects}
        assert len(nodes) == pipeline.eject_count()

    def test_explicit_node_list_cycles(self):
        kernel = Kernel()
        pipeline = compose_readonly_pipeline(
            kernel, ITEMS, fresh_transducers(), placement=["vaxA", "vaxB"]
        )
        nodes = {eject.node.name for eject in pipeline.ejects}
        assert nodes == {"vaxA", "vaxB"}

    def test_remote_hops_cost_more(self):
        def makespan(placement):
            kernel = Kernel(costs=TransportCosts(local_latency=1.0,
                                                 remote_latency=20.0))
            pipeline = compose_readonly_pipeline(
                kernel, ITEMS, fresh_transducers(), placement=placement
            )
            pipeline.run_to_completion()
            return pipeline.virtual_makespan

        assert makespan("spread") > 4 * makespan(None)


class TestErrors:
    def test_unknown_discipline(self):
        with pytest.raises(ValueError):
            compose_segment(Kernel(), "psychic", [1], [])

    def test_stats_require_run(self):
        pipeline = compose_readonly_pipeline(Kernel(), [1], [])
        with pytest.raises(RuntimeError):
            pipeline.invocations_used()

    def test_invocations_per_datum(self):
        kernel = Kernel()
        pipeline = compose_readonly_pipeline(
            kernel, [f"i{k}" for k in range(10)], [upper_case()]
        )
        pipeline.run_to_completion()
        per_datum = pipeline.invocations_per_datum(10)
        assert 2.0 <= per_datum <= 2.5  # n+1 = 2 plus END overhead
        with pytest.raises(ValueError):
            pipeline.invocations_per_datum(0)
