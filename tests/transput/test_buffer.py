"""The passive buffer: backpressure, parking, FIFO, protocol errors."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.transput import PassiveBuffer, StreamEndpoint, Transfer
from repro.transput.stream import END_TRANSFER
from repro.transput.primitives import active_input, active_output, TransputEject


class TestBasicFlow:
    def test_write_then_read(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        kernel.call_sync(buffer.uid, "Write", Transfer.of([1, 2]))
        assert kernel.call_sync(buffer.uid, "Read", 2).items == (1, 2)

    def test_fifo_order(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        for value in range(5):
            kernel.call_sync(buffer.uid, "Write", Transfer.single(value))
        got = [kernel.call_sync(buffer.uid, "Read", 1).items[0] for _ in range(5)]
        assert got == [0, 1, 2, 3, 4]

    def test_end_then_read_returns_end(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert kernel.call_sync(buffer.uid, "Read", 1).at_end

    def test_data_drains_before_end(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        kernel.call_sync(buffer.uid, "Write", Transfer.single("x"))
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert kernel.call_sync(buffer.uid, "Read", 1).items == ("x",)
        assert kernel.call_sync(buffer.uid, "Read", 1).at_end


class TestParkedReads:
    def test_read_blocks_until_write(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        results = []

        class Reader(TransputEject):
            eden_type = "BufReader"

            def main(self):
                transfer = yield from active_input(
                    self, StreamEndpoint(buffer.uid, None)
                )
                results.append(transfer.items)

        kernel.create(Reader)
        kernel.run()
        assert results == []  # reader is parked
        kernel.call_sync(buffer.uid, "Write", Transfer.single("late"))
        kernel.run()
        assert results == [("late",)]

    def test_parked_reads_served_fifo(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        results = []

        class Reader(TransputEject):
            eden_type = "BufReader2"

            def __init__(self, kernel, uid, tag=None, name=None):
                super().__init__(kernel, uid, name=name)
                self.tag = tag

            def main(self):
                transfer = yield from active_input(
                    self, StreamEndpoint(buffer.uid, None)
                )
                results.append((self.tag, transfer.items[0]))

        kernel.create(Reader, tag="first")
        kernel.run()
        kernel.create(Reader, tag="second")
        kernel.run()
        kernel.call_sync(buffer.uid, "Write", Transfer.of(["a", "b"]))
        kernel.run()
        assert results == [("first", "a"), ("second", "b")]

    def test_end_releases_all_parked_readers(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        ends = []

        class Reader(TransputEject):
            eden_type = "BufReader3"

            def main(self):
                transfer = yield from active_input(
                    self, StreamEndpoint(buffer.uid, None)
                )
                ends.append(transfer.at_end)

        kernel.create(Reader)
        kernel.create(Reader)
        kernel.run()
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        kernel.run()
        assert ends == [True, True]


class TestBackpressure:
    def test_writer_blocks_when_full(self, kernel):
        buffer = kernel.create(PassiveBuffer, capacity=2)
        progress = []

        class Writer(TransputEject):
            eden_type = "BufWriter"

            def main(self):
                endpoint = StreamEndpoint(buffer.uid, None)
                for value in range(4):
                    yield from active_output(self, endpoint, Transfer.single(value))
                    progress.append(value)

        kernel.create(Writer)
        kernel.run()
        assert progress == [0, 1]  # third write parked: buffer full
        assert buffer.occupancy == 2
        # A read frees space; the writer resumes.
        assert kernel.call_sync(buffer.uid, "Read", 1).items == (0,)
        kernel.run()
        assert progress == [0, 1, 2]

    def test_oversized_write_accepted_into_empty(self, kernel):
        buffer = kernel.create(PassiveBuffer, capacity=2)
        kernel.call_sync(buffer.uid, "Write", Transfer.of([1, 2, 3, 4]))
        assert buffer.occupancy == 4  # atomic oversized write

    def test_occupancy_tracking(self, kernel):
        buffer = kernel.create(PassiveBuffer, capacity=10)
        kernel.call_sync(buffer.uid, "Write", Transfer.of([1, 2, 3]))
        kernel.call_sync(buffer.uid, "Read", 2)
        assert buffer.occupancy == 1
        assert buffer.max_occupancy == 3

    def test_invalid_capacity_rejected(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(PassiveBuffer, capacity=0)


class TestProtocolErrors:
    def test_write_after_end_rejected(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(buffer.uid, "Write", Transfer.single("x"))

    def test_non_transfer_rejected(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(buffer.uid, "Write", [1, 2])


class TestFanIn:
    def test_expected_ends(self, kernel):
        buffer = kernel.create(PassiveBuffer, expected_ends=2)
        kernel.call_sync(buffer.uid, "Write", Transfer.single("a"))
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert not buffer.ended
        kernel.call_sync(buffer.uid, "Write", Transfer.single("b"))
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert buffer.ended
        assert kernel.call_sync(buffer.uid, "Read", 5).items == ("a", "b")

    def test_counters(self, kernel):
        buffer = kernel.create(PassiveBuffer)
        kernel.call_sync(buffer.uid, "Write", Transfer.single("a"))
        kernel.call_sync(buffer.uid, "Read", 1)
        assert buffer.writes_accepted == 1
        assert buffer.reads_served == 1


class TestEndWhileWritesParked:
    def test_parked_write_fails_on_end(self, kernel):
        """A write waiting for space when the stream ends gets a clean
        error (like EPIPE), not silent admission after END."""
        buffer = kernel.create(PassiveBuffer, capacity=2, expected_ends=2)
        kernel.call_sync(buffer.uid, "Write", Transfer.of([1, 2]))  # full
        failures = []

        class Writer(TransputEject):
            eden_type = "StrandedWriter"

            def main(self):
                try:
                    yield from active_output(
                        self, StreamEndpoint(buffer.uid, None),
                        Transfer.single(3),
                    )
                except StreamProtocolError as exc:
                    failures.append(exc)

        kernel.create(Writer)
        kernel.run()  # the write parks (buffer full)
        assert failures == []
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert not buffer.ended  # first of two expected ENDs
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        kernel.run()
        assert len(failures) == 1
        # The buffered data is intact and the stream terminates cleanly.
        assert kernel.call_sync(buffer.uid, "Read", 5).items == (1, 2)
        assert kernel.call_sync(buffer.uid, "Read", 1).at_end

    def test_read_after_end_never_admits_parked_write(self, kernel):
        buffer = kernel.create(PassiveBuffer, capacity=1)
        kernel.call_sync(buffer.uid, "Write", Transfer.single("a"))
        errors = []

        class Writer(TransputEject):
            eden_type = "StrandedWriter2"

            def main(self):
                try:
                    yield from active_output(
                        self, StreamEndpoint(buffer.uid, None),
                        Transfer.single("late"),
                    )
                except StreamProtocolError as exc:
                    errors.append(exc)

        kernel.create(Writer)
        kernel.run()
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        # Draining the buffer frees space, but END already closed it.
        assert kernel.call_sync(buffer.uid, "Read", 1).items == ("a",)
        assert kernel.call_sync(buffer.uid, "Read", 1).at_end
        kernel.run()
        assert len(errors) == 1
