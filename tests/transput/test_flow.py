"""FlowPolicy validation and the net-runtime credit-window mapping."""

import pytest

from repro.transput import FlowPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = FlowPolicy()
        assert policy.lookahead == 0
        assert policy.batch == 1

    @pytest.mark.parametrize("lookahead", [-1, -100])
    def test_negative_lookahead_rejected(self, lookahead):
        with pytest.raises(ValueError, match="lookahead"):
            FlowPolicy(lookahead=lookahead)

    @pytest.mark.parametrize("batch", [0, -1, -7])
    def test_non_positive_batch_rejected(self, batch):
        with pytest.raises(ValueError, match="batch"):
            FlowPolicy(batch=batch)

    @pytest.mark.parametrize("capacity", [0, -5])
    def test_bad_buffer_capacity_rejected(self, capacity):
        with pytest.raises(ValueError, match="buffer_capacity"):
            FlowPolicy(buffer_capacity=capacity)

    @pytest.mark.parametrize("capacity", [0, -2])
    def test_bad_inbox_capacity_rejected(self, capacity):
        with pytest.raises(ValueError, match="inbox_capacity"):
            FlowPolicy(inbox_capacity=capacity)

    def test_none_capacities_mean_unbounded(self):
        policy = FlowPolicy(buffer_capacity=None, inbox_capacity=None)
        assert policy.buffer_capacity is None
        assert policy.inbox_capacity is None

    def test_with_batch_revalidates(self):
        with pytest.raises(ValueError, match="batch"):
            FlowPolicy().with_batch(0)

    def test_eager_constructor_validates(self):
        with pytest.raises(ValueError, match="lookahead"):
            FlowPolicy.eager(lookahead=-3)


class TestCreditWindow:
    def test_explicit_credit_window_wins(self):
        policy = FlowPolicy(credit_window=3, inbox_capacity=5, lookahead=9)
        assert policy.effective_credit_window() == 3

    def test_inbox_capacity_wins(self):
        policy = FlowPolicy(inbox_capacity=5, lookahead=9)
        assert policy.effective_credit_window() == 5

    def test_lookahead_is_the_fallback(self):
        assert FlowPolicy(lookahead=8).effective_credit_window() == 8

    def test_lazy_degenerates_to_synchronous_window(self):
        assert FlowPolicy.lazy().effective_credit_window() == 1

    def test_eager_maps_to_its_lookahead(self):
        assert FlowPolicy.eager(lookahead=16).effective_credit_window() == 16

    @pytest.mark.parametrize("window", [0, -4])
    def test_bad_credit_window_rejected(self, window):
        with pytest.raises(ValueError, match="credit_window"):
            FlowPolicy(credit_window=window)

    def test_with_credit_window_revalidates(self):
        assert FlowPolicy().with_credit_window(7).effective_credit_window() == 7
        with pytest.raises(ValueError, match="credit_window"):
            FlowPolicy().with_credit_window(0)


class TestPipelineDepth:
    def test_default_is_strict_alternation(self):
        assert FlowPolicy().effective_pipeline_depth() == 1

    def test_explicit_depth_wins(self):
        policy = FlowPolicy(lookahead=4, pipeline_depth=8)
        assert policy.effective_pipeline_depth() == 8

    def test_lookahead_is_the_fallback(self):
        assert FlowPolicy.eager(lookahead=5).effective_pipeline_depth() == 5

    @pytest.mark.parametrize("depth", [0, -3])
    def test_bad_depth_rejected(self, depth):
        with pytest.raises(ValueError, match="pipeline_depth"):
            FlowPolicy(pipeline_depth=depth)

    def test_with_pipeline_depth_revalidates(self):
        assert FlowPolicy().with_pipeline_depth(4).pipeline_depth == 4
        with pytest.raises(ValueError, match="pipeline_depth"):
            FlowPolicy().with_pipeline_depth(0)

    def test_describe_includes_the_new_knobs(self):
        described = FlowPolicy(pipeline_depth=3, adaptive=True).describe()
        assert described["pipeline_depth"] == 3
        assert described["adaptive"] is True


class TestAutotuner:
    def make(self, **kwargs):
        from repro.transput.flow import FlowAutotuner
        policy = kwargs.pop("policy", FlowPolicy(batch=2, credit_window=4))
        return FlowAutotuner(policy, **kwargs)

    def test_starts_at_the_policy_floor(self):
        tuner = self.make()
        assert tuner.batch == 2
        assert tuner.credit_window == 4

    def test_grows_additively_while_latency_holds(self):
        tuner = self.make(epoch=4, increment=2)
        for _ in range(4):
            assert tuner.observe(0.001) in (False, True)
        assert tuner.batch == 4
        assert tuner.credit_window == 6

    def test_no_retune_mid_epoch(self):
        tuner = self.make(epoch=8)
        assert not any(tuner.observe(0.001) for _ in range(7))
        assert tuner.batch == 2

    def test_halves_when_rtt_inflates(self):
        tuner = self.make(epoch=2, increment=4)
        for _ in range(4):       # two fast epochs: batch 2 -> 6 -> 10
            tuner.observe(0.001)
        grown = tuner.batch
        for _ in range(2):       # one slow epoch: multiplicative decrease
            tuner.observe(1.0)
        assert tuner.batch == grown // 2

    def test_never_sinks_below_the_floor(self):
        tuner = self.make(epoch=1)
        tuner.observe(0.0001)    # establish a low best-RTT
        for _ in range(20):
            tuner.observe(5.0)
        assert tuner.batch >= 2
        assert tuner.credit_window >= 4

    def test_growth_capped_at_max_batch(self):
        tuner = self.make(epoch=1, max_batch=5, increment=10)
        tuner.observe(0.001)
        tuner.observe(0.001)
        assert tuner.batch == 5
        assert tuner.credit_window == 5

    def test_describe_is_json_safe(self):
        import json
        tuner = self.make(epoch=1)
        tuner.observe(0.002)
        snapshot = tuner.describe()
        json.dumps(snapshot)
        assert snapshot["batch"] == tuner.batch
        assert snapshot["credit_window"] == tuner.credit_window

    def test_bad_constructor_args_rejected(self):
        with pytest.raises(ValueError, match="epoch"):
            self.make(epoch=0)
        with pytest.raises(ValueError, match="max_batch"):
            self.make(max_batch=0)
        with pytest.raises(ValueError, match="tolerance"):
            self.make(tolerance=1.0)


class TestShardOf:
    def test_stable_across_calls(self):
        from repro.transput.flow import shard_of
        records = [f"record-{i}" for i in range(50)]
        first = [shard_of(record, 4) for record in records]
        assert [shard_of(record, 4) for record in records] == first

    def test_every_index_in_range(self):
        from repro.transput.flow import shard_of
        for record in range(200):
            assert 0 <= shard_of(record, 7) < 7

    def test_single_shard_is_identity(self):
        from repro.transput.flow import shard_of
        assert shard_of("anything", 1) == 0

    def test_spreads_over_shards(self):
        from repro.transput.flow import shard_of
        seen = {shard_of(f"record-{i}", 4) for i in range(100)}
        assert seen == {0, 1, 2, 3}

    def test_rejects_non_positive(self):
        from repro.transput.flow import shard_of
        with pytest.raises(ValueError, match="shards"):
            shard_of("x", 0)
