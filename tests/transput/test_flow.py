"""FlowPolicy validation and the net-runtime credit-window mapping."""

import pytest

from repro.transput import FlowPolicy


class TestValidation:
    def test_defaults_are_valid(self):
        policy = FlowPolicy()
        assert policy.lookahead == 0
        assert policy.batch == 1

    @pytest.mark.parametrize("lookahead", [-1, -100])
    def test_negative_lookahead_rejected(self, lookahead):
        with pytest.raises(ValueError, match="lookahead"):
            FlowPolicy(lookahead=lookahead)

    @pytest.mark.parametrize("batch", [0, -1, -7])
    def test_non_positive_batch_rejected(self, batch):
        with pytest.raises(ValueError, match="batch"):
            FlowPolicy(batch=batch)

    @pytest.mark.parametrize("capacity", [0, -5])
    def test_bad_buffer_capacity_rejected(self, capacity):
        with pytest.raises(ValueError, match="buffer_capacity"):
            FlowPolicy(buffer_capacity=capacity)

    @pytest.mark.parametrize("capacity", [0, -2])
    def test_bad_inbox_capacity_rejected(self, capacity):
        with pytest.raises(ValueError, match="inbox_capacity"):
            FlowPolicy(inbox_capacity=capacity)

    def test_none_capacities_mean_unbounded(self):
        policy = FlowPolicy(buffer_capacity=None, inbox_capacity=None)
        assert policy.buffer_capacity is None
        assert policy.inbox_capacity is None

    def test_with_batch_revalidates(self):
        with pytest.raises(ValueError, match="batch"):
            FlowPolicy().with_batch(0)

    def test_eager_constructor_validates(self):
        with pytest.raises(ValueError, match="lookahead"):
            FlowPolicy.eager(lookahead=-3)


class TestCreditWindow:
    def test_explicit_credit_window_wins(self):
        policy = FlowPolicy(credit_window=3, inbox_capacity=5, lookahead=9)
        assert policy.effective_credit_window() == 3

    def test_inbox_capacity_wins(self):
        policy = FlowPolicy(inbox_capacity=5, lookahead=9)
        assert policy.effective_credit_window() == 5

    def test_lookahead_is_the_fallback(self):
        assert FlowPolicy(lookahead=8).effective_credit_window() == 8

    def test_lazy_degenerates_to_synchronous_window(self):
        assert FlowPolicy.lazy().effective_credit_window() == 1

    def test_eager_maps_to_its_lookahead(self):
        assert FlowPolicy.eager(lookahead=16).effective_credit_window() == 16

    @pytest.mark.parametrize("window", [0, -4])
    def test_bad_credit_window_rejected(self, window):
        with pytest.raises(ValueError, match="credit_window"):
            FlowPolicy(credit_window=window)

    def test_with_credit_window_revalidates(self):
        assert FlowPolicy().with_credit_window(7).effective_credit_window() == 7
        with pytest.raises(ValueError, match="credit_window"):
            FlowPolicy().with_credit_window(0)
