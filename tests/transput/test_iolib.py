"""The standard IO module: OutputPort, InputPort, conventional style."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.transput import (
    ActiveSource,
    CollectorSink,
    ConventionalStyleFilter,
    END_OF_INPUT,
    InputPort,
    ListSource,
    OutputPort,
    Primitive,
    StreamEndpoint,
    TransputEject,
)
from tests.conftest import run_until_done


class PortHost(TransputEject):
    """An Eject that writes a fixed script through an OutputPort."""

    eden_type = "PortHost"

    def __init__(self, kernel, uid, script=(), capacity=None, name=None):
        super().__init__(kernel, uid, name=name)
        self.port = OutputPort(self, capacity=capacity)
        self.script = list(script)

    def writer(self):
        yield from self.port.write_all(self.script)
        yield from self.port.close()

    def process_bodies(self):
        return [("writer", self.writer()), ("server", self.port.server_body())]


class TestOutputPort:
    def test_serves_reads_from_internal_writes(self, kernel):
        host = kernel.create(PortHost, script=["a", "b", "c"])
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(host.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["a", "b", "c"]
        # Externally the Eject performed only passive output.
        assert host.interface_primitives() == {Primitive.PASSIVE_OUTPUT}

    def test_reader_blocks_until_writer_produces(self, kernel):
        host = kernel.create(PortHost, script=[])
        # A fresh port with a closed empty stream answers END.
        assert kernel.call_sync(host.uid, "Read", 1).at_end

    def test_capacity_blocks_writer(self, kernel):
        host = kernel.create(PortHost, script=list(range(10)), capacity=3)
        kernel.run()
        assert len(host.port.buffer) == 3  # writer parked at capacity
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(host.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == list(range(10))

    def test_write_after_close_rejected(self, kernel):
        host = kernel.create(PortHost, script=[])
        kernel.run()
        with pytest.raises(StreamProtocolError):
            next(host.port.write("late"))

    def test_invalid_capacity(self, kernel):
        host = kernel.create(PortHost, script=[])
        with pytest.raises(ValueError):
            OutputPort(host, capacity=0)


class InHost(TransputEject):
    """An Eject that drains an InputPort into ``got``."""

    eden_type = "InHost"

    def __init__(self, kernel, uid, name=None, capacity=None):
        super().__init__(kernel, uid, name=name)
        self.port = InputPort(self, capacity=capacity)
        self.got = []
        self.done = False

    def reader(self):
        self.got = yield from self.port.read_all()
        self.done = True

    def process_bodies(self):
        return [("reader", self.reader()), ("server", self.port.server_body())]


class TestInputPort:
    def test_conventional_reads_from_pushed_writes(self, kernel):
        host = kernel.create(InHost)
        kernel.create(
            ActiveSource, items=["x", "y"],
            outputs=[StreamEndpoint(host.uid, None)],
        )
        run_until_done(kernel, host)
        assert host.got == ["x", "y"]
        assert host.interface_primitives() == {Primitive.PASSIVE_INPUT}

    def test_end_of_input_sentinel(self, kernel):
        host = kernel.create(InHost)
        kernel.create(
            ActiveSource, items=[], outputs=[StreamEndpoint(host.uid, None)]
        )
        run_until_done(kernel, host)
        assert host.got == []

    def test_rejects_non_transfer(self, kernel):
        host = kernel.create(InHost)
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(host.uid, "Write", 42)


class TestConventionalStyleFilter:
    def test_body_reads_and_writes_conventionally(self, kernel):
        """The paper's promised programming model (§4)."""

        def body(filt):
            while True:
                item = yield from filt.read_input()
                if item is END_OF_INPUT:
                    return
                if not str(item).startswith("C"):
                    yield from filt.stdout.write(str(item).upper())

        source = kernel.create(ListSource, items=["C skip", "keep", "also"])
        stage = kernel.create(
            ConventionalStyleFilter, body=body,
            input=source.output_endpoint(),
        )
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(stage.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["KEEP", "ALSO"]
        # Externally: still pure read-only transput.
        assert stage.interface_primitives() == {
            Primitive.ACTIVE_INPUT, Primitive.PASSIVE_OUTPUT
        }

    def test_no_body_is_empty_stream(self, kernel):
        stage = kernel.create(ConventionalStyleFilter)
        assert kernel.call_sync(stage.uid, "Read", 1).at_end

    def test_no_input_reads_end(self, kernel):
        seen = []

        def body(filt):
            seen.append((yield from filt.read_input()))

        kernel.create(ConventionalStyleFilter, body=body)
        kernel.run()
        assert seen == [END_OF_INPUT]


class TestInputPortCapacity:
    def test_bounded_inport_backpressures_writers(self, kernel):
        host = kernel.create(InHost, capacity=2)
        # A fast writer against a reader that drains slowly: the port's
        # bounded buffer delays acks rather than dropping records.
        kernel.create(
            ActiveSource, items=list(range(12)),
            outputs=[StreamEndpoint(host.uid, None)],
        )
        run_until_done(kernel, host)
        assert host.got == list(range(12))

    def test_invalid_capacity(self, kernel):
        host = kernel.create(InHost)
        with pytest.raises(ValueError):
            InputPort(host, capacity=0)


class TestEjectSyscallHelpers:
    def test_invoke_and_await_reply_helpers(self, kernel):
        """The Eject helper methods build working syscalls."""
        from repro.core import Eject

        class Pong(Eject):
            eden_type = "PongHelper"

            def op_Ping(self, invocation):
                return "pong"

        results = []

        class Caller(Eject):
            eden_type = "CallerHelper"

            def main(self):
                ticket = yield self.invoke(pong.uid, "Ping")
                results.append((yield self.await_reply(ticket)))

        pong = kernel.create(Pong)
        kernel.create(Caller)
        kernel.run()
        assert results == ["pong"]
