"""The chaos proxy relays real frames and injects per-link faults."""

import asyncio

from repro.fault import ChaosProxy, FaultPlan, FrameFault
from repro.net.framing import Frame, FrameType, encode_frame, read_frame_sized


async def _echo_server():
    """A target that echoes every frame back to the client."""

    async def handle(reader, writer):
        while True:
            frame, _wire = await read_frame_sized(reader)
            if frame is None:
                break
            writer.write(encode_frame(frame))
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


async def _exchange(proxy_port, frames, replies_expected):
    reader, writer = await asyncio.open_connection("127.0.0.1", proxy_port)
    for frame in frames:
        writer.write(encode_frame(frame))
    await writer.drain()
    writer.write_eof()
    got = []
    for _ in range(replies_expected):
        frame, _wire = await asyncio.wait_for(read_frame_sized(reader), 5.0)
        if frame is None:
            break
        got.append(frame)
    writer.close()
    return got


def test_benign_proxy_relays_both_directions():
    async def scenario():
        server, port = await _echo_server()
        proxy = await ChaosProxy("127.0.0.1", port, FaultPlan()).start()
        frames = [Frame(FrameType.DATA, {"seq": i}) for i in range(3)]
        try:
            echoed = await _exchange(proxy.port, frames, 3)
        finally:
            await proxy.stop()
            server.close()
            await server.wait_closed()
        return echoed

    echoed = asyncio.run(scenario())
    assert [frame.body["seq"] for frame in echoed] == [0, 1, 2]


def test_forward_drop_swallows_the_nth_request():
    plan = FaultPlan(
        frame_faults=[FrameFault(action="drop", frame="data", nth=2)]
    )

    async def scenario():
        server, port = await _echo_server()
        # reply_plan benign: only the client->target direction is lossy.
        proxy = await ChaosProxy(
            "127.0.0.1", port, plan, reply_plan=FaultPlan()
        ).start()
        frames = [Frame(FrameType.DATA, {"seq": i}) for i in range(3)]
        try:
            echoed = await _exchange(proxy.port, frames, 3)
        finally:
            await proxy.stop()
            server.close()
            await server.wait_closed()
        return echoed, {
            name: proxy.stats.get(name)
            for name in ("fault_drop", "frames_relayed")
        }

    echoed, counters = asyncio.run(scenario())
    assert [frame.body["seq"] for frame in echoed] == [0, 2]
    assert counters["fault_drop"] == 1
    assert counters["frames_relayed"] >= 5  # 3 in, 2 echoed back
