"""Runtime fault hooks: the frame injector and the kill switches."""

import asyncio

import pytest

from repro.core.stats import KernelStats
from repro.fault import FaultInjector, FaultPlan, FrameFault, KillSwitch
from repro.fault.inject import (
    KillingReadable,
    KillingWritable,
    build_injector,
    corrupt_bytes,
    killing_transducer,
)
from repro.transput import identity_transducer
from repro.transput.stream import END_TRANSFER, Transfer


def send(injector, frames):
    """Feed ``(name, wire)`` frames through the injector, collect chunks."""
    async def drive():
        out = []
        for name, wire in frames:
            out.append(await injector.outgoing(name, wire))
        return out

    return asyncio.run(drive())


class TestFaultInjector:
    def test_no_rules_passes_frames_through(self):
        injector = FaultInjector([])
        assert send(injector, [("DATA", b"abc")]) == [[b"abc"]]

    def test_drop_nth(self):
        injector = FaultInjector([FrameFault(action="drop", nth=2)],
                                 stats=KernelStats())
        out = send(injector, [("DATA", b"a"), ("DATA", b"b"), ("DATA", b"c")])
        assert out == [[b"a"], [], [b"c"]]
        assert injector.stats.get("fault_drop") == 1

    def test_duplicate_every(self):
        injector = FaultInjector([FrameFault(action="duplicate", every=2)])
        out = send(injector, [("DATA", b"a"), ("DATA", b"b")])
        assert out == [[b"a"], [b"b", b"b"]]

    def test_corrupt_mutates_but_keeps_length(self):
        injector = FaultInjector([FrameFault(action="corrupt", nth=1)])
        [chunks] = send(injector, [("DATA", b"abc")])
        assert chunks != [b"abc"] and len(chunks[0]) == 3

    def test_frame_filter_only_counts_matching_frames(self):
        # The nth schedule must count DATA frames, not every frame.
        injector = FaultInjector(
            [FrameFault(action="drop", frame="data", nth=2)]
        )
        out = send(injector, [
            ("READ", b"r1"), ("DATA", b"d1"), ("READ", b"r2"), ("DATA", b"d2"),
        ])
        assert out == [[b"r1"], [b"d1"], [b"r2"], []]

    def test_delay_sleeps_inside_sender(self):
        napped = []

        async def fake_sleep(seconds):
            napped.append(seconds)

        injector = FaultInjector(
            [FrameFault(action="delay", nth=1, delay_ms=250.0)],
            sleep=fake_sleep,
        )
        send(injector, [("DATA", b"a")])
        assert napped == [0.25]

    def test_build_injector_none_for_benign_plans(self):
        assert build_injector(None) is None
        assert build_injector(FaultPlan()) is None
        assert build_injector(FaultPlan(kill_after=3)) is None  # not a frame fault
        assert build_injector(
            FaultPlan(frame_faults=[FrameFault(action="drop", nth=1)])
        ) is not None


def test_corrupt_bytes_flips_last_byte():
    assert corrupt_bytes(b"") == b""
    wire = b"\x01\x02\x03"
    mangled = corrupt_bytes(wire)
    assert mangled[:-1] == wire[:-1] and mangled[-1] != wire[-1]


class TestKillSwitch:
    def test_limit_validated(self):
        with pytest.raises(ValueError):
            KillSwitch(0)

    def test_trips_at_limit(self):
        tripped = []
        switch = KillSwitch(3, on_kill=lambda: tripped.append(True))
        switch.note()
        switch.note()
        assert not tripped
        switch.note()
        assert tripped

    def test_batch_notes_can_overshoot(self):
        tripped = []
        switch = KillSwitch(3, on_kill=lambda: tripped.append(True))
        switch.note(5)
        assert tripped and switch.count == 5


class _Boom(Exception):
    pass


def _tripping(limit):
    def boom():
        raise _Boom()

    return KillSwitch(limit, on_kill=boom)


class TestKillAdapters:
    def test_killing_readable_counts_yielded_records(self):
        class Source:
            def __init__(self, chunks):
                self.chunks = list(chunks)

            async def read(self, batch=1):
                if not self.chunks:
                    return END_TRANSFER
                return Transfer.of(self.chunks.pop(0))

        readable = KillingReadable(Source([["a", "b"], ["c"]]), _tripping(3))

        async def drive():
            await readable.read()
            await readable.read()

        with pytest.raises(_Boom):
            asyncio.run(drive())

    def test_killing_writable_counts_accepted_records(self):
        class Sink:
            async def write(self, transfer):
                pass

        writable = KillingWritable(Sink(), _tripping(2))

        async def drive():
            await writable.write(Transfer.of(["a"]))
            await writable.write(END_TRANSFER)  # END does not count
            await writable.write(Transfer.of(["b"]))

        with pytest.raises(_Boom):
            asyncio.run(drive())

    def test_killing_transducer_counts_inputs(self):
        wrapped = killing_transducer(identity_transducer(), _tripping(2))
        assert list(wrapped.step("a")) == ["a"]
        with pytest.raises(_Boom):
            wrapped.step("b")
