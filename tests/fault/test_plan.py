"""FaultPlan / FrameFault: eager validation, survivors, JSON portability."""

import pytest

from repro.fault import FAULT_ACTIONS, FaultError, FaultPlan, FrameFault


class TestFrameFaultValidation:
    def test_every_action_constructs(self):
        for action in FAULT_ACTIONS:
            delay = 5.0 if action == "delay" else 0.0
            fault = FrameFault(action=action, nth=1, delay_ms=delay)
            assert fault.action == action

    def test_unknown_action_rejected(self):
        with pytest.raises(FaultError, match="action"):
            FrameFault(action="explode", nth=1)

    def test_exactly_one_schedule_required(self):
        with pytest.raises(FaultError, match="exactly one"):
            FrameFault(action="drop")
        with pytest.raises(FaultError, match="exactly one"):
            FrameFault(action="drop", nth=1, every=2)

    @pytest.mark.parametrize("field", ["nth", "every"])
    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3"])
    def test_schedule_must_be_positive_integer(self, field, bad):
        with pytest.raises(FaultError, match=field):
            FrameFault(action="drop", **{field: bad})

    def test_delay_needs_latency(self):
        with pytest.raises(FaultError, match="delay_ms"):
            FrameFault(action="delay", nth=1)
        with pytest.raises(FaultError, match="delay_ms"):
            FrameFault(action="drop", nth=1, delay_ms=-1.0)

    def test_empty_frame_name_rejected(self):
        with pytest.raises(FaultError, match="frame"):
            FrameFault(action="drop", nth=1, frame="")


class TestFrameFaultMatching:
    def test_nth_is_one_shot(self):
        fault = FrameFault(action="drop", nth=3)
        assert [fault.matches("data", count) for count in (1, 2, 3, 4)] == [
            False, False, True, False,
        ]

    def test_every_is_periodic(self):
        fault = FrameFault(action="drop", every=2)
        assert [fault.matches("data", count) for count in (1, 2, 3, 4)] == [
            False, True, False, True,
        ]

    def test_frame_filter_is_case_insensitive(self):
        fault = FrameFault(action="drop", frame="data", nth=1)
        assert fault.matches("DATA", 1)
        assert not fault.matches("WRITE", 1)

    def test_round_trip(self):
        fault = FrameFault(action="delay", frame="write", every=3, delay_ms=2.5)
        assert FrameFault.from_dict(fault.as_dict()) == fault

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultError, match="unknown"):
            FrameFault.from_dict({"action": "drop", "nth": 1, "colour": "red"})


class TestFaultPlan:
    def test_default_is_benign(self):
        assert FaultPlan().is_benign

    def test_any_fault_is_not_benign(self):
        assert not FaultPlan(kill_after=1).is_benign
        assert not FaultPlan(refuse_accepts=1).is_benign
        assert not FaultPlan(
            frame_faults=[FrameFault(action="drop", nth=1)]
        ).is_benign

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3"])
    def test_kill_after_validated(self, bad):
        with pytest.raises(FaultError, match="kill_after"):
            FaultPlan(kill_after=bad)

    def test_refuse_accepts_validated(self):
        with pytest.raises(FaultError, match="refuse_accepts"):
            FaultPlan(refuse_accepts=-1)

    def test_frame_faults_must_be_frame_faults(self):
        with pytest.raises(FaultError, match="FrameFault"):
            FaultPlan(frame_faults=[{"action": "drop", "nth": 1}])

    def test_survivor_strips_one_shot_faults(self):
        periodic = FrameFault(action="drop", every=5)
        plan = FaultPlan(
            kill_after=7,
            refuse_accepts=2,
            frame_faults=[FrameFault(action="duplicate", nth=2), periodic],
        )
        survivor = plan.survivor()
        assert survivor.kill_after is None
        assert survivor.refuse_accepts == 0
        assert survivor.frame_faults == (periodic,)

    def test_survivor_of_kill_only_plan_is_benign(self):
        assert FaultPlan(kill_after=3).survivor().is_benign

    def test_json_round_trip(self):
        plan = FaultPlan(
            kill_after=4,
            refuse_accepts=1,
            frame_faults=[FrameFault(action="corrupt", frame="data", nth=2)],
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_benign_plan_serialises_empty(self):
        assert FaultPlan().to_json() == "{}"
        assert FaultPlan.from_json("{}") == FaultPlan()

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultError, match="undecodable"):
            FaultPlan.from_json("{nope")
        with pytest.raises(FaultError, match="object"):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(FaultError, match="unknown"):
            FaultPlan.from_json('{"explode_at": 3}')
