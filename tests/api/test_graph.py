"""Graph construction: invalid topologies die at build time, positioned.

The redesign's contract is that **no invalid graph object exists** —
cycles, dangling ports, duplicate names, fan-out without channel
identifiers (paper claim C3), discipline mismatches inside one
segment, and unsatisfiable buffer bounds all raise
:class:`~repro.api.GraphError` from ``Graph(...)`` / ``build()``, each
naming the offending node or edge in its message.  The second half
round-trips graphs through the JSON spec (``to_spec``/``from_spec``),
property-style.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    Graph,
    GraphBuilder,
    GraphEdge,
    GraphError,
    GraphNode,
    SCATTER_POLICIES,
)
from repro.transput import FlowPolicy, identity_transducer

IDENTITY = "repro.transput:identity_transducer"
UPPER = "repro.filters:upper_case"
ITEMS = [f"record-{i}" for i in range(6)]


def linear(*stage_names):
    """Hand-built source -> stages -> sink node/edge lists."""
    names = ["source", *stage_names, "sink"]
    nodes = [GraphNode("source", "source")]
    nodes += [GraphNode(n, "stage", spec=IDENTITY) for n in stage_names]
    nodes += [GraphNode("sink", "sink")]
    edges = [GraphEdge(a, b) for a, b in zip(names, names[1:])]
    return nodes, edges


class TestBuildTimeRejection:
    """Each invalid topology fails eagerly with a positioned message."""

    def test_cycle_is_rejected_with_its_path(self):
        nodes, edges = linear("a")
        nodes += [GraphNode("x", "stage", spec=IDENTITY),
                  GraphNode("y", "stage", spec=IDENTITY)]
        edges += [GraphEdge("x", "y"), GraphEdge("y", "x")]
        with pytest.raises(GraphError, match=r"cycle: .*->.*streams flow"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_dangling_edge_names_the_edge(self):
        nodes, edges = linear("a")
        edges.append(GraphEdge("a", "ghost"))
        with pytest.raises(GraphError,
                           match=r"edge a->ghost: unknown node 'ghost' "
                                 r"\(dangling edge\)"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_duplicate_node_name_is_positioned(self):
        nodes, edges = linear("a")
        nodes.append(GraphNode("a", "stage", spec=IDENTITY))
        with pytest.raises(GraphError,
                           match="node 'a': duplicate node name"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_stage_with_no_out_edge_is_a_dangling_port(self):
        nodes, edges = linear("a")
        nodes.append(GraphNode("b", "stage", spec=IDENTITY))
        edges.append(GraphEdge("a", "b"))  # b leads nowhere; a fans out
        with pytest.raises(GraphError, match="node"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_fan_in_at_the_sink_needs_a_join(self):
        nodes, edges = linear("a")
        nodes.append(GraphNode("b", "stage", spec=IDENTITY))
        edges.append(GraphEdge("b", "sink"))
        with pytest.raises(GraphError,
                           match="node 'sink': the sink needs exactly one "
                                 "in-edge"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_readonly_fan_out_without_channels_cites_c3(self):
        """The paper's central asymmetry: naive readonly fan-out is
        ambiguous; channel identifiers restore it (claim C3)."""
        nodes, edges = linear("a")
        nodes += [GraphNode("b", "stage", spec=IDENTITY),
                  GraphNode("c", "stage", spec=IDENTITY),
                  GraphNode("j", "join", op="gather")]
        edges = [GraphEdge("source", "a"),
                 GraphEdge("a", "b"), GraphEdge("a", "c"),  # no channel=
                 GraphEdge("b", "j"), GraphEdge("c", "j"),
                 GraphEdge("j", "sink")]
        with pytest.raises(GraphError,
                           match=r"node 'a': fan-out under the readonly "
                                 r"discipline needs channel identifiers "
                                 r"\(paper claim C3\)"):
            Graph(nodes=nodes, edges=edges, source=ITEMS,
                  discipline="readonly")

    def test_split_channel_ids_must_be_distinct(self):
        nodes = [GraphNode("source", "source"),
                 GraphNode("s", "split", op="scatter", policy="hash"),
                 GraphNode("b0", "stage", spec=IDENTITY),
                 GraphNode("b1", "stage", spec=IDENTITY),
                 GraphNode("j", "join", op="gather"),
                 GraphNode("sink", "sink")]
        edges = [GraphEdge("source", "s"),
                 GraphEdge("s", "b0", channel=0),
                 GraphEdge("s", "b1", channel=0),  # clash
                 GraphEdge("b0", "j"), GraphEdge("b1", "j"),
                 GraphEdge("j", "sink")]
        with pytest.raises(GraphError,
                           match=r"node 's': duplicate channel id\(s\)"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_discipline_mismatch_inside_a_segment_names_both_edges(self):
        builder = (GraphBuilder(source=ITEMS)
                   .chain(IDENTITY, discipline="readonly")
                   .chain(IDENTITY, discipline="conventional"))
        with pytest.raises(GraphError,
                           match="discipline mismatch: edge .* says "
                                 "'readonly' but edge .* says "
                                 "'conventional'"):
            builder.build()

    def test_unsatisfiable_buffer_bound(self):
        builder = GraphBuilder(
            source=ITEMS, discipline="conventional",
            flow=FlowPolicy(batch=8, buffer_capacity=4),
        ).chain(IDENTITY)
        with pytest.raises(GraphError,
                           match="unsatisfiable buffer bound: conventional "
                                 "pipes of capacity 4 can never hold one "
                                 "batch of 8"):
            builder.build()

    def test_buffer_capacity_is_conventional_only(self):
        builder = GraphBuilder(source=ITEMS, discipline="readonly").chain(
            IDENTITY, buffer_capacity=32)
        with pytest.raises(GraphError,
                           match="buffer_capacity is a "
                                 "conventional-discipline knob"):
            builder.build()

    def test_nested_parallel_blocks_are_rejected(self):
        nodes = [GraphNode("source", "source"),
                 GraphNode("s1", "split", op="broadcast"),
                 GraphNode("s2", "split", op="broadcast"),
                 GraphNode("a", "stage", spec=IDENTITY),
                 GraphNode("b", "stage", spec=IDENTITY),
                 GraphNode("j2", "join", op="gather"),
                 GraphNode("j1", "join", op="gather"),
                 GraphNode("c", "stage", spec=IDENTITY),
                 GraphNode("sink", "sink")]
        edges = [GraphEdge("source", "s1"),
                 GraphEdge("s1", "s2", channel=0),
                 GraphEdge("s1", "c", channel=1),
                 GraphEdge("s2", "a", channel=0),
                 GraphEdge("s2", "b", channel=1),
                 GraphEdge("a", "j2"), GraphEdge("b", "j2"),
                 GraphEdge("j2", "j1"), GraphEdge("c", "j1"),
                 GraphEdge("j1", "sink")]
        with pytest.raises(GraphError, match="nested parallel blocks"):
            Graph(nodes=nodes, edges=edges, source=ITEMS)

    def test_bad_stage_spec_is_positioned(self):
        with pytest.raises(GraphError,
                           match="stage spec must be 'module:factory'"):
            GraphBuilder(source=ITEMS).chain("no_colon_here").build()

    def test_source_is_required(self):
        with pytest.raises(GraphError, match="source is required"):
            GraphBuilder().chain(IDENTITY).build()


class TestBuilderProtocol:
    """The fluent builder polices its own block structure."""

    def test_unclosed_split_fails_build(self):
        builder = GraphBuilder(source=ITEMS).scatter([IDENTITY], [IDENTITY])
        with pytest.raises(GraphError,
                           match="node 'scatter-1': unclosed scatter"):
            builder.build()

    def test_chain_inside_open_block_is_rejected(self):
        builder = GraphBuilder(source=ITEMS).broadcast([IDENTITY], [])
        with pytest.raises(GraphError,
                           match=r"chain\(\) inside an open broadcast block"):
            builder.chain(IDENTITY)

    def test_join_without_split_is_rejected(self):
        with pytest.raises(GraphError,
                           match=r"gather\(\) without a preceding"):
            GraphBuilder(source=ITEMS).gather()

    def test_split_needs_two_branches(self):
        with pytest.raises(GraphError,
                           match=r"scatter\(\) needs at least 2 branches"):
            GraphBuilder(source=ITEMS).scatter([IDENTITY])

    def test_branch_channels_are_assigned_positionally(self):
        graph = (GraphBuilder(source=ITEMS)
                 .scatter([IDENTITY], [], policy="round_robin")
                 .gather()
                 .build())
        split_out = sorted(
            (edge.channel, edge.src, edge.dst)
            for edge in graph.edges
            if edge.src == "scatter-1"
        )
        assert [channel for channel, _, _ in split_out] == [0, 1]

    def test_empty_graph_is_source_to_sink(self):
        graph = GraphBuilder(source=ITEMS).build()
        assert [n.kind for n in graph.nodes] == ["source", "sink"]
        assert graph.run(runtime="sim").output == ITEMS


# -- serialization round-trip ------------------------------------------------


disciplines = st.sampled_from(("readonly", "writeonly", "conventional"))
stage_lists = st.lists(
    st.sampled_from((IDENTITY, UPPER, ("repro.filters:prepend", ["> "]))),
    min_size=0, max_size=3,
)
records = st.lists(st.text(min_size=1, max_size=8), min_size=1, max_size=8)


@st.composite
def graphs(draw):
    discipline = draw(disciplines)
    flow = FlowPolicy(batch=draw(st.integers(1, 4)))
    builder = GraphBuilder(source=draw(records), discipline=discipline,
                           flow=flow, name=draw(st.sampled_from("gh"))
                           ).chain(*draw(stage_lists))
    if draw(st.booleans()):
        op = draw(st.sampled_from(("scatter", "broadcast")))
        branches = draw(st.lists(stage_lists, min_size=2, max_size=3))
        if op == "scatter":
            builder.scatter(*branches,
                            policy=draw(st.sampled_from(SCATTER_POLICIES)))
        else:
            builder.broadcast(*branches)
        getattr(builder, draw(st.sampled_from(("gather", "merge"))))()
        builder.chain(*draw(stage_lists))
    return builder.build()


class TestSpecRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graph=graphs())
    def test_graph_survives_json_round_trip(self, graph):
        spec = graph.to_spec()
        wire = json.dumps(spec, sort_keys=True)      # JSON-portable
        rebuilt = Graph.from_spec(json.loads(wire))
        assert rebuilt.to_spec() == spec
        assert [(n.name, n.kind, n.op, n.policy) for n in rebuilt.nodes] \
            == [(n.name, n.kind, n.op, n.policy) for n in graph.nodes]
        assert rebuilt.edges == graph.edges
        assert rebuilt.discipline == graph.discipline
        assert rebuilt.flow == graph.flow
        assert list(rebuilt.source) == list(graph.source)

    @settings(max_examples=20, deadline=None)
    @given(graph=graphs())
    def test_rebuilt_graph_runs_identically(self, graph):
        original = graph.run(runtime="sim")
        rebuilt = Graph.from_spec(graph.to_spec()).run(runtime="sim")
        assert rebuilt.output == original.output
        assert rebuilt.invocations == original.invocations

    def test_built_transducers_do_not_serialize(self):
        graph = GraphBuilder(source=ITEMS).chain(identity_transducer()).build()
        with pytest.raises(GraphError, match="does not serialize"):
            graph.to_spec()

    def test_malformed_spec_is_rejected(self):
        with pytest.raises(GraphError, match="malformed graph spec"):
            Graph.from_spec({"nodes": [{"kind": "source"}], "edges": []})

    def test_spec_rejects_invalid_topology_too(self):
        """from_spec re-validates: a tampered spec cannot smuggle in a
        graph that the constructor would reject."""
        spec = (GraphBuilder(source=ITEMS).chain(IDENTITY).build()).to_spec()
        spec["edges"].append({"src": "stage-1", "dst": "ghost"})
        with pytest.raises(GraphError, match="dangling edge"):
            Graph.from_spec(spec)
