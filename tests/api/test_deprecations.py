"""The pre-facade entry points still work, but say they are deprecated.

Every old name is a thin shim over its canonical replacement: same
behaviour, same results, plus one :class:`EdenDeprecationWarning`
naming the successor.  Tier-1 runs with these warnings promoted to
errors for repro's own code (see ``pyproject.toml``), so internal
callers cannot quietly regress onto the old vocabulary — these tests
are the only place the shims are exercised on purpose.
"""

import warnings

import pytest

from repro.aio import run_pipeline, stream_pipeline
from repro.compat import EdenDeprecationWarning
from repro.core import Kernel
from repro.net.launch import plan_fleet, plan_pipeline
from repro.transput import (
    build_pipeline,
    compose_pipeline,
    identity_transducer,
)

ITEMS = ["a", "b", "c"]


def test_build_pipeline_warns_and_delegates(kernel):
    with pytest.warns(EdenDeprecationWarning, match="compose_pipeline"):
        built = build_pipeline(
            kernel, "readonly", ITEMS, [identity_transducer()]
        )
    assert built.run_to_completion() == ITEMS


@pytest.mark.parametrize("old, new", [
    ("build_readonly_pipeline", "compose_readonly_pipeline"),
    ("build_writeonly_pipeline", "compose_writeonly_pipeline"),
    ("build_conventional_pipeline", "compose_conventional_pipeline"),
])
def test_every_builder_shim_names_its_successor(old, new):
    import repro.transput as transput

    shim = getattr(transput, old)
    with pytest.warns(EdenDeprecationWarning, match=new):
        built = shim(Kernel(), ITEMS, [identity_transducer()])
    assert built.run_to_completion() == ITEMS


def test_shim_output_matches_canonical(kernel):
    canonical = compose_pipeline(
        Kernel(), "writeonly", ITEMS, [identity_transducer()]
    ).run_to_completion()
    with pytest.warns(EdenDeprecationWarning):
        shimmed = build_pipeline(
            kernel, "writeonly", ITEMS, [identity_transducer()]
        ).run_to_completion()
    assert shimmed == canonical


def test_aio_run_pipeline_warns_and_delegates():
    with pytest.warns(EdenDeprecationWarning, match="stream_pipeline"):
        out = run_pipeline(ITEMS, [identity_transducer()], "readonly")
    assert out == stream_pipeline(ITEMS, [identity_transducer()], "readonly")


@pytest.mark.parametrize("old, new", [
    ("run_readonly", "stream_readonly"),
    ("run_writeonly", "stream_writeonly"),
    ("run_conventional", "stream_conventional"),
])
def test_every_aio_shim_names_its_successor(old, new):
    import asyncio

    import repro.aio as aio

    with pytest.warns(EdenDeprecationWarning, match=new):
        out = asyncio.run(getattr(aio, old)(ITEMS, [identity_transducer()]))
    assert out == ITEMS


def test_plan_pipeline_warns_and_plans_identically(tmp_path):
    spec = [("repro.transput:identity_transducer", [])]
    canonical = plan_fleet("readonly", spec, str(tmp_path / "new"),
                           source_items=ITEMS)
    with pytest.warns(EdenDeprecationWarning, match="plan_fleet"):
        shimmed = plan_pipeline("readonly", spec, str(tmp_path / "old"),
                                source_items=ITEMS)
    assert [plan.role for plan in shimmed] == [plan.role for plan in canonical]


def test_execute_shim_warns(tmp_path):
    # ``execute`` spawns real processes, so drive the smallest possible
    # fleet: source -> sink, no filters, two records.
    from repro.net.launch import execute

    plans = plan_fleet("readonly", [], str(tmp_path),
                       source_items=["x", "y"])
    with pytest.warns(EdenDeprecationWarning, match="run_fleet"):
        result = execute(plans, timeout=60.0)
    assert result.output == ["x", "y"]


def test_canonical_names_do_not_warn(kernel):
    with warnings.catch_warnings():
        warnings.simplefilter("error", EdenDeprecationWarning)
        compose_pipeline(kernel, "readonly", ITEMS,
                         [identity_transducer()]).run_to_completion()
        stream_pipeline(ITEMS, [identity_transducer()], "readonly")
