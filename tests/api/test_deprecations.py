"""The pre-facade and pre-graph entry points still work, but say so.

Every old name is a thin shim over its canonical replacement: same
behaviour, same results, plus one :class:`EdenDeprecationWarning`
naming the successor.  Tier-1 runs with these warnings promoted to
errors for repro's own code (see ``pyproject.toml``), so internal
callers cannot quietly regress onto the old vocabulary — these tests
are the only place the shims are exercised on purpose.

Three generations of front doors are covered: the pre-facade
``build_*`` / ``run_*`` / ``plan_pipeline`` / ``execute`` aliases, and
— new in the graph redesign — the per-runtime dispatchers
``compose_pipeline`` / ``stream_pipeline`` / ``plan_fleet``, whose
canonical successors are the segment-level builders
(``compose_segment`` / ``stream_segment`` / ``plan_linear_fleet``)
driven by :class:`repro.api.Pipeline` and
:class:`repro.api.GraphBuilder`.
"""

import warnings

import pytest

from repro.aio import run_pipeline, stream_pipeline, stream_segment
from repro.compat import EdenDeprecationWarning
from repro.core import Kernel
from repro.net.launch import plan_fleet, plan_linear_fleet, plan_pipeline
from repro.transput import (
    build_pipeline,
    compose_pipeline,
    compose_segment,
    identity_transducer,
)

ITEMS = ["a", "b", "c"]


# -- the three deprecated per-runtime front doors ---------------------------


def test_compose_pipeline_warns_and_delegates(kernel):
    with pytest.warns(EdenDeprecationWarning, match="repro.api.Pipeline"):
        built = compose_pipeline(
            kernel, "readonly", ITEMS, [identity_transducer()]
        )
    assert built.run_to_completion() == ITEMS


def test_stream_pipeline_warns_and_delegates():
    with pytest.warns(EdenDeprecationWarning, match="repro.api.Pipeline"):
        out = stream_pipeline(ITEMS, [identity_transducer()], "readonly")
    assert out == stream_segment(ITEMS, [identity_transducer()], "readonly")


def test_plan_fleet_warns_and_plans_identically(tmp_path):
    spec = [("repro.transput:identity_transducer", [])]
    canonical = plan_linear_fleet("readonly", spec, str(tmp_path / "new"),
                                  source_items=ITEMS)
    with pytest.warns(EdenDeprecationWarning, match="repro.api.Pipeline"):
        shimmed = plan_fleet("readonly", spec, str(tmp_path / "old"),
                             source_items=ITEMS)
    assert [plan.role for plan in shimmed] == [plan.role for plan in canonical]


def test_front_door_hints_name_the_segment_builders():
    """Each migration hint offers the raw segment-level escape hatch."""
    with pytest.warns(EdenDeprecationWarning, match="compose_segment"):
        compose_pipeline(Kernel(), "readonly", ITEMS,
                         [identity_transducer()])
    with pytest.warns(EdenDeprecationWarning, match="stream_segment"):
        stream_pipeline(ITEMS, [identity_transducer()], "readonly")


# -- the pre-facade aliases (still one generation older) --------------------


def test_build_pipeline_warns_and_delegates(kernel):
    with pytest.warns(EdenDeprecationWarning, match="compose_segment"):
        built = build_pipeline(
            kernel, "readonly", ITEMS, [identity_transducer()]
        )
    assert built.run_to_completion() == ITEMS


@pytest.mark.parametrize("old, new", [
    ("build_readonly_pipeline", "compose_readonly_pipeline"),
    ("build_writeonly_pipeline", "compose_writeonly_pipeline"),
    ("build_conventional_pipeline", "compose_conventional_pipeline"),
])
def test_every_builder_shim_names_its_successor(old, new):
    import repro.transput as transput

    shim = getattr(transput, old)
    with pytest.warns(EdenDeprecationWarning, match=new):
        built = shim(Kernel(), ITEMS, [identity_transducer()])
    assert built.run_to_completion() == ITEMS


def test_shim_output_matches_canonical(kernel):
    canonical = compose_segment(
        Kernel(), "writeonly", ITEMS, [identity_transducer()]
    ).run_to_completion()
    with pytest.warns(EdenDeprecationWarning):
        shimmed = build_pipeline(
            kernel, "writeonly", ITEMS, [identity_transducer()]
        ).run_to_completion()
    assert shimmed == canonical


def test_aio_run_pipeline_warns_and_delegates():
    with pytest.warns(EdenDeprecationWarning, match="stream_segment"):
        out = run_pipeline(ITEMS, [identity_transducer()], "readonly")
    assert out == stream_segment(ITEMS, [identity_transducer()], "readonly")


@pytest.mark.parametrize("old, new", [
    ("run_readonly", "stream_readonly"),
    ("run_writeonly", "stream_writeonly"),
    ("run_conventional", "stream_conventional"),
])
def test_every_aio_shim_names_its_successor(old, new):
    import asyncio

    import repro.aio as aio

    with pytest.warns(EdenDeprecationWarning, match=new):
        out = asyncio.run(getattr(aio, old)(ITEMS, [identity_transducer()]))
    assert out == ITEMS


def test_plan_pipeline_warns_and_plans_identically(tmp_path):
    spec = [("repro.transput:identity_transducer", [])]
    canonical = plan_linear_fleet("readonly", spec, str(tmp_path / "new"),
                                  source_items=ITEMS)
    with pytest.warns(EdenDeprecationWarning, match="plan_linear_fleet"):
        shimmed = plan_pipeline("readonly", spec, str(tmp_path / "old"),
                                source_items=ITEMS)
    assert [plan.role for plan in shimmed] == [plan.role for plan in canonical]


def test_execute_shim_warns(tmp_path):
    # ``execute`` spawns real processes, so drive the smallest possible
    # fleet: source -> sink, no filters, two records.
    from repro.net.launch import execute

    plans = plan_linear_fleet("readonly", [], str(tmp_path),
                              source_items=["x", "y"])
    with pytest.warns(EdenDeprecationWarning, match="run_fleet"):
        result = execute(plans, timeout=60.0)
    assert result.output == ["x", "y"]


def test_canonical_names_do_not_warn(kernel, tmp_path):
    with warnings.catch_warnings():
        warnings.simplefilter("error", EdenDeprecationWarning)
        compose_segment(kernel, "readonly", ITEMS,
                        [identity_transducer()]).run_to_completion()
        stream_segment(ITEMS, [identity_transducer()], "readonly")
        plan_linear_fleet("readonly", [], str(tmp_path),
                          source_items=ITEMS)
