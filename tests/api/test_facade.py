"""The repro.api facade: one description, three runtimes, one result.

The parity tests are the API redesign's contract: the same
:class:`~repro.api.Pipeline` must yield the identical records *and* the
identical invocation count — the paper's C1/C2 cost metric — whether it
runs on the simulated kernel, on asyncio coroutines, or as one OS
process per stage over TCP.
"""

import pytest

from repro.analysis import predicted_invocations
from repro.api import DISCIPLINES, RUNTIMES, Pipeline, PipelineResult
from repro.filters import comment_stripper, upper_case
from repro.transput import FlowPolicy, identity_transducer

ITEMS = [f"record-{i}" for i in range(8)]
IDENTITY = "repro.transput:identity_transducer"
N_FILTERS = 3


def identity_pipeline(discipline):
    return Pipeline([IDENTITY] * N_FILTERS, discipline=discipline,
                    source=ITEMS)


class TestParityInProcess:
    """sim == aio for every discipline, cheap enough to run always."""

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_output_and_invocations_match(self, discipline):
        pipeline = identity_pipeline(discipline)
        sim = pipeline.run(runtime="sim")
        aio = pipeline.run(runtime="aio")
        assert sim.output == ITEMS
        assert aio.output == ITEMS
        assert sim.invocations == aio.invocations == predicted_invocations(
            discipline, N_FILTERS, len(ITEMS)
        )

    def test_real_filters_match(self):
        deck = ["C comment", "      keep me", "C another", "      and me"]
        pipeline = Pipeline(
            [("repro.filters:comment_stripper", ["C"]),
             "repro.filters:upper_case"],
            discipline="readonly",
            source=deck,
        )
        sim = pipeline.run(runtime="sim")
        aio = pipeline.run(runtime="aio")
        assert sim.output == aio.output == ["      KEEP ME", "      AND ME"]
        assert sim.invocations == aio.invocations

    def test_transducer_instances_allowed_in_process(self):
        pipeline = Pipeline(
            [comment_stripper("C"), upper_case()],
            discipline="writeonly",
            source=["C x", "      y"],
        )
        assert pipeline.run(runtime="sim").output == ["      Y"]

    # Batching parity: the aio write-side stages forward record-by-record,
    # so only the pull discipline matches the closed form beyond batch=1.
    @pytest.mark.parametrize("discipline", ["readonly"])
    def test_batching_parity(self, discipline):
        pipeline = identity_pipeline(discipline)
        sim = pipeline.run(runtime="sim", batch=4)
        aio = pipeline.run(runtime="aio", batch=4)
        assert sim.output == aio.output == ITEMS
        assert sim.invocations == aio.invocations == predicted_invocations(
            discipline, N_FILTERS, len(ITEMS), batch=4
        )

    def test_result_shape(self):
        result = identity_pipeline("readonly").run(runtime="sim")
        assert isinstance(result, PipelineResult)
        assert result.runtime == "sim"
        assert result.discipline == "readonly"
        assert result.restarts == 0 and result.supervisor == {}
        assert set(result.stats) >= {"counters"}
        per_datum = result.invocations_per_datum(len(ITEMS))
        assert per_datum == result.invocations / len(ITEMS)
        with pytest.raises(ValueError):
            result.invocations_per_datum(0)


class TestParityTcp:
    """The full three-runtime parity matrix, one OS process per stage."""

    @pytest.mark.parametrize("discipline", DISCIPLINES)
    def test_identical_on_all_three_runtimes(self, discipline, tmp_path):
        pipeline = identity_pipeline(discipline)
        results = {
            "sim": pipeline.run(runtime="sim"),
            "aio": pipeline.run(runtime="aio"),
            "tcp": pipeline.run(runtime="tcp", workdir=str(tmp_path),
                                timeout=60),
        }
        predicted = predicted_invocations(discipline, N_FILTERS, len(ITEMS))
        for runtime in RUNTIMES:
            assert results[runtime].output == ITEMS, runtime
            assert results[runtime].invocations == predicted, runtime


class TestValidation:
    """A knob a runtime cannot honour is an error, never a no-op."""

    def test_unknown_runtime(self):
        with pytest.raises(ValueError, match="runtime"):
            identity_pipeline("readonly").run(runtime="threads")

    def test_unknown_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            Pipeline([IDENTITY], discipline="sideways", source=ITEMS)

    def test_source_required(self):
        with pytest.raises(ValueError, match="source"):
            Pipeline([IDENTITY])

    def test_sink_vocabulary(self):
        with pytest.raises(ValueError, match="sink"):
            Pipeline([IDENTITY], source=ITEMS, sink="devnull")
        Pipeline([IDENTITY], source=ITEMS, sink="collect")  # allowed

    @pytest.mark.parametrize("bad_stage", [
        "no_colon_here", 42, ("spec", "args", "extra"), (42, []),
    ])
    def test_bad_stage_specs(self, bad_stage):
        with pytest.raises(ValueError, match="stage"):
            Pipeline([bad_stage], source=ITEMS)

    @pytest.mark.parametrize("runtime", ["sim", "aio"])
    @pytest.mark.parametrize("knob", [
        {"timeout": 5.0}, {"max_restarts": 1}, {"faults": {}},
        {"resume": True}, {"io_timeout": 1.0}, {"trace": True},
        {"workdir": "/tmp/x"},
    ])
    def test_tcp_only_knobs_rejected_elsewhere(self, runtime, knob):
        with pytest.raises(ValueError, match="tcp"):
            identity_pipeline("readonly").run(runtime=runtime, **knob)

    def test_placement_is_simulator_only(self):
        with pytest.raises(ValueError, match="placement"):
            identity_pipeline("readonly").run(runtime="aio",
                                              placement=object())

    def test_tcp_rejects_built_transducers(self, tmp_path):
        pipeline = Pipeline([identity_transducer()], source=ITEMS)
        with pytest.raises(ValueError, match="process boundary"):
            pipeline.run(runtime="tcp", workdir=str(tmp_path))

    def test_flow_knobs_validated_by_policy(self):
        with pytest.raises(ValueError):
            identity_pipeline("readonly").run(runtime="sim", batch=0)
        with pytest.raises(ValueError):
            identity_pipeline("writeonly").run(runtime="sim",
                                               credit_window=0)

    def test_flow_policy_credit_window_resolution(self):
        assert FlowPolicy().effective_credit_window() == 1
        assert FlowPolicy(credit_window=7).effective_credit_window() == 7
        assert FlowPolicy(inbox_capacity=3).effective_credit_window() == 3
        resized = FlowPolicy().with_credit_window(5)
        assert resized.credit_window == 5
