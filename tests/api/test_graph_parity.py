"""Non-linear graphs: identical output and predicted costs, three runtimes.

The acceptance bar for the graph redesign: a diamond (scatter/gather)
and a broadcast/merge topology must produce the *identical* records on
the simulator, on asyncio and on the TCP fleet, and every runtime's
measured invocation total must equal the sum of the per-edge C1/C2
predictions from :func:`repro.analysis.predict_graph_invocations`.
The TCP run is additionally audited by ``eden-trace --verify-once``
per sub-fleet, so exactly-once holds link by link, not just end to
end.  The knob-rejection tests pin the uniform enforcement story:
TCP-only knobs raise the same eager ``ValueError`` whether they arrive
as ``run()`` keywords, per-edge codec settings, or smuggled inside a
``FlowPolicy``.
"""

import pytest

from repro.analysis import predict_edge_invocations, predict_graph_invocations
from repro.api import GraphBuilder, GraphResult, run_graph
from repro.transput import FlowPolicy

IDENTITY = "repro.transput:identity_transducer"
UPPER = "repro.filters:upper_case"
ITEMS = [f"line-{i:02d}" for i in range(8)]


def diamond(policy="round_robin", source=ITEMS):
    """chain -> scatter over two identity branches -> gather -> chain."""
    return (GraphBuilder(source=source, discipline="readonly", name="diamond")
            .chain(IDENTITY)
            .scatter([IDENTITY], [IDENTITY], policy=policy)
            .gather()
            .chain(IDENTITY)
            .build())


def fan(source=ITEMS):
    """broadcast both branches the whole stream, merge round-robin."""
    return (GraphBuilder(source=source, discipline="readonly", name="fan")
            .broadcast([UPPER], [IDENTITY])
            .merge()
            .build())


def predicted_total(graph):
    return sum(p.invocations for p in predict_graph_invocations(graph))


class TestPredictions:
    """The analytic model, before any runtime measures anything."""

    def test_edge_cost_is_ceil_plus_end(self):
        assert predict_edge_invocations("readonly", 8) == 9
        assert predict_edge_invocations("readonly", 8, batch=4) == 3
        assert predict_edge_invocations("writeonly", 0) == 1  # END alone
        assert predict_edge_invocations("conventional", 8) == 18  # both sides

    def test_diamond_prediction_is_per_edge(self):
        # 8 edges: two carry 8 records into the split, four carry the
        # 4+4 round-robin halves, two carry the joined 8 out.
        predictions = predict_graph_invocations(diamond())
        assert len(predictions) == 8
        assert {p.records for p in predictions} == {8, 4}
        assert predicted_total(diamond()) == 4 * 9 + 4 * 5

    def test_broadcast_copies_the_full_count(self):
        predictions = predict_graph_invocations(fan())
        branch = [p for p in predictions if p.segment.endswith(("b0", "b1"))]
        assert all(p.records == len(ITEMS) for p in branch)

    def test_hash_buckets_follow_the_data(self):
        graph = diamond(policy="hash")
        per_branch = [p.records for p in predict_graph_invocations(graph)
                      if p.segment.endswith(("b0", "b1"))]
        assert sum(per_branch) == 2 * len(ITEMS)  # each branch: 2 edges


class TestInProcessParity:
    """sim == aio == analytic prediction, topology by topology."""

    @pytest.mark.parametrize("policy", ["round_robin", "hash"])
    def test_diamond(self, policy):
        graph = diamond(policy=policy)
        sim = graph.run(runtime="sim")
        aio = graph.run(runtime="aio")
        assert sim.output == aio.output
        assert sorted(sim.output) == sorted(ITEMS)
        assert sim.invocations == aio.invocations == predicted_total(graph)
        assert sim.segment_invocations == aio.segment_invocations
        assert set(sim.segment_invocations) == {"seg-0", "scatter-1", "seg-1"}

    def test_broadcast_merge(self):
        graph = fan()
        sim = graph.run(runtime="sim")
        aio = graph.run(runtime="aio")
        assert sim.output == aio.output
        assert len(sim.output) == 2 * len(ITEMS)
        assert sorted(sim.output) == sorted(
            [line.upper() for line in ITEMS] + ITEMS)
        assert sim.invocations == aio.invocations == predicted_total(graph)

    def test_merge_interleaves_round_robin(self):
        # Two full copies, merged one record per branch per round.
        output = fan().run(runtime="sim").output
        assert output[:4] == [ITEMS[0].upper(), ITEMS[0],
                              ITEMS[1].upper(), ITEMS[1]]

    def test_gather_concatenates_in_channel_order(self):
        graph = diamond(policy="round_robin")
        result = graph.run(runtime="sim")
        halves = result.branch_outputs["scatter-1"]
        assert halves == [ITEMS[0::2], ITEMS[1::2]]
        # gather = branch 0 then branch 1, then the tail chain keeps order
        assert result.output == ITEMS[0::2] + ITEMS[1::2]

    def test_batch_knob_scales_per_edge_costs(self):
        graph = (GraphBuilder(source=ITEMS, discipline="readonly",
                              flow=FlowPolicy(batch=4))
                 .chain(IDENTITY)
                 .scatter([IDENTITY], [IDENTITY], policy="round_robin")
                 .gather()
                 .build())
        expected = predicted_total(graph)
        assert expected == 3 * 3 + 4 * 2  # ceil(8/4)+1 and ceil(4/4)+1
        assert graph.run(runtime="sim").invocations == expected
        assert graph.run(runtime="aio").invocations == expected

    def test_result_shape(self):
        result = diamond().run(runtime="sim")
        assert isinstance(result, GraphResult)
        assert result.runtime == "sim"
        assert result.graph == "diamond"
        assert result.restarts == 0
        assert result.stats["counters"]["invocations_sent"] \
            == result.invocations


class TestTcpParity:
    """The same topologies as real OS processes over TCP."""

    def test_diamond_matches_sim_and_prediction(self, tmp_path):
        graph = diamond(policy="round_robin")
        sim = graph.run(runtime="sim")
        # resume=True makes receivers record sequence numbers — the
        # evidence --verify-once audits.
        tcp = graph.run(runtime="tcp", workdir=str(tmp_path), trace=True,
                        resume=True)
        assert tcp.output == sim.output
        assert tcp.invocations == sim.invocations == predicted_total(graph)
        assert tcp.segment_invocations == sim.segment_invocations
        assert tcp.restarts == 0

        # eden-trace audits every sub-fleet: each link of each segment
        # carried its records exactly once.
        from repro.obs.trace_cli import main

        for fleet, expected in [
            ("seg-0", len(ITEMS)),
            ("scatter-1/branch-0", len(ITEMS) // 2),
            ("scatter-1/branch-1", len(ITEMS) // 2),
            ("seg-1", len(ITEMS)),
        ]:
            code = main(["--fleet", str(tmp_path / fleet / "fleet.json"),
                         "--verify-once", str(expected)])
            assert code == 0, f"exactly-once violated in {fleet}"

    def test_broadcast_merge_matches_sim(self, tmp_path):
        graph = fan()
        sim = graph.run(runtime="sim")
        tcp = graph.run(runtime="tcp", workdir=str(tmp_path))
        assert tcp.output == sim.output
        assert tcp.invocations == sim.invocations == predicted_total(graph)
        assert tcp.branch_outputs == sim.branch_outputs


class TestKnobRejection:
    """TCP-only knobs fail eagerly and identically on sim and aio."""

    @pytest.mark.parametrize("runtime", ["sim", "aio"])
    @pytest.mark.parametrize("knob", [
        {"timeout": 5.0}, {"max_restarts": 1}, {"resume": True},
        {"io_timeout": 1.0}, {"trace": True}, {"workdir": "/tmp/x"},
        {"codec": "json"}, {"pipeline_depth": 2}, {"adaptive": True},
        {"flight": "/tmp/flight"},
    ])
    def test_run_knobs_need_the_fleet(self, runtime, knob):
        with pytest.raises(ValueError, match="need the supervised fleet"):
            diamond().run(runtime=runtime, **knob)

    @pytest.mark.parametrize("runtime", ["sim", "aio"])
    def test_per_edge_codec_needs_the_fleet(self, runtime):
        graph = (GraphBuilder(source=ITEMS)
                 .chain(IDENTITY, codec="binary")
                 .build())
        with pytest.raises(ValueError,
                           match=r"edge knob\(s\) need the supervised fleet "
                                 r"\(codec on edge"):
            graph.run(runtime=runtime)

    @pytest.mark.parametrize("runtime", ["sim", "aio"])
    @pytest.mark.parametrize("policy", [
        FlowPolicy(pipeline_depth=2),
        FlowPolicy(adaptive=True),
    ])
    def test_flow_policy_cannot_smuggle_tcp_knobs(self, runtime, policy):
        with pytest.raises(ValueError,
                           match=r"FlowPolicy knob\(s\) .* need the "
                                 r"supervised fleet"):
            diamond().run(runtime=runtime, flow=policy)

    def test_faults_only_address_one_linear_fleet(self, tmp_path):
        with pytest.raises(ValueError, match="only purely linear graphs"):
            diamond().run(runtime="tcp", workdir=str(tmp_path),
                          faults={1: "kill"})

    def test_placement_is_simulator_only(self):
        with pytest.raises(ValueError, match="simulator-only"):
            diamond().run(runtime="aio", placement=object())

    def test_unknown_runtime(self):
        with pytest.raises(ValueError, match="runtime must be one of"):
            run_graph(diamond(), "quantum")

    def test_tcp_rejects_built_transducers_with_segment_name(self, tmp_path):
        from repro.transput import identity_transducer

        graph = GraphBuilder(source=ITEMS).chain(identity_transducer()).build()
        with pytest.raises(ValueError, match="process boundary"):
            graph.run(runtime="tcp", workdir=str(tmp_path))
