"""Devices: terminals, keyboards, printers, windows, clock, workloads."""

import pytest

from repro.devices import (
    ClockSource,
    Keyboard,
    NullSource,
    PassiveReportWindow,
    PrinterServer,
    RandomSource,
    ReportWindow,
    Terminal,
    random_lines,
)
from repro.filesystem import EdenFile
from repro.filters import paginate, identity, with_reports
from repro.transput import (
    CollectorSink,
    ListSource,
    ReadOnlyFilter,
    StreamEndpoint,
    Transfer,
)
from repro.transput.stream import END_TRANSFER
from tests.conftest import run_until_done


class TestTerminal:
    def test_pumps_and_displays(self, kernel):
        source = kernel.create(ListSource, items=["hello", "world"])
        terminal = kernel.create(Terminal, inputs=[source.output_endpoint()])
        run_until_done(kernel, terminal)
        assert terminal.display == ["hello", "world"]
        assert terminal.collected == ["hello", "world"]

    def test_wraps_long_lines(self, kernel):
        source = kernel.create(ListSource, items=["x" * 25])
        terminal = kernel.create(
            Terminal, inputs=[source.output_endpoint()], width=10
        )
        run_until_done(kernel, terminal)
        assert terminal.display == ["x" * 10, "x" * 10, "x" * 5]

    def test_screen_shows_tail(self, kernel):
        source = kernel.create(ListSource, items=[str(i) for i in range(50)])
        terminal = kernel.create(Terminal, inputs=[source.output_endpoint()])
        run_until_done(kernel, terminal)
        assert terminal.screen(lines=3) == ["47", "48", "49"]

    def test_empty_line(self, kernel):
        source = kernel.create(ListSource, items=[""])
        terminal = kernel.create(Terminal, inputs=[source.output_endpoint()])
        run_until_done(kernel, terminal)
        assert terminal.display == [""]

    def test_slow_terminal_throttles(self, kernel):
        source = kernel.create(ListSource, items=["a", "b", "c"])
        terminal = kernel.create(
            Terminal, inputs=[source.output_endpoint()], work_cost=100.0
        )
        run_until_done(kernel, terminal)
        assert kernel.clock.now >= 300.0

    def test_invalid_width(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(Terminal, width=0)


class TestKeyboard:
    def test_scripted_input(self, kernel):
        keyboard = kernel.create(Keyboard, script=["ls", "cat f"])
        sink = kernel.create(
            CollectorSink, inputs=[keyboard.output_endpoint()]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["ls", "cat f"]


class TestPrinter:
    def test_print_from_file(self, kernel):
        """§4: print a file by asking the printer to read from it."""
        f = kernel.create(EdenFile, records=[f"line {i}" for i in range(5)])
        reader = kernel.call_sync(f.uid, "OpenForReading")
        printer = kernel.create(PrinterServer, lines_per_page=3)
        job = kernel.call_sync(
            printer.uid, "PrintFrom", StreamEndpoint(reader, None)
        )
        kernel.run()
        assert job == 1
        assert len(printer.pages) == 2
        assert printer.printed_lines == [f"line {i}" for i in range(5)]

    def test_print_from_paginator(self, kernel):
        """§4's paginated listing: printer <- paginator <- file."""
        f = kernel.create(EdenFile, records=[f"r{i}" for i in range(4)])
        reader = kernel.call_sync(f.uid, "OpenForReading")
        paginator = kernel.create(
            ReadOnlyFilter, transducer=paginate(page_length=2, title="F"),
            inputs=[StreamEndpoint(reader, None)],
        )
        printer = kernel.create(PrinterServer, lines_per_page=100)
        kernel.call_sync(printer.uid, "PrintFrom", paginator.output_endpoint())
        kernel.run()
        # Form feeds split physical pages at the paginator's boundaries.
        assert len(printer.pages) == 2
        assert printer.pages[0][0] == "--- F page 1 ---"

    def test_jobs_queue_and_count(self, kernel):
        a = kernel.create(ListSource, items=["a"])
        b = kernel.create(ListSource, items=["b"])
        printer = kernel.create(PrinterServer)
        kernel.call_sync(printer.uid, "PrintFrom", a.output_endpoint())
        kernel.call_sync(printer.uid, "PrintFrom", b.output_endpoint())
        kernel.run()
        assert kernel.call_sync(printer.uid, "JobCount") == 2
        assert printer.printed_lines == ["a", "b"]

    def test_accepts_bare_uid(self, kernel):
        source = kernel.create(ListSource, items=["x"])
        printer = kernel.create(PrinterServer)
        kernel.call_sync(printer.uid, "PrintFrom", source.uid)
        kernel.run()
        assert printer.printed_lines == ["x"]

    def test_rejects_junk(self, kernel):
        from repro.core.errors import InvocationError

        printer = kernel.create(PrinterServer)
        with pytest.raises(InvocationError):
            kernel.call_sync(printer.uid, "PrintFrom", 42)

    def test_invalid_page_length(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(PrinterServer, lines_per_page=0)


class TestClockSource:
    def test_returns_virtual_time(self, kernel):
        clock = kernel.create(ClockSource)
        first = kernel.call_sync(clock.uid, "Read", 1).items[0]
        assert first.startswith("time=")

    def test_never_ends_use_bounded_sink(self, kernel):
        clock = kernel.create(ClockSource)
        sink = kernel.create(
            CollectorSink, inputs=[clock.output_endpoint()], max_items=4
        )
        run_until_done(kernel, sink)
        assert len(sink.collected) == 4


class TestWorkloadSources:
    def test_random_source_deterministic(self, kernel):
        a = kernel.create(RandomSource, count=5, seed=3)
        b = kernel.create(RandomSource, count=5, seed=3)
        ta = kernel.call_sync(a.uid, "Read", 5).items
        tb = kernel.call_sync(b.uid, "Read", 5).items
        assert ta == tb
        assert len(ta) == 5

    def test_random_lines_matches_width(self):
        lines = random_lines(count=3, width=4, seed=0)
        assert len(lines) == 3
        assert all(len(line.split()) == 4 for line in lines)
        assert random_lines(3, 4, 0) == lines

    def test_random_source_validation(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(RandomSource, count=-1)
        with pytest.raises(ValueError):
            kernel.create(RandomSource, width=0)

    def test_null_source_immediately_ends(self, kernel):
        null = kernel.create(NullSource)
        assert kernel.call_sync(null.uid, "Read", 1).at_end


class TestReportWindows:
    def test_active_window_labels_sources(self, kernel):
        a = kernel.create(ListSource, items=["a1", "a2"])
        b = kernel.create(ListSource, items=["b1"])
        window = kernel.create(
            ReportWindow,
            inputs=[("A", a.output_endpoint()), ("B", b.output_endpoint())],
        )
        run_until_done(kernel, window)
        assert window.lines == ["A: a1", "B: b1", "A: a2"]
        assert window.collected == window.lines

    def test_window_connect_before_run(self, kernel):
        a = kernel.create(ListSource, items=["x"])
        window = kernel.create(ReportWindow)
        window.connect("A", a.output_endpoint())
        run_until_done(kernel, window)
        assert window.lines == ["A: x"]

    def test_window_reads_report_channels(self, kernel):
        source = kernel.create(ListSource, items=["i1", "i2"])
        stage = kernel.create(
            ReadOnlyFilter, transducer=with_reports(identity(), "F", every=1),
            inputs=[source.output_endpoint()],
        )
        window = kernel.create(
            ReportWindow, inputs=[("F", stage.output_endpoint("Report"))]
        )
        sink = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint("Output")]
        )
        run_until_done(kernel, window, sink)
        assert sink.collected == ["i1", "i2"]
        assert window.lines[0] == "F: [F] starting"

    def test_passive_window_counts_ends(self, kernel):
        window = kernel.create(PassiveReportWindow, expected_ends=2)
        kernel.call_sync(window.uid, "Write", Transfer.of(["r1"]))
        kernel.call_sync(window.uid, "Write", END_TRANSFER)
        assert not window.done
        kernel.call_sync(window.uid, "Write", END_TRANSFER)
        assert window.done
        assert window.lines == ["r1"]


class TestTerminalShowFrom:
    """Dynamic redirection at the device (§6)."""

    def test_show_from_endpoint(self, kernel):
        terminal = kernel.create(Terminal)
        source = kernel.create(ListSource, items=["hello"])
        kernel.call_sync(terminal.uid, "ShowFrom", source.output_endpoint())
        kernel.run()
        assert terminal.display == ["hello"]
        assert terminal.done

    def test_show_from_bare_uid(self, kernel):
        terminal = kernel.create(Terminal)
        source = kernel.create(ListSource, items=["x"])
        kernel.call_sync(terminal.uid, "ShowFrom", source.uid)
        kernel.run()
        assert terminal.display == ["x"]

    def test_sequential_jobs_append(self, kernel):
        terminal = kernel.create(Terminal)
        for text in ("one", "two"):
            source = kernel.create(ListSource, items=[text])
            kernel.call_sync(terminal.uid, "ShowFrom", source.output_endpoint())
            kernel.run()
        assert terminal.display == ["one", "two"]

    def test_redirect_from_file_and_from_filter_look_identical(self, kernel):
        """§4: "there is no distinction between input redirection from
        a file and from a program"."""
        from repro.filesystem import EdenFile
        from repro.filters import upper_case
        from repro.transput import ReadOnlyFilter

        terminal = kernel.create(Terminal)
        f = kernel.create(EdenFile, records=["data"])
        reader = kernel.call_sync(f.uid, "OpenForReading")
        kernel.call_sync(terminal.uid, "ShowFrom", reader)
        kernel.run()

        reader2 = kernel.call_sync(f.uid, "OpenForReading")
        stage = kernel.create(
            ReadOnlyFilter, transducer=upper_case(),
            inputs=[StreamEndpoint(reader2, None)],
        )
        kernel.call_sync(terminal.uid, "ShowFrom", stage.output_endpoint())
        kernel.run()
        assert terminal.display == ["data", "DATA"]

    def test_show_from_junk_rejected(self, kernel):
        from repro.core.errors import InvocationError

        terminal = kernel.create(Terminal)
        with pytest.raises(InvocationError):
            kernel.call_sync(terminal.uid, "ShowFrom", 42)
