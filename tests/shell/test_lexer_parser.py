"""Shell lexing and parsing."""

import pytest

from repro.core.errors import ShellSyntaxError
from repro.shell import parse_line, tokenize
from repro.shell.ast import AssignStmt, PipelineStmt, SetStmt, ShowStmt


class TestLexer:
    def test_words_and_pipes(self):
        tokens = tokenize("a | b c")
        assert [(t.kind, t.value) for t in tokens] == [
            ("WORD", "a"), ("PIPE", "|"), ("WORD", "b"), ("WORD", "c"),
        ]

    def test_quoted_strings(self):
        tokens = tokenize("echo 'one two' \"three\"")
        assert [t.value for t in tokens] == ["echo", "one two", "three"]

    def test_channel_redirect_token(self):
        tokens = tokenize("f Report> win")
        assert tokens[1].kind == "REDIRECT"
        assert tokens[1].value == "Report"

    def test_numeric_redirect(self):
        tokens = tokenize("f 2> errs")
        assert tokens[1] == type(tokens[1])("REDIRECT", "2", 2)

    def test_plain_redirect(self):
        tokens = tokenize("f > out")
        assert tokens[1].kind == "REDIRECT" and tokens[1].value == ""

    def test_comment_ignored(self):
        assert tokenize("a b # comment | c") [-1].value == "b"

    def test_semicolons(self):
        tokens = tokenize("a; b")
        assert [t.kind for t in tokens] == ["WORD", "SEMI", "WORD"]

    def test_regex_chars_in_words(self):
        tokens = tokenize(r"grep ^x.*$ | upper")
        assert tokens[1].value == "^x.*$"

    def test_unterminated_string(self):
        with pytest.raises(ShellSyntaxError, match="unterminated"):
            tokenize("echo 'oops")

    def test_stray_character(self):
        with pytest.raises(ShellSyntaxError, match="unexpected"):
            tokenize("a & b")


class TestParser:
    def test_pipeline(self):
        (stmt,) = parse_line("src | upper | number").statements
        assert isinstance(stmt, PipelineStmt)
        assert stmt.source.command == "src"
        assert [s.command for s in stmt.stages] == ["upper", "number"]

    def test_stage_args(self):
        (stmt,) = parse_line("src | grep 'a b' | head 3").statements
        assert stmt.stages[0].args == ("a b",)
        assert stmt.stages[1].args == ("3",)

    def test_redirects(self):
        (stmt,) = parse_line("src | report F Report> win > out").statements
        channels = {r.channel: r.target for r in stmt.redirects}
        assert channels == {"Report": "win", "": "out"}
        assert stmt.primary_target() == "out"

    def test_no_primary_target(self):
        (stmt,) = parse_line("src | upper").statements
        assert stmt.primary_target() is None

    def test_assignment(self):
        (stmt,) = parse_line('x = echo "a" b').statements
        assert isinstance(stmt, AssignStmt)
        assert stmt.name == "x"
        assert stmt.words == ("a", "b")

    def test_set(self):
        (stmt,) = parse_line("set discipline writeonly").statements
        assert isinstance(stmt, SetStmt)
        assert (stmt.option, stmt.value) == ("discipline", "writeonly")

    def test_show(self):
        (stmt,) = parse_line("show out").statements
        assert isinstance(stmt, ShowStmt)
        assert stmt.name == "out"

    def test_multiple_statements(self):
        script = parse_line("x = echo a; x | upper")
        assert len(script.statements) == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "| upper",          # empty source stage
            "src | | upper",    # empty middle stage
            "src | upper >",    # redirect with no target
            "set discipline",   # set needs two args
            "show",             # show needs a name
            "show a b",         # show takes one name
            "src > out > out",  # duplicate primary redirect
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ShellSyntaxError):
            parse_line(bad)

    def test_source_only_pipeline_allowed(self):
        (stmt,) = parse_line("src").statements
        assert isinstance(stmt, PipelineStmt)
        assert stmt.stages == ()
