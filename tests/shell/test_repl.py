"""The interactive REPL loop."""

import io

from repro.shell import Shell
from repro.shell.repl import run_repl


def repl(script: str, shell: Shell | None = None):
    out = io.StringIO()
    shell = run_repl(io.StringIO(script), out, shell=shell, prompt=False)
    return shell, out.getvalue()


class TestRepl:
    def test_pipeline_output_printed(self):
        _, output = repl('x = echo hello world\nx | upper\n')
        assert "HELLO" in output and "WORLD" in output
        assert "invocations" in output

    def test_redirect_summarized(self):
        _, output = repl('x = echo a\nx | upper > loud\n')
        assert "redirected: loud" in output

    def test_show_and_env(self):
        shell, output = repl('x = echo a b\nx | upper > loud\nshow loud\nenv\n')
        assert "A" in output
        assert "loud (2 lines)" in output
        assert "x (2 lines)" in output
        assert shell.env["loud"] == ["A", "B"]

    def test_stats_listed(self):
        _, output = repl('x = echo a\nx | cat\nstats\n')
        assert "invocations_sent" in output

    def test_help(self):
        _, output = repl("help\n")
        assert "set discipline" in output
        assert "strip-comments" in output

    def test_errors_reported_not_fatal(self):
        _, output = repl('nosuch | upper\nx = echo ok\nx | cat\n')
        assert "error:" in output
        assert "ok" in output

    def test_exit_stops(self):
        _, output = repl('exit\nx = echo never\nx | cat\n')
        assert "never" not in output

    def test_blank_lines_skipped(self):
        _, output = repl("\n\n  \nexit\n")
        assert output == ""

    def test_session_state_persists(self):
        shell = Shell()
        repl("x = echo 1 2 3\n", shell=shell)
        _, output = repl("x | wc\n", shell=shell)
        assert "3" in output

    def test_eof_ends_loop(self):
        _, output = repl("")  # immediate EOF
        assert output == ""
