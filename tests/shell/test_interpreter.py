"""Shell execution against the simulated kernel."""

import pytest

from repro.core.errors import ShellNameError, ShellSyntaxError
from repro.shell import BUILTINS, Shell, build_transducer

DECK = 'prog = echo "C one" "  alpha  " "C two" "beta" "gamma"'


@pytest.fixture
def shell():
    sh = Shell()
    sh.execute(DECK)
    return sh


class TestBasics:
    def test_simple_pipeline(self, shell):
        result = shell.execute_one("prog | strip-comments C | strip")
        assert result.output == ["alpha", "beta", "gamma"]
        assert result.invocations > 0
        assert result.discipline == "readonly"

    def test_echo_inline_source(self, shell):
        result = shell.execute_one("prog | head 1")
        assert result.output == ["C one"]

    def test_source_only(self, shell):
        result = shell.execute_one("prog")
        assert len(result.output) == 5

    def test_define_api(self):
        sh = Shell()
        sh.define("xs", ["1", "2"])
        assert sh.execute_one("xs | number").output == [
            "     1  1", "     2  2"
        ]

    def test_show(self, shell):
        shell.execute_one("prog | upper > shouted")
        assert shell.execute_one("show shouted") == [
            "C ONE", "  ALPHA  ", "C TWO", "BETA", "GAMMA"
        ]

    def test_lines_helper(self, shell):
        result = shell.execute_one("prog | wc")
        assert len(result.lines()) == 1


class TestRedirection:
    def test_primary_redirect_binds_and_silences(self, shell):
        result = shell.execute_one("prog | upper > out")
        assert result.output == []
        assert shell.env["out"][0] == "C ONE"

    def test_channel_redirect(self, shell):
        result = shell.execute_one(
            "prog | report F1 2 | upper Report> win > out"
        )
        assert shell.env["win"][0] == "[F1] starting"
        assert shell.env["out"][0] == "C ONE"
        assert result.redirected["win"] == shell.env["win"]

    def test_positional_channel_redirect(self, shell):
        shell.execute_one("prog | report lbl 2 | upper 1> reports")
        assert shell.env["reports"][0] == "[lbl] starting"

    def test_unknown_channel_rejected(self, shell):
        with pytest.raises(ShellNameError, match="channel"):
            shell.execute_one("prog | upper Report> win")


class TestDisciplines:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_same_output_everywhere(self, shell, discipline):
        shell.execute_one(f"set discipline {discipline}")
        result = shell.execute_one("prog | strip-comments C | strip | sort")
        assert result.output == ["alpha", "beta", "gamma"]
        assert result.discipline == discipline

    def test_channel_redirect_in_writeonly(self, shell):
        shell.execute_one("set discipline writeonly")
        shell.execute_one("prog | report F 2 | upper Report> win > out")
        assert shell.env["win"][0] == "[F] starting"

    def test_channel_redirect_in_conventional(self, shell):
        shell.execute_one("set discipline conventional")
        shell.execute_one("prog | report F 2 | upper Report> win > out")
        assert shell.env["win"][0] == "[F] starting"

    def test_readonly_cheaper_than_conventional(self, shell):
        readonly = shell.execute_one("prog | upper | strip").invocations
        shell.execute_one("set discipline conventional")
        conventional = shell.execute_one("prog | upper | strip").invocations
        assert readonly < conventional

    def test_bad_discipline_rejected(self, shell):
        with pytest.raises(ShellSyntaxError):
            shell.execute_one("set discipline psychic")

    def test_bad_option_rejected(self, shell):
        with pytest.raises(ShellSyntaxError):
            shell.execute_one("set color blue")


class TestErrors:
    def test_unknown_source(self, shell):
        with pytest.raises(ShellNameError, match="unknown source"):
            shell.execute_one("ghost | upper")

    def test_unknown_filter(self, shell):
        with pytest.raises(ShellNameError, match="unknown filter"):
            shell.execute_one("prog | frobnicate")

    def test_source_with_args_rejected(self, shell):
        with pytest.raises(ShellSyntaxError):
            shell.execute_one("prog extra | upper")

    def test_show_unknown(self, shell):
        with pytest.raises(ShellNameError):
            shell.execute_one("show nothing")

    def test_execute_one_rejects_multi(self, shell):
        with pytest.raises(ShellSyntaxError):
            shell.execute_one("prog | upper; prog | lower")

    def test_history_recorded(self, shell):
        shell.execute_one("prog | upper")
        assert DECK in shell.history[0]


class TestBuiltins:
    def test_catalogue_is_complete(self):
        expected = {
            "strip-comments", "grep", "delete", "sub", "between", "tr",
            "prepend", "report", "paginate", "upper", "lower", "strip",
            "reverse", "number", "wc", "sort", "uniq", "pretty", "cat",
            "head", "tail", "fold", "expand",
        }
        assert expected <= set(BUILTINS)

    @pytest.mark.parametrize(
        "command, args",
        [
            ("upper", ("x",)),          # takes no args
            ("grep", ()),               # needs a pattern
            ("grep", ("a", "b")),       # too many
            ("sub", ("only",)),         # needs two
            ("head", ()),               # needs a number
            ("head", ("NaN",)),         # not a number
            ("tr", ("abc",)),           # needs two alphabets
            ("report", ("a", "b", "c")),
        ],
    )
    def test_arg_validation(self, command, args):
        with pytest.raises((ShellSyntaxError, ShellNameError)):
            build_transducer(command, args)

    def test_every_builtin_instantiates(self):
        samples = {
            "strip-comments": ("C",), "grep": ("x",), "delete": ("x",),
            "sub": ("a", "b"), "between": ("a", "b"), "tr": ("ab", "cd"),
            "prepend": (">",), "report": ("L", "3"), "paginate": ("10", "T"),
            "head": ("2",), "tail": ("2",), "fold": (), "expand": (),
            "cut": ("0", "1"), "paste": ("2",),
        }
        for command in BUILTINS:
            build_transducer(command, samples.get(command, ()))


class TestRunScript:
    def test_multi_line_script(self):
        sh = Shell()
        results = sh.run_script(
            """
            # a small session
            deck = echo "C x" "keep"
            deck | strip-comments C > clean
            show clean
            """
        )
        assert results[-1] == ["keep"]
        assert sh.env["clean"] == ["keep"]

    def test_blank_and_comment_lines_skipped(self):
        sh = Shell()
        assert sh.run_script("\n\n# nothing\n") == []


class TestFlowOptions:
    def test_batch_reduces_invocations(self):
        sh = Shell()
        sh.define("xs", [str(i) for i in range(32)])
        base = sh.execute_one("xs | cat").invocations
        sh.execute_one("set batch 8")
        batched = sh.execute_one("xs | cat").invocations
        assert batched < base / 4
        assert sh.execute_one("xs | cat").output == [
            str(i) for i in range(32)
        ]

    def test_lookahead_same_output(self):
        sh = Shell()
        sh.define("xs", ["a", "b", "c"])
        sh.execute_one("set lookahead 4")
        assert sh.execute_one("xs | upper").output == ["A", "B", "C"]

    def test_option_validation(self):
        sh = Shell()
        with pytest.raises(ShellSyntaxError):
            sh.execute_one("set batch zero")
        with pytest.raises(ShellSyntaxError):
            sh.execute_one("set batch 0")
        with pytest.raises(ShellSyntaxError):
            sh.execute_one("set lookahead -1")
