"""End-to-end scenarios crossing every subsystem."""

import pytest

from repro.analysis import predicted_invocations
from repro.core import Kernel, TransportCosts
from repro.core.errors import EjectCrashedError, ProcessFailedError
from repro.devices import PrinterServer, ReportWindow, Terminal
from repro.filesystem import (
    Directory,
    DirectoryConcatenator,
    EdenFile,
    HostFileSystem,
    UnixFileSystem,
)
from repro.filters import (
    comment_stripper,
    grep,
    number_lines,
    paginate,
    identity,
    with_reports,
    upper_case,
)
from repro.shell import Shell
from repro.transput import (
    CollectorSink,
    FlowPolicy,
    ReadOnlyFilter,
    StreamEndpoint,
    compose_segment,
    compose_readonly_pipeline,
)
from tests.conftest import run_until_done


class TestDocumentWorkflow:
    """The full §4 story: Unix file -> Eden filters -> devices."""

    def test_bootstrap_filter_print_and_report(self):
        kernel = Kernel()
        hostfs = HostFileSystem()
        hostfs.mkdir("/src")
        hostfs.write_file(
            "/src/prog.f",
            [f"C comment {i}" if i % 2 else f"      stmt {i}"
             for i in range(20)],
        )
        unixfs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(unixfs.uid, "NewStream", "/src/prog.f")

        stripper = kernel.create(
            ReadOnlyFilter,
            transducer=with_reports(comment_stripper("C"), "strip", every=5),
            inputs=[StreamEndpoint(stream, None)],
        )
        paginator = kernel.create(
            ReadOnlyFilter,
            transducer=paginate(page_length=4, title="PROG"),
            inputs=[stripper.output_endpoint("Output")],
        )
        printer = kernel.create(PrinterServer, lines_per_page=100)
        window = kernel.create(
            ReportWindow,
            inputs=[("strip", stripper.output_endpoint("Report"))],
        )
        kernel.call_sync(printer.uid, "PrintFrom", paginator.output_endpoint())
        kernel.run()

        assert len(printer.pages) == 3  # 10 statements / 4 per page
        assert printer.pages[0][0] == "--- PROG page 1 ---"
        assert any("done" in line for line in window.lines)

    def test_round_trip_back_to_unix(self):
        kernel = Kernel()
        hostfs = HostFileSystem()
        hostfs.mkdir("/data")
        hostfs.write_file("/data/in", ["b", "a", "c"])
        unixfs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(unixfs.uid, "NewStream", "/data/in")
        shout = kernel.create(
            ReadOnlyFilter, transducer=upper_case(),
            inputs=[StreamEndpoint(stream, None)],
        )
        kernel.call_sync(
            unixfs.uid, "UseStream", "/data/out", shout.output_endpoint()
        )
        kernel.run()
        assert hostfs.read_file("/data/out") == ["B", "A", "C"]


class TestNamingAndPrinting:
    def test_lookup_through_path_then_print(self):
        kernel = Kernel()
        system_dir = kernel.create(Directory, name="system")
        user_dir = kernel.create(Directory, name="user")
        report = kernel.create(EdenFile, records=["r1", "r2"], name="report")
        kernel.call_sync(user_dir.uid, "AddEntry", "report", report.uid)
        path = kernel.create(
            DirectoryConcatenator,
            directories=[system_dir.uid, user_dir.uid],
        )
        found = kernel.call_sync(path.uid, "Lookup", "report")
        reader = kernel.call_sync(found, "OpenForReading")
        terminal = kernel.create(
            Terminal, inputs=[StreamEndpoint(reader, None)]
        )
        run_until_done(kernel, terminal)
        assert terminal.display == ["r1", "r2"]


class TestDistributedPipelines:
    def test_sixteen_stage_pipeline_matches_model(self):
        """A long pipeline: measured invocations == the paper's formula."""
        kernel = Kernel()
        pipeline = compose_segment(
            kernel, "readonly", [f"r{i}" for i in range(25)],
            [identity() for _ in range(16)],
        )
        pipeline.run_to_completion()
        assert pipeline.invocations_used() == predicted_invocations(
            "readonly", 16, 25
        )

    def test_cross_node_pipeline_with_lookahead(self):
        kernel = Kernel(costs=TransportCosts(local_latency=1.0,
                                             remote_latency=8.0))
        pipeline = compose_readonly_pipeline(
            kernel, [f"r{i}" for i in range(30)],
            [grep("r"), upper_case(), number_lines()],
            placement="spread",
            flow=FlowPolicy(lookahead=6),
        )
        out = pipeline.run_to_completion()
        assert len(out) == 30
        assert out[0].endswith("R0")

    def test_node_crash_fails_pipeline_cleanly(self):
        kernel = Kernel()
        pipeline = compose_readonly_pipeline(
            kernel, ["a", "b"], [upper_case(), upper_case()],
            placement="spread",
        )
        kernel.crash_node("pipe-1")
        with pytest.raises(ProcessFailedError) as excinfo:
            pipeline.run_to_completion()
        assert isinstance(excinfo.value.cause, EjectCrashedError)


class TestShellDrivesTheWholeSystem:
    def test_session_with_all_disciplines(self):
        shell = Shell()
        shell.execute('src = echo "C x" "hello" "world" "hello"')
        outputs = {}
        for discipline in ("readonly", "writeonly", "conventional"):
            shell.execute_one(f"set discipline {discipline}")
            outputs[discipline] = shell.execute_one(
                "src | strip-comments C | sort | uniq"
            ).output
        assert (
            outputs["readonly"] == outputs["writeonly"]
            == outputs["conventional"] == ["hello", "world"]
        )

    def test_shared_kernel_accumulates_state(self):
        kernel = Kernel()
        shell = Shell(kernel=kernel)
        shell.execute('a = echo "1" "2"')
        shell.execute_one("a | number > numbered")
        before = kernel.stats.get("ejects_created")
        shell.execute_one("numbered | upper")
        assert kernel.stats.get("ejects_created") > before


class TestDurabilityAcrossSubsystems:
    def test_directory_of_checkpointed_files_survives_node_crash(self):
        kernel = Kernel()
        vax = kernel.node("vax3")
        directory = kernel.create(Directory, node=vax)
        files = []
        for index in range(3):
            f = kernel.create(
                EdenFile, records=[f"content-{index}"], node=vax
            )
            kernel.call_sync(f.uid, "Commit")
            kernel.call_sync(directory.uid, "AddEntry", f"f{index}", f.uid)
            files.append(f)
        kernel.call_sync(directory.uid, "Commit")
        kernel.crash_node("vax3")
        kernel.recover_node("vax3")
        # Everything reactivates on demand, entries intact.
        for index in range(3):
            uid = kernel.call_sync(directory.uid, "Lookup", f"f{index}")
            assert kernel.call_sync(uid, "Contents") == [f"content-{index}"]

    def test_pipeline_over_recovered_file(self):
        kernel = Kernel()
        f = kernel.create(EdenFile, records=["C gone", "kept"])
        kernel.call_sync(f.uid, "Commit")
        kernel.crash_eject(f.uid)
        reader = kernel.call_sync(f.uid, "OpenForReading")
        pipeline_sink = kernel.create(
            CollectorSink,
            inputs=[StreamEndpoint(reader, None)],
        )
        run_until_done(kernel, pipeline_sink)
        assert pipeline_sink.collected == ["C gone", "kept"]
