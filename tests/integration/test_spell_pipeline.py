"""The classic `spell` pipeline, built from this library's parts.

Johnson's original Unix spell was itself a pipeline — normalize, sort,
unique, compare against a dictionary — i.e. exactly the §3 filter
catalogue composed.  We build it in all three disciplines and check
they agree with the functional reference.
"""

import pytest

from repro.core import Kernel
from repro.filters import SpellChecker, lower_case, sort_lines, unique_adjacent
from repro.transput import compose_segment, compose_apply, make_transducer

DOCUMENT = [
    "The Eden sistem is an object oriented system",
    "Each EJECT has a unique identifier",
    "the kernel delivers invocations to each ejectt",
]

DICTIONARY = [
    "the", "eden", "system", "is", "an", "object", "oriented", "each",
    "eject", "has", "a", "unique", "identifier", "kernel", "delivers",
    "invocations", "to",
]


def words():
    """Split lines into words (the tr step of classic spell)."""
    return make_transducer(lambda line: tuple(str(line).split()),
                           name="words")


def spell_stages():
    return [
        words(),
        lower_case(),
        sort_lines(),
        unique_adjacent(),
        SpellChecker(dictionary=DICTIONARY),
    ]


EXPECTED = ["ejectt", "sistem"]


class TestSpellPipeline:
    def test_reference_semantics(self):
        assert compose_apply(spell_stages(), DOCUMENT) == EXPECTED

    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_all_disciplines_find_the_same_typos(self, discipline):
        kernel = Kernel()
        pipeline = compose_segment(
            kernel, discipline, DOCUMENT, spell_stages()
        )
        assert pipeline.run_to_completion() == EXPECTED

    def test_clean_document_is_silent(self):
        kernel = Kernel()
        clean = ["the eden system", "each eject has a unique identifier"]
        pipeline = compose_segment(kernel, "readonly", clean, spell_stages())
        assert pipeline.run_to_completion() == []

    def test_aio_runtime_agrees(self):
        from repro.aio import stream_segment

        assert stream_segment(DOCUMENT, spell_stages(),
                            discipline="readonly") == EXPECTED
