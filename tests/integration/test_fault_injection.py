"""Systematic fault injection: crash every component, at every phase.

The substrate promises clean failure (errors, not hangs) and
checkpoint-bounded recovery; these tests walk a pipeline's components
and crash each one before, during and after the stream flows.
"""

import pytest

from repro.core import Kernel
from repro.core.errors import (
    EjectCrashedError,
    ProcessFailedError,
)
from repro.filters import upper_case
from repro.filesystem import EdenFile
from repro.transput import (
    ActiveSource,
    CollectorSink,
    ListSource,
    PassiveBuffer,
    PassiveSink,
    StreamEndpoint,
    Transfer,
    WriteOnlyFilter,
    compose_readonly_pipeline,
)

ITEMS = [f"r{i}" for i in range(8)]


def fresh_pipeline(kernel):
    return compose_readonly_pipeline(
        kernel, ITEMS, [upper_case(), upper_case()]
    )


class TestCrashEveryReadonlyStage:
    @pytest.mark.parametrize("victim_index", [0, 1, 2])
    def test_crash_before_flow(self, victim_index):
        """Crash each of source/filter1/filter2 before anything runs."""
        kernel = Kernel()
        pipeline = fresh_pipeline(kernel)
        victims = [pipeline.source, *pipeline.filters]
        kernel.crash_eject(victims[victim_index].uid)
        with pytest.raises(ProcessFailedError) as excinfo:
            pipeline.run_to_completion()
        assert isinstance(excinfo.value.cause, EjectCrashedError)

    @pytest.mark.parametrize("victim_index", [0, 1, 2])
    def test_crash_mid_stream(self, victim_index):
        kernel = Kernel()
        pipeline = fresh_pipeline(kernel)
        victims = [pipeline.source, *pipeline.filters]
        # Let a few records through, then pull the rug.
        kernel.run(
            until=lambda: len(pipeline.sink.collected) >= 3,
            max_steps=100_000,
        )
        kernel.crash_eject(victims[victim_index].uid)
        with pytest.raises(ProcessFailedError) as excinfo:
            pipeline.run_to_completion()
        assert isinstance(excinfo.value.cause, EjectCrashedError)
        # What got through before the crash is intact and in order.
        assert pipeline.sink.collected == [
            item.upper() for item in ITEMS[: len(pipeline.sink.collected)]
        ]

    def test_crash_after_completion_is_harmless(self):
        kernel = Kernel()
        pipeline = fresh_pipeline(kernel)
        output = pipeline.run_to_completion()
        kernel.crash_eject(pipeline.filters[0].uid)
        assert output == [item.upper() for item in ITEMS]


class TestWriteOnlyFaults:
    def test_sink_crash_fails_the_pushers(self):
        kernel = Kernel()
        sink = kernel.create(PassiveSink, work_cost=5.0)  # slow
        stage = kernel.create(
            WriteOnlyFilter, transducer=upper_case(),
            outputs=[StreamEndpoint(sink.uid, None)],
        )
        kernel.create(
            ActiveSource, items=ITEMS,
            outputs=[StreamEndpoint(stage.uid, None)],
        )
        kernel.run(until=lambda: len(sink.collected) >= 2, max_steps=100_000)
        kernel.crash_eject(sink.uid)
        with pytest.raises(ProcessFailedError) as excinfo:
            kernel.run()
        assert isinstance(excinfo.value.cause, EjectCrashedError)

    def test_buffer_crash_fails_both_sides(self):
        kernel = Kernel()
        buffer = kernel.create(PassiveBuffer, capacity=2)
        kernel.call_sync(buffer.uid, "Write", Transfer.of([1, 2]))
        kernel.crash_eject(buffer.uid)
        with pytest.raises(EjectCrashedError):
            kernel.call_sync(buffer.uid, "Read", 1)
        with pytest.raises(EjectCrashedError):
            kernel.call_sync(buffer.uid, "Write", Transfer.single(3))


class TestRecoveryPaths:
    def test_checkpointed_source_resumes_pipeline(self):
        """A durable source crashes mid-stream; a new sink drains the
        reactivated instance from its checkpointed position."""
        kernel = Kernel()
        source = kernel.create(ListSource, items=ITEMS)
        # Read three records, checkpoint (position saved), crash.
        for _ in range(3):
            kernel.call_sync(source.uid, "Read", 1)

        def save():
            yield source.checkpoint()

        process = kernel.scheduler.spawn(save(), name="saver", owner=source)
        kernel.run(until=lambda: not process.alive)
        kernel.crash_eject(source.uid)
        sink = kernel.create(
            CollectorSink, inputs=[source.output_endpoint()]
        )
        kernel.run(until=lambda: sink.done)
        kernel.run()
        assert sink.collected == ITEMS[3:]

    def test_double_crash_still_recovers_to_checkpoint(self):
        kernel = Kernel()
        f = kernel.create(EdenFile, records=["stable"])
        kernel.call_sync(f.uid, "Commit")
        for _ in range(2):
            kernel.crash_eject(f.uid)
            assert kernel.call_sync(f.uid, "Contents") == ["stable"]
        assert kernel.stats.get("ejects_activated") == 2

    def test_crash_storm_on_node(self):
        """Crash/recover a whole node repeatedly; durable residents
        keep answering, volatile ones stay gone."""
        kernel = Kernel()
        node = kernel.node("flaky")
        durable = kernel.create(EdenFile, records=["d"], node=node)
        kernel.call_sync(durable.uid, "Commit")
        volatile = kernel.create(EdenFile, records=["v"], node=node)
        for _ in range(3):
            kernel.crash_node("flaky")
            kernel.recover_node("flaky")
            assert kernel.call_sync(durable.uid, "Contents") == ["d"]
            with pytest.raises(EjectCrashedError):
                kernel.call_sync(volatile.uid, "Contents")
