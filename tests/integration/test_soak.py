"""Soak tests: larger topologies, exact counts at scale."""

import pytest

from repro.analysis import predicted_invocations
from repro.core import Kernel
from repro.filters import grep, sort_lines, unique_adjacent, upper_case
from repro.transput import FlowPolicy, compose_segment, compose_apply
from repro.devices import random_lines


@pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                        "conventional"])
def test_thousand_records_ten_stages_exact(discipline):
    """1000 records through 10 identity stages: counts exact at scale."""
    from repro.transput.filterbase import identity_transducer

    kernel = Kernel()
    items = [f"record-{index}" for index in range(1000)]
    pipeline = compose_segment(
        kernel, discipline, items,
        [identity_transducer() for _ in range(10)],
    )
    output = pipeline.run_to_completion(max_steps=None)
    assert output == items
    assert pipeline.invocations_used() == predicted_invocations(
        discipline, 10, 1000
    )


def test_wide_fan_in_then_processing():
    """Sixteen sources fanned into one filter, then a real filter chain."""
    from repro.transput import CollectorSink, ListSource, ReadOnlyFilter

    kernel = Kernel()
    sources = [
        kernel.create(ListSource, items=random_lines(20, seed=index))
        for index in range(16)
    ]
    merger = kernel.create(
        ReadOnlyFilter,
        inputs=[source.output_endpoint() for source in sources],
        input_strategy="round_robin",
    )
    chain = kernel.create(
        ReadOnlyFilter, transducer=grep("stream"),
        inputs=[merger.output_endpoint()],
    )
    sink = kernel.create(CollectorSink, inputs=[chain.output_endpoint()])
    kernel.run(until=lambda: sink.done, max_steps=None)
    kernel.run(max_steps=None)
    everything = [
        line for index in range(16) for line in random_lines(20, seed=index)
    ]
    assert sorted(sink.collected) == sorted(
        line for line in everything if "stream" in line
    )


def test_mixed_workload_repeated_runs_are_identical():
    """A non-trivial pipeline re-run from scratch twice: identical
    output, counts and virtual time (whole-system determinism)."""

    def run():
        kernel = Kernel()
        items = random_lines(200, seed=5)
        pipeline = compose_segment(
            kernel, "readonly", items,
            [grep("eject"), upper_case(), sort_lines(), unique_adjacent()],
            flow=FlowPolicy(lookahead=4, batch=3),
        )
        output = pipeline.run_to_completion(max_steps=None)
        return output, pipeline.invocations_used(), pipeline.virtual_makespan

    first, second = run(), run()
    assert first == second
    reference = compose_apply(
        [grep("eject"), upper_case(), sort_lines(), unique_adjacent()],
        random_lines(200, seed=5),
    )
    assert first[0] == reference
