"""Documentation consistency: generated docs are fresh, manifests exist."""

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parents[2]


def test_api_docs_are_fresh():
    """docs/api.md matches the current source (regenerate if this fails)."""
    sys.path.insert(0, str(ROOT / "tools"))
    try:
        import gen_api_docs
    finally:
        sys.path.pop(0)
    assert gen_api_docs.render() == (ROOT / "docs" / "api.md").read_text()


def test_required_documents_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                 "docs/architecture.md", "docs/protocol.md",
                 "docs/paper_map.md", "docs/api.md",
                 "docs/performance.md"):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 200, name


def test_design_lists_every_bench():
    design = (ROOT / "DESIGN.md").read_text()
    for bench in sorted((ROOT / "benchmarks").glob("test_bench_*.py")):
        assert bench.name in design, f"{bench.name} missing from DESIGN.md"
