"""Every example script must run clean — examples are part of the API."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate what they do"


def test_examples_exist():
    assert len(EXAMPLES) >= 3, "the deliverable requires at least three"
