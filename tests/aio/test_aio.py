"""The asyncio binding of the asymmetric stream system."""

import asyncio

import pytest

from repro.aio import (
    AioCollector,
    AioPipe,
    AioReadOnlyStage,
    AioSource,
    AioWriteOnlyStage,
    collect,
    iterate,
    stream_segment,
)
from repro.core.errors import StreamProtocolError
from repro.filters import comment_stripper, sort_lines, upper_case, word_count
from repro.transput import compose_apply
from repro.transput.stream import END_TRANSFER, Transfer

ITEMS = ["C skip", "alpha", "beta", "C also", "gamma"]


def fresh():
    return [comment_stripper("C"), upper_case(), sort_lines()]


class TestRunPipeline:
    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_matches_reference(self, discipline):
        out = stream_segment(ITEMS, fresh(), discipline=discipline)
        assert out == compose_apply(fresh(), ITEMS)

    @pytest.mark.parametrize("discipline", ["readonly", "writeonly",
                                            "conventional"])
    def test_empty_input(self, discipline):
        assert stream_segment([], [upper_case()], discipline=discipline) == []

    def test_zero_filters(self):
        assert stream_segment([1, 2], [], discipline="readonly") == [1, 2]

    def test_finish_only_filter(self):
        out = stream_segment(ITEMS, [word_count()], discipline="writeonly")
        assert out[0].lines == len(ITEMS)

    def test_unknown_discipline(self):
        with pytest.raises(ValueError):
            stream_segment([], [], discipline="psychic")

    def test_batching(self):
        out = stream_segment(list(range(10)), [], discipline="readonly", batch=4)
        assert out == list(range(10))

    def test_lookahead_prefetch(self):
        out = stream_segment(
            list(range(50)), [upper_caseish()], discipline="readonly",
            lookahead=8,
        )
        assert out == [i * 3 for i in range(50)]


def upper_caseish():
    from repro.transput import make_transducer

    return make_transducer(lambda x: (x * 3,), name="x3")


class TestSourcesAndStages:
    def test_source_batching(self):
        async def scenario():
            source = AioSource([1, 2, 3])
            first = await source.read(2)
            assert first.items == (1, 2)
            second = await source.read(2)
            assert second.items == (3,)
            assert (await source.read(1)).at_end
            assert (await source.read(1)).at_end

        asyncio.run(scenario())

    def test_stage_is_lazy(self):
        pulled = []

        class CountingSource:
            def __init__(self):
                self._inner = AioSource([1, 2, 3])

            async def read(self, batch=1):
                pulled.append(batch)
                return await self._inner.read(batch)

        async def scenario():
            stage = AioReadOnlyStage(upper_caseish(), CountingSource())
            assert pulled == []
            await stage.read(1)
            assert len(pulled) == 1

        asyncio.run(scenario())

    def test_iterate(self):
        async def scenario():
            stage = AioReadOnlyStage(upper_caseish(), AioSource([1, 2]))
            return [item async for item in iterate(stage)]

        assert asyncio.run(scenario()) == [3, 6]

    def test_writeonly_fan_out(self):
        async def scenario():
            sinks = [AioCollector(), AioCollector()]
            stage = AioWriteOnlyStage(upper_caseish(), list(sinks))
            await stage.write(Transfer.of([1, 2]))
            await stage.write(END_TRANSFER)
            for sink in sinks:
                await sink.done.wait()
            return [sink.items for sink in sinks]

        assert asyncio.run(scenario()) == [[3, 6], [3, 6]]

    def test_write_after_end_rejected(self):
        async def scenario():
            sink = AioCollector()
            stage = AioWriteOnlyStage(upper_caseish(), [sink])
            await stage.write(END_TRANSFER)
            with pytest.raises(StreamProtocolError):
                await stage.write(Transfer.single(1))

        asyncio.run(scenario())

    def test_collector_rejects_write_after_end(self):
        async def scenario():
            sink = AioCollector()
            await sink.write(END_TRANSFER)
            with pytest.raises(StreamProtocolError):
                await sink.write(Transfer.single(1))

        asyncio.run(scenario())


class TestAioPipe:
    def test_round_trip(self):
        async def scenario():
            pipe = AioPipe(capacity=4)
            await pipe.write(Transfer.of([1, 2, 3]))
            await pipe.write(END_TRANSFER)
            return await collect(pipe, batch=2)

        assert asyncio.run(scenario()) == [1, 2, 3]

    def test_backpressure(self):
        async def scenario():
            pipe = AioPipe(capacity=2)
            progress = []

            async def producer():
                for value in range(6):
                    await pipe.write(Transfer.single(value))
                    progress.append(value)
                await pipe.write(END_TRANSFER)

            task = asyncio.create_task(producer())
            await asyncio.sleep(0)
            assert len(progress) <= 3  # producer blocked by capacity
            items = await collect(pipe)
            await task
            return items

        assert asyncio.run(scenario()) == list(range(6))

    def test_write_after_end_rejected(self):
        async def scenario():
            pipe = AioPipe()
            await pipe.write(END_TRANSFER)
            with pytest.raises(StreamProtocolError):
                await pipe.write(Transfer.single(1))

        asyncio.run(scenario())

    def test_batch_read_does_not_swallow_end(self):
        async def scenario():
            pipe = AioPipe(capacity=8)
            await pipe.write(Transfer.of([1, 2]))
            await pipe.write(END_TRANSFER)
            first = await pipe.read(10)
            assert first.items == (1, 2)
            assert (await pipe.read(1)).at_end

        asyncio.run(scenario())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AioPipe(capacity=0)


class TestConcurrency:
    def test_readonly_lookahead_overlaps_stages(self):
        """With prefetching, a slow stage overlaps the pump's consumption."""

        async def scenario():
            order = []

            class SlowSource:
                def __init__(self):
                    self._inner = AioSource(range(5))

                async def read(self, batch=1):
                    await asyncio.sleep(0)
                    transfer = await self._inner.read(batch)
                    order.append(("produce", transfer.items))
                    return transfer

            stage = AioReadOnlyStage(
                upper_caseish(), SlowSource(), lookahead=4
            )
            out = []
            while True:
                transfer = await stage.read(1)
                if transfer.at_end:
                    break
                order.append(("consume", transfer.items))
                out.extend(transfer.items)
            return out

        assert asyncio.run(scenario()) == [0, 3, 6, 9, 12]


class TestAioChannels:
    """Multi-channel stages over asyncio (§5 parity)."""

    def test_both_channels_deliver(self):
        from repro.aio import AioReportingStage, AioSource
        from repro.filters import identity, with_reports

        async def scenario():
            stage = AioReportingStage(
                with_reports(identity(), "F", every=2),
                AioSource(["a", "b", "c"]),
            )
            out = await collect(stage.reader("Output"))
            reports = await collect(stage.reader("Report"))
            return out, reports

        out, reports = asyncio.run(scenario())
        assert out == ["a", "b", "c"]
        assert reports[0] == "[F] starting"
        assert reports[-1].startswith("[F] done")

    def test_concurrent_readers_split_nothing(self):
        from repro.aio import AioReportingStage, AioSource
        from repro.filters import identity, with_reports

        async def scenario():
            stage = AioReportingStage(
                with_reports(identity(), "F", every=1),
                AioSource(list(range(10))),
            )
            out_task = asyncio.create_task(collect(stage.reader("Output")))
            rep_task = asyncio.create_task(collect(stage.reader("Report")))
            return await out_task, await rep_task

        out, reports = asyncio.run(scenario())
        assert out == list(range(10))
        assert len(reports) == 12  # starting + 10 + done

    def test_plain_transducer_wrapped(self):
        from repro.aio import AioReportingStage, AioSource
        from repro.filters import upper_case

        async def scenario():
            stage = AioReportingStage(upper_case(), AioSource(["x"]))
            assert stage.channels() == ["Output"]
            return await collect(stage.reader("Output"))

        assert asyncio.run(scenario()) == ["X"]

    def test_unknown_channel_rejected(self):
        from repro.aio import AioReportingStage, AioSource
        from repro.core.errors import NoSuchChannelError
        from repro.filters import upper_case

        stage = AioReportingStage(upper_case(), AioSource([]))
        with pytest.raises(NoSuchChannelError):
            stage.reader("Bogus")

    def test_reader_feeds_downstream_stage(self):
        from repro.aio import AioReadOnlyStage, AioReportingStage, AioSource
        from repro.filters import identity, upper_case, with_reports

        async def scenario():
            reporting = AioReportingStage(
                with_reports(identity(), "F"), AioSource(["x", "y"])
            )
            shouty = AioReadOnlyStage(upper_case(), reporting.reader("Output"))
            return await collect(shouty)

        assert asyncio.run(scenario()) == ["X", "Y"]
