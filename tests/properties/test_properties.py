"""Property-based tests (hypothesis) on the core invariants.

The big one: for ANY filter composition, ANY input, ANY discipline and
ANY flow policy, the pipeline's output equals the functional reference
semantics — data is never lost, duplicated or reordered by the
transport machinery.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import predicted_invocations
from repro.core import Kernel
from repro.core.uid import UID, UIDFactory
from repro.filters import (
    comment_stripper,
    head,
    sort_lines,
    tail,
    unique_adjacent,
    upper_case,
    word_count,
)
from repro.transput import (
    FlowPolicy,
    PassiveBuffer,
    Transfer,
    compose_segment,
    compose_apply,
)
from repro.transput.stream import END_TRANSFER

# -- strategies ------------------------------------------------------------

lines = st.lists(
    st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=12,
    ),
    max_size=12,
)

TRANSDUCER_FACTORIES = [
    upper_case,
    lambda: comment_stripper("C"),
    unique_adjacent,
    sort_lines,
    lambda: head(3),
    lambda: tail(2),
]

transducer_picks = st.lists(
    st.integers(min_value=0, max_value=len(TRANSDUCER_FACTORIES) - 1),
    max_size=4,
)

disciplines = st.sampled_from(["readonly", "writeonly", "conventional"])


def build_transducers(picks):
    return [TRANSDUCER_FACTORIES[i]() for i in picks]


# -- the main theorem -------------------------------------------------------


class TestPipelineCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(items=lines, picks=transducer_picks, discipline=disciplines)
    def test_pipeline_equals_functional_composition(
        self, items, picks, discipline
    ):
        kernel = Kernel()
        pipeline = compose_segment(
            kernel, discipline, items, build_transducers(picks)
        )
        output = pipeline.run_to_completion()
        assert output == compose_apply(build_transducers(picks), items)

    @settings(max_examples=25, deadline=None)
    @given(
        items=lines,
        picks=transducer_picks,
        lookahead=st.integers(min_value=0, max_value=8),
        batch=st.integers(min_value=1, max_value=5),
    )
    def test_flow_policy_never_changes_results(
        self, items, picks, lookahead, batch
    ):
        kernel = Kernel()
        pipeline = compose_segment(
            kernel, "readonly", items, build_transducers(picks),
            flow=FlowPolicy(lookahead=lookahead, batch=batch),
        )
        output = pipeline.run_to_completion()
        assert output == compose_apply(build_transducers(picks), items)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=0, max_value=5),
        items=st.integers(min_value=0, max_value=30),
        batch=st.integers(min_value=1, max_value=4),
        discipline=disciplines,
    )
    def test_cost_model_exact_for_identity_pipelines(
        self, n, items, batch, discipline
    ):
        from repro.analysis import measure_pipeline

        measurement = measure_pipeline(discipline, n, items, batch=batch)
        assert measurement.invocations == predicted_invocations(
            discipline, n, items, batch
        )

    @settings(max_examples=20, deadline=None)
    @given(items=lines, picks=transducer_picks)
    def test_determinism_across_runs(self, items, picks):
        """Identical runs produce identical counters and makespans."""

        def run():
            kernel = Kernel()
            pipeline = compose_segment(
                kernel, "readonly", items, build_transducers(picks)
            )
            output = pipeline.run_to_completion()
            return output, pipeline.invocations_used(), pipeline.virtual_makespan

        assert run() == run()


class TestBufferInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        writes=st.lists(
            st.lists(st.integers(), min_size=1, max_size=3), max_size=10
        ),
    )
    def test_bounded_buffer_never_loses_or_reorders(self, capacity, writes):
        kernel = Kernel()
        buffer = kernel.create(PassiveBuffer, capacity=capacity)
        expected = []
        for chunk in writes:
            kernel.call_sync(buffer.uid, "Write", Transfer.of(chunk))
            expected.extend(chunk)
            # Keep the buffer drainable: read everything back each round.
            got = []
            while buffer.occupancy:
                got.extend(
                    kernel.call_sync(buffer.uid, "Read", capacity).items
                )
            assert got == chunk
        kernel.call_sync(buffer.uid, "Write", END_TRANSFER)
        assert kernel.call_sync(buffer.uid, "Read", 1).at_end

    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        chunk_sizes=st.lists(
            st.integers(min_value=1, max_value=4), max_size=8
        ),
    )
    def test_occupancy_bounded_by_capacity_plus_atomic_write(
        self, capacity, chunk_sizes
    ):
        kernel = Kernel()
        buffer = kernel.create(PassiveBuffer, capacity=capacity)
        for size in chunk_sizes:
            if buffer.occupancy + size > capacity and buffer.occupancy:
                break  # further writes would park; stop the scenario
            kernel.call_sync(
                buffer.uid, "Write", Transfer.of(list(range(size)))
            )
        assert buffer.max_occupancy <= capacity + max(chunk_sizes, default=0)


class TestUIDProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        count=st.integers(min_value=1, max_value=50),
    )
    def test_uids_unique_and_verifiable(self, seed, count):
        factory = UIDFactory(seed=seed)
        uids = [factory.issue() for _ in range(count)]
        assert len(set(uids)) == count
        assert all(factory.is_genuine(uid) for uid in uids)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        guess=st.integers(min_value=0, max_value=2**64 - 1),
    )
    def test_guessed_nonces_rejected(self, seed, guess):
        factory = UIDFactory(seed=seed)
        genuine = factory.issue()
        forged = UID(space=genuine.space, serial=genuine.serial, nonce=guess)
        assert factory.is_genuine(forged) == (guess == genuine.nonce)


class TestCheckpointProperties:
    @settings(max_examples=30, deadline=None)
    @given(records=st.lists(st.text(max_size=8), max_size=10))
    def test_crash_recovery_round_trip(self, records):
        from repro.filesystem import EdenFile

        kernel = Kernel()
        f = kernel.create(EdenFile, records=records)
        kernel.call_sync(f.uid, "Commit")
        kernel.crash_eject(f.uid)
        assert kernel.call_sync(f.uid, "Contents") == records

    @settings(max_examples=30, deadline=None)
    @given(
        committed=st.lists(st.text(max_size=6), max_size=6),
        extra=st.lists(st.text(max_size=6), min_size=1, max_size=6),
    )
    def test_uncommitted_suffix_lost_on_crash(self, committed, extra):
        from repro.filesystem import EdenFile

        kernel = Kernel()
        f = kernel.create(EdenFile, records=committed)
        kernel.call_sync(f.uid, "Commit")
        kernel.call_sync(f.uid, "Append", Transfer.of(extra))
        kernel.crash_eject(f.uid)
        assert kernel.call_sync(f.uid, "Contents") == committed


class TestTransducerLaws:
    @settings(max_examples=50, deadline=None)
    @given(items=lines)
    def test_word_count_is_a_fold(self, items):
        (summary,) = compose_apply([word_count()], items)
        assert summary.lines == len(items)
        assert summary.words == sum(len(str(s).split()) for s in items)

    @settings(max_examples=50, deadline=None)
    @given(items=lines)
    def test_sort_then_unique_idempotent(self, items):
        once = compose_apply([sort_lines(), unique_adjacent()], items)
        twice = compose_apply(
            [sort_lines(), unique_adjacent()], once
        )
        assert once == twice

    @settings(max_examples=50, deadline=None)
    @given(items=lines, k=st.integers(min_value=0, max_value=6))
    def test_head_tail_bounds(self, items, k):
        assert len(compose_apply([head(k)], items)) == min(k, len(items))
        assert len(compose_apply([tail(k)], items)) == min(k, len(items))
