"""Further hypothesis properties: coding round trips, shell/pipeline
agreement, figure parity, aio/simulator agreement."""

from hypothesis import given, settings, strategies as st

from repro.aio import stream_segment as aio_run_pipeline
from repro.core import Kernel
from repro.figures import build_figure3, build_figure4
from repro.filters import (
    comment_stripper,
    paste,
    rle_decode,
    rle_encode,
    sort_lines,
    upper_case,
)
from repro.shell import Shell
from repro.transput import compose_segment, compose_apply

# Words safe for shell round-tripping (no quotes or redirect syntax).
shell_words = st.lists(
    st.text(
        alphabet=st.characters(
            whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=0,
    max_size=8,
)

small_runs = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),
        st.sampled_from(["a", "b", "c"]),
    ),
    max_size=8,
)

disciplines = st.sampled_from(["readonly", "writeonly", "conventional"])


class TestCodingRoundTrips:
    @settings(max_examples=40, deadline=None)
    @given(runs=small_runs, discipline=disciplines)
    def test_rle_round_trip_through_any_discipline(self, runs, discipline):
        items = [symbol for count, symbol in runs for _ in range(count)]
        kernel = Kernel()
        pipeline = compose_segment(
            kernel, discipline, items, [rle_encode(), rle_decode()]
        )
        assert pipeline.run_to_completion() == items

    @settings(max_examples=40, deadline=None)
    @given(
        items=st.lists(
            st.text(
                alphabet=st.characters(
                    min_codepoint=32, max_codepoint=126,
                    blacklist_characters="|",
                ),
                max_size=5,
            ),
            max_size=10,
        ),
        columns=st.integers(min_value=1, max_value=4),
    )
    def test_paste_conserves_content(self, items, columns):
        rows = compose_apply([paste(columns, "|")], items)
        reassembled = [
            cell for row in rows for cell in row.split("|")
        ]
        assert reassembled == [str(item) for item in items]


class TestShellAgreement:
    @settings(max_examples=25, deadline=None)
    @given(words=shell_words, discipline=disciplines)
    def test_shell_matches_direct_pipeline(self, words, discipline):
        """The shell is just wiring: its result must equal a directly
        built pipeline over the same transducers."""
        shell = Shell(discipline=discipline)
        shell.define("src", list(words))
        result = shell.execute_one("src | strip-comments C | upper | sort")

        kernel = Kernel()
        direct = compose_segment(
            kernel, discipline, list(words),
            [comment_stripper("C"), upper_case(), sort_lines()],
        )
        assert result.output == direct.run_to_completion()


class TestAioAgreement:
    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.text(max_size=6), max_size=10),
        discipline=disciplines,
    )
    def test_aio_matches_simulator(self, items, discipline):
        """Both runtimes implement the same semantics."""
        aio_out = aio_run_pipeline(
            items, [comment_stripper("C"), upper_case(), sort_lines()],
            discipline=discipline,
        )
        kernel = Kernel()
        sim_out = compose_segment(
            kernel, discipline, items,
            [comment_stripper("C"), upper_case(), sort_lines()],
        ).run_to_completion()
        assert aio_out == sim_out


class TestFigureParity:
    @settings(max_examples=15, deadline=None)
    @given(
        items=st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                max_size=10,
            ),
            max_size=10,
        )
    )
    def test_figures_3_and_4_agree_on_any_input(self, items):
        fig3 = build_figure3(items=items)
        fig4 = build_figure4(items=items)
        out3, out4 = fig3.run(), fig4.run()
        assert out3 == out4
        fig4_payloads = sorted(
            line.split(": ", 1)[1] for line in fig4.window_lines(0)
        )
        assert fig4_payloads == sorted(fig3.window_lines(0))
