"""Property tests targeting the demand-aware prefetcher.

The lookahead machinery has the subtlest control flow in the transput
layer (two processes, two signals, demand overrides).  These properties
drive it with random channel-read interleavings and random shapes and
require: no deadlock, no loss, no duplication, per-channel order.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Kernel
from repro.filters import identity, with_reports
from repro.transput import CollectorSink, ListSource, ReadOnlyFilter


@settings(max_examples=30, deadline=None)
@given(
    items=st.integers(min_value=0, max_value=20),
    lookahead=st.integers(min_value=1, max_value=8),
    every=st.integers(min_value=1, max_value=5),
    order=st.lists(st.sampled_from(["Output", "Report"]), max_size=30),
)
def test_random_channel_interleavings_never_deadlock(
    items, lookahead, every, order
):
    kernel = Kernel()
    source = kernel.create(ListSource, items=[f"i{n}" for n in range(items)])
    stage = kernel.create(
        ReadOnlyFilter,
        transducer=with_reports(identity(), "F", every=every),
        inputs=[source.output_endpoint()],
        lookahead=lookahead,
    )
    got = {"Output": [], "Report": []}
    ended = {"Output": False, "Report": False}
    for channel in order:
        transfer = kernel.call_sync(stage.uid, "Read", 1, channel=channel)
        if transfer.at_end:
            ended[channel] = True
        else:
            got[channel].extend(transfer.items)
    # Whatever the interleaving, drain both channels to END.
    for channel in ("Output", "Report"):
        while True:
            transfer = kernel.call_sync(stage.uid, "Read", 3, channel=channel)
            if transfer.at_end:
                break
            got[channel].extend(transfer.items)
    assert got["Output"] == [f"i{n}" for n in range(items)]
    assert len(got["Report"]) == 2 + items // every  # start + periodic + done


@settings(max_examples=30, deadline=None)
@given(
    items=st.integers(min_value=0, max_value=40),
    lookahead=st.integers(min_value=0, max_value=10),
    batch_in=st.integers(min_value=1, max_value=5),
    sink_batch=st.integers(min_value=1, max_value=5),
)
def test_lookahead_batch_grid_preserves_streams(
    items, lookahead, batch_in, sink_batch
):
    kernel = Kernel()
    data = [f"i{n}" for n in range(items)]
    source = kernel.create(ListSource, items=data)
    stage = kernel.create(
        ReadOnlyFilter, transducer=identity(),
        inputs=[source.output_endpoint()],
        lookahead=lookahead, batch_in=batch_in,
    )
    sink = kernel.create(
        CollectorSink, inputs=[stage.output_endpoint()], batch=sink_batch
    )
    kernel.run(until=lambda: sink.done, max_steps=2_000_000)
    kernel.run(max_steps=2_000_000)
    assert sink.collected == data
