"""Property: interleaved multi-channel wire traffic demuxes exactly.

The multiplexing layer's correctness rests on one invariant: however
many logical channels share a connection, in whatever interleaving the
fair writer produced and however TCP fragments the bytes, demuxing by
the frame header's channel id must recover every channel's *exact*
frame sequence — stream payloads, seq numbers, END markers, resume
cursors, and per-channel codec choice all intact.
"""

from hypothesis import given, settings, strategies as st

from repro.net.framing import (
    CODECS,
    Frame,
    FrameDecoder,
    FrameType,
    encode_frame,
)

#: Stream payload items as pipelines carry them.
items = st.lists(
    st.one_of(
        st.text(max_size=12),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.binary(max_size=12),
    ),
    max_size=3,
)


@st.composite
def channel_streams(draw):
    """Per-channel frame sequences: DATA with rising seq, then END.

    Each channel gets its own codec (mixed codecs on one connection
    are legal: negotiation is per channel) and its own resume cursor,
    so seq numbers do not start at zero.
    """
    chan_ids = draw(
        st.lists(st.integers(min_value=1, max_value=2**20),
                 min_size=1, max_size=4, unique=True)
    )
    streams = {}
    for chan in chan_ids:
        codec = draw(st.sampled_from(CODECS))
        resume_at = draw(st.integers(min_value=0, max_value=50))
        payloads = draw(st.lists(items, max_size=4))
        frames = [
            Frame(FrameType.DATA,
                  {"seq": resume_at + index, "items": batch},
                  chan=chan)
            for index, batch in enumerate(payloads)
        ]
        frames.append(
            Frame(FrameType.END,
                  {"seq": resume_at + len(payloads)}, chan=chan)
        )
        streams[chan] = (codec, frames)
    return streams


@st.composite
def interleavings(draw, streams):
    """A fair-writer-like schedule: any order preserving channel FIFO."""
    cursors = {chan: 0 for chan in streams}
    order = []
    remaining = {
        chan: len(frames) for chan, (_codec, frames) in streams.items()
    }
    while any(remaining.values()):
        live = sorted(chan for chan, left in remaining.items() if left)
        chan = draw(st.sampled_from(live))
        order.append((chan, cursors[chan]))
        cursors[chan] += 1
        remaining[chan] -= 1
    return order


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_interleaved_channels_demux_to_exact_sequences(data):
    streams = data.draw(channel_streams())
    order = data.draw(interleavings(streams))

    wire = bytearray()
    for chan, index in order:
        codec, frames = streams[chan]
        wire += encode_frame(frames[index], codec)

    # Arbitrary fragmentation: the decoder sees TCP-sized reality.
    chunk = data.draw(st.integers(min_value=1, max_value=max(1, len(wire))))
    decoder = FrameDecoder()
    decoded = []
    for start in range(0, len(wire), chunk):
        decoded.extend(decoder.feed(bytes(wire[start:start + chunk])))

    by_channel = {}
    for frame in decoded:
        assert frame.chan is not None
        by_channel.setdefault(frame.chan, []).append(frame)

    assert set(by_channel) == {
        chan for chan, (_codec, frames) in streams.items() if frames
    }
    for chan, (_codec, frames) in streams.items():
        got = by_channel[chan]
        assert [frame.type for frame in got] == [
            frame.type for frame in frames
        ]
        assert [frame.body for frame in got] == [
            frame.body for frame in frames
        ]
        # Per-channel FIFO: seq numbers arrive strictly in order, and
        # the stream ends exactly once, with END last.
        seqs = [frame.body["seq"] for frame in got]
        assert seqs == sorted(seqs)
        assert [f.type for f in got].count(FrameType.END) == 1
        assert got[-1].type is FrameType.END
