"""Property tests: arbitrary payloads and channel ids survive the wire.

Whatever records a pipeline carries — the paper insists streams are
*not* byte streams — the frame codec must return them unchanged, and
must do so regardless of how TCP fragments the bytes.
"""

from hypothesis import given, settings, strategies as st

from repro.core.capability import ChannelCapability
from repro.core.uid import UID
from repro.net.framing import (
    CODECS,
    Frame,
    FrameDecoder,
    FrameType,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
)

codecs = st.sampled_from(CODECS)

# -- strategies -------------------------------------------------------------

uids = st.builds(
    UID,
    space=st.integers(min_value=0, max_value=2**16),
    serial=st.integers(min_value=0, max_value=2**16),
    nonce=st.integers(min_value=0, max_value=2**64 - 1),
)

capabilities = st.builds(
    ChannelCapability,
    owner=uids,
    name=st.text(max_size=20),
    secret=st.integers(min_value=0, max_value=2**64 - 1),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    uids,
    capabilities,
)

#: Arbitrary records: scalars plus nested lists/tuples/dicts of them,
#: including dicts with non-string and tag-colliding keys.
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(
                st.text(max_size=10),
                st.sampled_from(["__bytes__", "__tuple__", "__dict__"]),
                st.integers(min_value=-100, max_value=100),
            ),
            inner,
            max_size=4,
        ),
    ),
    max_leaves=12,
)

#: Channel identifiers as the protocol admits them (paper §5): names,
#: positional integers, unforgeable capabilities.
channel_ids = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=0, max_value=255),
    capabilities,
)


@given(payload=payloads)
def test_payload_codec_roundtrips(payload):
    assert decode_payload(encode_payload(payload)) == payload


@given(items=st.lists(payloads, min_size=1, max_size=5), channel=channel_ids,
       codec=codecs)
def test_data_frame_roundtrips(items, channel, codec):
    frame = Frame(FrameType.DATA, {"items": items, "channel": channel})
    decoded, consumed = decode_frame(encode_frame(frame, codec))
    assert decoded == frame
    assert consumed == len(encode_frame(frame, codec))


@given(channel=channel_ids, batch=st.integers(min_value=1, max_value=1000),
       codec=codecs)
def test_read_frame_roundtrips(channel, batch, codec):
    frame = Frame(FrameType.READ, {"batch": batch, "channel": channel})
    decoded, _consumed = decode_frame(encode_frame(frame, codec))
    assert decoded == frame


@given(body=st.dictionaries(st.text(max_size=10), payloads, max_size=4))
def test_binary_and_json_bodies_decode_identically(body):
    """Both codecs carry the same logical frame — the negotiation can
    pick either side of a link without changing what arrives."""
    frame = Frame(FrameType.DATA, body)
    from_json, _ = decode_frame(encode_frame(frame, "json"))
    from_binary, _ = decode_frame(encode_frame(frame, "binary"))
    assert from_json == from_binary == frame


@given(big=st.integers(min_value=-(2**200), max_value=2**200))
def test_binary_varints_carry_any_magnitude(big):
    """The zigzag varint has no 64-bit ceiling — Python ints of any
    size survive, matching JSON's arbitrary-precision numbers."""
    frame = Frame(FrameType.DATA, {"items": [big]})
    decoded, _ = decode_frame(encode_frame(frame, "binary"))
    assert decoded.body["items"] == [big]


@settings(max_examples=50)
@given(
    frames=st.lists(
        st.builds(
            Frame,
            type=st.sampled_from(list(FrameType)),
            body=st.dictionaries(
                st.sampled_from(["items", "channel", "batch", "credit"]),
                payloads,
                max_size=3,
            ),
        ),
        min_size=1,
        max_size=6,
    ),
    chop=st.integers(min_value=1, max_value=64),
    frame_codecs=st.lists(codecs, min_size=6, max_size=6),
)
def test_decoder_reassembles_any_fragmentation(frames, chop, frame_codecs):
    """Frames survive arbitrary TCP segmentation: feed in `chop`-byte
    pieces and the exact frame sequence must come back out.  Codecs are
    mixed per frame — the flag bit makes every frame self-describing,
    so a mid-stream codec switch cannot confuse the decoder."""
    wire = b"".join(
        encode_frame(frame, codec)
        for frame, codec in zip(frames, frame_codecs)
    )
    decoder = FrameDecoder()
    recovered = []
    for start in range(0, len(wire), chop):
        recovered.extend(decoder.feed(wire[start : start + chop]))
    assert recovered == frames
    assert decoder.pending == 0
