"""Property tests: arbitrary payloads and channel ids survive the wire.

Whatever records a pipeline carries — the paper insists streams are
*not* byte streams — the frame codec must return them unchanged, and
must do so regardless of how TCP fragments the bytes.
"""

from hypothesis import given, settings, strategies as st

from repro.core.capability import ChannelCapability
from repro.core.uid import UID
from repro.net.framing import (
    Frame,
    FrameDecoder,
    FrameType,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
)

# -- strategies -------------------------------------------------------------

uids = st.builds(
    UID,
    space=st.integers(min_value=0, max_value=2**16),
    serial=st.integers(min_value=0, max_value=2**16),
    nonce=st.integers(min_value=0, max_value=2**64 - 1),
)

capabilities = st.builds(
    ChannelCapability,
    owner=uids,
    name=st.text(max_size=20),
    secret=st.integers(min_value=0, max_value=2**64 - 1),
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    uids,
    capabilities,
)

#: Arbitrary records: scalars plus nested lists/tuples/dicts of them,
#: including dicts with non-string and tag-colliding keys.
payloads = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(
                st.text(max_size=10),
                st.sampled_from(["__bytes__", "__tuple__", "__dict__"]),
                st.integers(min_value=-100, max_value=100),
            ),
            inner,
            max_size=4,
        ),
    ),
    max_leaves=12,
)

#: Channel identifiers as the protocol admits them (paper §5): names,
#: positional integers, unforgeable capabilities.
channel_ids = st.one_of(
    st.text(max_size=20),
    st.integers(min_value=0, max_value=255),
    capabilities,
)


@given(payload=payloads)
def test_payload_codec_roundtrips(payload):
    assert decode_payload(encode_payload(payload)) == payload


@given(items=st.lists(payloads, min_size=1, max_size=5), channel=channel_ids)
def test_data_frame_roundtrips(items, channel):
    frame = Frame(FrameType.DATA, {"items": items, "channel": channel})
    decoded, consumed = decode_frame(encode_frame(frame))
    assert decoded == frame
    assert consumed == len(encode_frame(frame))


@given(channel=channel_ids, batch=st.integers(min_value=1, max_value=1000))
def test_read_frame_roundtrips(channel, batch):
    frame = Frame(FrameType.READ, {"batch": batch, "channel": channel})
    decoded, _consumed = decode_frame(encode_frame(frame))
    assert decoded == frame


@settings(max_examples=50)
@given(
    frames=st.lists(
        st.builds(
            Frame,
            type=st.sampled_from(list(FrameType)),
            body=st.dictionaries(
                st.sampled_from(["items", "channel", "batch", "credit"]),
                payloads,
                max_size=3,
            ),
        ),
        min_size=1,
        max_size=6,
    ),
    chop=st.integers(min_value=1, max_value=64),
)
def test_decoder_reassembles_any_fragmentation(frames, chop):
    """Frames survive arbitrary TCP segmentation: feed in `chop`-byte
    pieces and the exact frame sequence must come back out."""
    wire = b"".join(encode_frame(frame) for frame in frames)
    decoder = FrameDecoder()
    recovered = []
    for start in range(0, len(wire), chop):
        recovered.extend(decoder.feed(wire[start : start + chop]))
    assert recovered == frames
    assert decoder.pending == 0
