"""Stateful (model-based) testing of the PassiveBuffer.

A hypothesis rule machine drives a real simulated buffer and a plain
deque model with the same operation sequence; the buffer must agree
with the model at every step.  This hunts ordering/flow-control bugs
that example-based tests miss.
"""

from collections import deque

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core import Kernel
from repro.transput import PassiveBuffer, Transfer
from repro.transput.stream import END_TRANSFER

CAPACITY = 6


class BufferMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.kernel = Kernel()
        self.buffer = self.kernel.create(PassiveBuffer, capacity=CAPACITY)
        self.model: deque = deque()
        self.ended = False
        self.counter = 0

    # -- operations ---------------------------------------------------------

    @precondition(lambda self: not self.ended)
    @rule(count=st.integers(min_value=1, max_value=3))
    def write(self, count):
        # Mirror the buffer's own admission rule so the model and the
        # buffer accept exactly the same writes (a parked write would
        # hang call_sync, so only issue writes that fit).
        fits = not self.model or len(self.model) + count <= CAPACITY
        if not fits:
            return
        chunk = [self.counter + i for i in range(count)]
        self.counter += count
        ack = self.kernel.call_sync(
            self.buffer.uid, "Write", Transfer.of(chunk)
        )
        assert ack.accepted == count
        self.model.extend(chunk)

    @precondition(lambda self: len(list(self.model)) > 0 or self.ended)
    @rule(batch=st.integers(min_value=1, max_value=4))
    def read(self, batch):
        transfer = self.kernel.call_sync(self.buffer.uid, "Read", batch)
        if not self.model:
            assert transfer.at_end and self.ended
            return
        expected = [
            self.model.popleft() for _ in range(min(batch, len(self.model)))
        ]
        assert list(transfer.items) == expected

    @precondition(lambda self: not self.ended)
    @rule()
    def end(self):
        self.kernel.call_sync(self.buffer.uid, "Write", END_TRANSFER)
        self.ended = True

    # -- invariants -----------------------------------------------------------

    @invariant()
    def occupancy_matches_model(self):
        if hasattr(self, "buffer"):
            assert self.buffer.occupancy == len(self.model)

    @invariant()
    def occupancy_bounded(self):
        if hasattr(self, "buffer"):
            assert self.buffer.occupancy <= max(CAPACITY, self.buffer.max_occupancy)
            assert self.buffer.max_occupancy <= CAPACITY + 3  # atomic writes


TestBufferAgainstModel = BufferMachine.TestCase
TestBufferAgainstModel.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
