"""Hypothesis: the flight recorder round-trips bit-exactly.

Whatever frames a connection carries — either codec, muxed or not,
fed to the tee as bytes or as decoder memoryview slices at arbitrary
chunk boundaries — a full-mode capture must replay the exact wire
bytes, and a digest capture must agree on every CRC.
"""

import zlib

from hypothesis import given, settings, strategies as st

from repro.net.framing import (
    CODEC_BINARY,
    CODEC_JSON,
    Frame,
    FrameDecoder,
    FrameType,
    encode_frame,
)
from repro.obs.flight import FlightRecorder, load_capture

items = st.lists(
    st.one_of(
        st.text(max_size=12),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.binary(max_size=12),
    ),
    max_size=4,
)

frames = st.builds(
    lambda records, chan, seq: Frame(
        FrameType.DATA,
        {"items": records, "seq": seq, "channel": None},
        chan=chan,
    ),
    records=items,
    chan=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31 - 1)),
    seq=st.integers(min_value=0, max_value=2**31 - 1),
)

wire_frames = st.lists(
    st.tuples(
        st.booleans(),  # outbound?
        frames,
        st.sampled_from([CODEC_JSON, CODEC_BINARY]),
    ),
    min_size=1,
    max_size=12,
)


def record_and_load(tmp_path, wires, mode):
    recorder = FlightRecorder(str(tmp_path), f"stage-{mode}", mode=mode)
    for outbound, wire in wires:
        recorder.record(outbound, wire)
    recorder.close()
    return load_capture(str(recorder.path))


@settings(max_examples=40, deadline=None)
@given(batch=wire_frames)
def test_full_capture_is_bit_exact(tmp_path_factory, batch):
    tmp_path = tmp_path_factory.mktemp("flight")
    wires = [(out, encode_frame(f, codec)) for out, f, codec in batch]
    capture = record_and_load(tmp_path, wires, "full")

    assert len(capture.records) == len(wires)
    for record, (outbound, wire) in zip(capture.records, wires):
        assert record.payload == wire
        assert record.outbound == outbound
        assert record.wire_bytes == len(wire)
        assert record.digest == zlib.crc32(wire) & 0xFFFFFFFF
    # The captured bytes decode back to the original frames.
    for record, (_, frame, _) in zip(capture.records, batch):
        decoded = record.frame
        assert decoded.body == frame.body
        assert decoded.chan == frame.chan


@settings(max_examples=40, deadline=None)
@given(batch=wire_frames)
def test_digest_capture_agrees_on_every_crc(tmp_path_factory, batch):
    tmp_path = tmp_path_factory.mktemp("flight")
    wires = [(out, encode_frame(f, codec)) for out, f, codec in batch]
    capture = record_and_load(tmp_path, wires, "digest")

    for record, (_, wire) in zip(capture.records, wires):
        assert record.payload is None
        assert record.digest == zlib.crc32(wire) & 0xFFFFFFFF
        assert record.chan == next(
            f.chan for f in [decode_reference(wire)]
        )


def decode_reference(wire):
    [frame] = FrameDecoder().feed(wire)
    return frame


@settings(max_examples=30, deadline=None)
@given(
    batch=wire_frames,
    data=st.data(),
)
def test_decoder_tee_views_survive_fragmentation(tmp_path_factory, batch,
                                                 data):
    """A receiving connection tees memoryview slices out of its read
    buffer; however the TCP stream fragments, the capture must hold
    each frame's exact wire image."""
    tmp_path = tmp_path_factory.mktemp("flight")
    wires = [encode_frame(f, codec) for _, f, codec in batch]
    stream = b"".join(wires)

    recorder = FlightRecorder(str(tmp_path), "rx", mode="full")
    decoder = FrameDecoder(tee=lambda view: recorder.record(False, view))
    position = 0
    while position < len(stream):
        step = data.draw(
            st.integers(min_value=1, max_value=len(stream) - position),
            label="chunk",
        )
        decoder.feed(stream[position : position + step])
        position += step
    recorder.close()

    capture = load_capture(str(recorder.path))
    assert [r.payload for r in capture.records] == wires
    for record, (_, frame, _) in zip(capture.records, batch):
        assert record.chan == frame.chan
