"""Property: pooled encode buffers never bleed bytes between frames.

The zero-copy path encodes every frame into a recycled ``bytearray``
from the :class:`repro.net.bufpool.BufferPool`.  The invariant that
makes recycling safe: a buffer that carried one frame and was released
must encode the *next* frame byte-identically to a fresh allocation —
whatever mixture of codecs, channel ids, and body shapes flows
through, and however small the pool is (maximum reuse pressure).
"""

from hypothesis import given, settings, strategies as st

from repro.net.bufpool import BufferPool
from repro.net.framing import (
    CODECS,
    Frame,
    FrameDecoder,
    FrameType,
    encode_frame,
    encode_frame_into,
)

items = st.lists(
    st.one_of(
        st.text(max_size=16),
        st.integers(min_value=-(2**40), max_value=2**40),
        st.binary(max_size=16),
        st.none(),
    ),
    max_size=4,
)

bodies = st.dictionaries(
    st.sampled_from(["items", "batch", "credit", "seq", "channel"]),
    st.one_of(items, st.integers(min_value=0, max_value=2**20),
              st.text(max_size=12)),
    max_size=3,
)

#: Frames as the mux emits them: plain protocol frames and
#: channel-tagged ones (the CHAN_FLAG header extension), mixed codecs.
frames_with_codecs = st.lists(
    st.tuples(
        st.builds(
            Frame,
            type=st.sampled_from(list(FrameType)),
            body=bodies,
            chan=st.one_of(
                st.none(), st.integers(min_value=0, max_value=2**24)
            ),
        ),
        st.sampled_from(CODECS),
    ),
    min_size=1,
    max_size=8,
)


@settings(max_examples=100)
@given(sequence=frames_with_codecs)
def test_pooled_encode_matches_fresh_encode(sequence):
    """Byte-for-byte parity: recycling an encode buffer through a
    tiny pool produces exactly the bytes a fresh bytearray would."""
    pool = BufferPool(max_buffers=1)  # maximum reuse pressure
    for frame, codec in sequence:
        out = pool.acquire()
        size = encode_frame_into(frame, out, codec)
        assert bytes(out) == encode_frame(frame, codec)
        assert size == len(out)
        pool.release(out)
    assert pool.hits == len(sequence) - 1  # every buffer after the
    # first came off the free list — the parity above really did
    # exercise recycled allocations.


@settings(max_examples=100)
@given(sequence=frames_with_codecs, chop=st.integers(min_value=1,
                                                     max_value=48))
def test_pooled_wire_stream_roundtrips(sequence, chop):
    """The concatenated pooled encodes decode back to the exact frame
    sequence under arbitrary fragmentation — no cross-frame bleed, no
    stale residue from earlier pool users."""
    pool = BufferPool(max_buffers=2)
    wire = bytearray()
    for frame, codec in sequence:
        out = pool.acquire()
        # Poison the recycled allocation first: release() must have
        # cleared it, and encode_frame_into must append from zero.
        assert len(out) == 0
        encode_frame_into(frame, out, codec)
        wire += out
        pool.release(out)
    decoder = FrameDecoder()
    recovered = []
    for start in range(0, len(wire), chop):
        recovered.extend(decoder.feed(bytes(wire[start:start + chop])))
    assert recovered == [frame for frame, _codec in sequence]
    assert decoder.pending == 0
