"""Golden trace tests: exact event sequences for small scenarios.

These lock the simulator's deterministic semantics: any change to the
scheduler, transport or dispatcher that alters ordering shows up here
as a precise diff, not a flaky benchmark.
"""

from repro.core import Eject, Kernel
from repro.transput import CollectorSink, ListSource
from tests.conftest import run_until_done


def event_summary(kernel, kinds):
    """(kind, subject) pairs of the selected trace kinds, in order."""
    return [(e.kind, e.subject) for e in kernel.tracer.of_kind(*kinds)]


class Echo(Eject):
    eden_type = "Echo"

    def op_Ping(self, invocation):
        return invocation.args[0]


class TestInvocationTrace:
    def test_single_call_sequence(self):
        kernel = Kernel(trace=True)
        echo = kernel.create(Echo, name="echo")
        kernel.call_sync(echo.uid, "Ping", 1)
        kinds = [e.kind for e in kernel.tracer.events]
        # create/spawn, client spawn, invoke, deliver, reply, exit.
        assert kinds == ["spawn", "create", "spawn", "invoke", "deliver",
                         "reply", "exit"]

    def test_invoke_deliver_reply_causality(self):
        kernel = Kernel(trace=True)
        echo = kernel.create(Echo, name="echo")
        kernel.call_sync(echo.uid, "Ping", 1)
        events = {e.kind: e.time for e in kernel.tracer.events
                  if e.kind in ("invoke", "deliver", "reply")}
        assert events["invoke"] < events["deliver"] <= events["reply"]

    def test_two_calls_serialize_through_one_server(self):
        kernel = Kernel(trace=True)
        echo = kernel.create(Echo, name="echo")
        kernel.call_sync(echo.uid, "Ping", 1)
        kernel.call_sync(echo.uid, "Ping", 2)
        delivers = kernel.tracer.of_kind("deliver")
        assert [e.detail["ticket"] for e in delivers] == sorted(
            e.detail["ticket"] for e in delivers
        )


class TestStreamTrace:
    def test_lazy_pipeline_demand_order(self):
        """The sink's Read reaches the filter *before* the filter reads
        the source: demand flows upstream, data flows downstream."""
        kernel = Kernel(trace=True)
        source = kernel.create(ListSource, items=["x"], name="src")
        from repro.transput import ReadOnlyFilter
        from repro.filters import identity

        stage = kernel.create(
            ReadOnlyFilter, transducer=identity(),
            inputs=[source.output_endpoint()], name="f",
        )
        sink = kernel.create(
            CollectorSink, inputs=[stage.output_endpoint()], name="sink"
        )
        run_until_done(kernel, sink)

        invokes = [
            (e.subject, e.detail["target"])
            for e in kernel.tracer.of_kind("invoke")
        ]
        first_sink_read = invokes.index(("sink", str(stage.uid)))
        first_filter_read = invokes.index(("f", str(source.uid)))
        assert first_sink_read < first_filter_read

    def test_trace_replays_identically(self):
        def run():
            kernel = Kernel(trace=True)
            source = kernel.create(ListSource, items=list("abc"), name="src")
            sink = kernel.create(
                CollectorSink, inputs=[source.output_endpoint()], name="sink"
            )
            run_until_done(kernel, sink)
            return [
                (e.time, e.kind, e.subject, tuple(sorted(e.detail.items())))
                for e in kernel.tracer.events
            ]

        assert run() == run()


class TestLifecycleTrace:
    def test_checkpoint_crash_activate_events(self):
        from repro.filesystem import EdenFile

        kernel = Kernel(trace=True)
        f = kernel.create(EdenFile, records=["x"], name="file")
        kernel.call_sync(f.uid, "Commit")
        kernel.crash_eject(f.uid)
        kernel.call_sync(f.uid, "Length")
        kinds = [e.kind for e in kernel.tracer.events]
        for expected in ("checkpoint", "crash", "activate"):
            assert expected in kinds
        assert kinds.index("crash") < kinds.index("activate")

    def test_migrate_event(self):
        kernel = Kernel(trace=True)
        f = kernel.create(Echo, name="echo")
        kernel.migrate(f.uid, "vaxB")
        (migrate,) = kernel.tracer.of_kind("migrate")
        assert migrate.detail["to"] == "vaxB"
