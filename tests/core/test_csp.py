"""The §3 CSP comparison: rendezvous channels, three interpretations."""

import pytest

from repro.core.errors import StreamProtocolError
from repro.csp import (
    CHANNEL_CLOSED,
    CSPConsumer,
    CSPProducer,
    RendezvousChannel,
    run_interpretations,
)

VALUES = list(range(10))


class TestRendezvousChannel:
    def test_send_receive_round_trip(self, kernel):
        channel = kernel.create(RendezvousChannel)
        consumer = kernel.create(CSPConsumer, channel=channel.uid)
        producer = kernel.create(
            CSPProducer, channel=channel.uid, values=["a", "b"]
        )
        kernel.run()
        assert consumer.received == ["a", "b"]
        assert producer.done and consumer.done
        assert channel.rendezvous_count == 2

    def test_sender_blocks_until_receiver(self, kernel):
        channel = kernel.create(RendezvousChannel)
        producer = kernel.create(
            CSPProducer, channel=channel.uid, values=["x"]
        )
        kernel.run()
        assert not producer.done  # parked in rendezvous
        consumer = kernel.create(CSPConsumer, channel=channel.uid)
        kernel.run()
        assert producer.done and consumer.received == ["x"]

    def test_receiver_blocks_until_sender(self, kernel):
        channel = kernel.create(RendezvousChannel)
        consumer = kernel.create(CSPConsumer, channel=channel.uid)
        kernel.run()
        assert not consumer.done
        kernel.create(CSPProducer, channel=channel.uid, values=["y"])
        kernel.run()
        assert consumer.done and consumer.received == ["y"]

    def test_close_releases_parked_receivers(self, kernel):
        channel = kernel.create(RendezvousChannel)
        consumer = kernel.create(CSPConsumer, channel=channel.uid)
        kernel.run()
        kernel.call_sync(channel.uid, "Close")
        kernel.run()
        assert consumer.done and consumer.received == []

    def test_receive_after_close_returns_closed(self, kernel):
        channel = kernel.create(RendezvousChannel)
        kernel.call_sync(channel.uid, "Close")
        assert kernel.call_sync(channel.uid, "Receive") == CHANNEL_CLOSED

    def test_send_after_close_rejected(self, kernel):
        channel = kernel.create(RendezvousChannel)
        kernel.call_sync(channel.uid, "Close")
        with pytest.raises(StreamProtocolError):
            kernel.call_sync(channel.uid, "Send", "late")

    def test_no_buffering(self, kernel):
        """Rendezvous means the k-th send cannot complete before the
        k-th receive: strictly synchronous."""
        channel = kernel.create(RendezvousChannel)
        producer = kernel.create(
            CSPProducer, channel=channel.uid, values=[1, 2, 3]
        )
        kernel.run()
        # Producer stuck on the *first* send; nothing got through.
        assert not producer.done
        assert channel.rendezvous_count == 0


class TestInterpretations:
    def test_all_three_move_the_same_values(self):
        results = run_interpretations(VALUES)
        outputs = {result.output == VALUES for result in results.values()}
        assert outputs == {True}

    def test_cost_structure_is_2_1_1(self):
        """§3 quantified: making one side passive removes the
        interpreter Eject and half the invocations."""
        results = run_interpretations(VALUES)
        both = results["both-active"]
        read = results["input-active"]
        write = results["output-active"]
        # both-active: m Sends + (m+1) Receives + 1 Close = 2m + 2;
        # the direct forms: m transfers + 1 END = m + 1.
        assert both.invocations == 2 * len(VALUES) + 2
        assert read.invocations == len(VALUES) + 1
        assert write.invocations == len(VALUES) + 1
        assert both.ejects == 3
        assert read.ejects == write.ejects == 2

    def test_empty_stream(self):
        results = run_interpretations([])
        assert all(result.output == [] for result in results.values())
