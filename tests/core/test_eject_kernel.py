"""Ejects, invocation dispatch, and the kernel's lifecycle machinery."""

import pytest

from repro.core import (
    Call,
    Eject,
    Invoke,
    AwaitReply,
    Kernel,
    Receive,
    SendReply,
    Sleep,
)
from repro.core.errors import (
    EjectCrashedError,
    EjectDeactivatedError,
    ForgeryError,
    InvocationError,
    KernelError,
    NoSuchOperationError,
    UnknownUIDError,
)
from repro.core.uid import UID


class Greeter(Eject):
    eden_type = "Greeter"

    def op_Greet(self, invocation):
        return f"hello, {invocation.args[0]}"

    def op_Fail(self, invocation):
        raise InvocationError("deliberate")

    def op_Boom(self, invocation):
        raise RuntimeError("not an EdenError")

    def op_Slow(self, invocation):
        yield Sleep(10.0)
        return "finally"


class Counter(Eject):
    eden_type = "Counter"

    def __init__(self, kernel, uid, name=None, start=0):
        super().__init__(kernel, uid, name=name)
        self.value = start

    def op_Increment(self, invocation):
        self.value += 1
        return self.value

    def op_Value(self, invocation):
        return self.value

    def op_Save(self, invocation):
        yield self.checkpoint()
        return True

    def op_Quit(self, invocation):
        yield self.reply(invocation, "bye")
        yield self.deactivate()

    def passive_representation(self):
        return {"value": self.value}

    def restore(self, data):
        self.value = data["value"]


class TestDispatch:
    def test_call_sync_round_trip(self, kernel):
        greeter = kernel.create(Greeter)
        assert kernel.call_sync(greeter.uid, "Greet", "world") == "hello, world"

    def test_unknown_operation(self, kernel):
        greeter = kernel.create(Greeter)
        with pytest.raises(NoSuchOperationError):
            kernel.call_sync(greeter.uid, "Nope")

    def test_eden_error_becomes_error_reply(self, kernel):
        greeter = kernel.create(Greeter)
        with pytest.raises(InvocationError, match="deliberate"):
            kernel.call_sync(greeter.uid, "Fail")
        # The server loop survives the error.
        assert kernel.call_sync(greeter.uid, "Greet", "x") == "hello, x"

    def test_non_eden_error_fails_the_process(self, kernel):
        greeter = kernel.create(Greeter)
        with pytest.raises(Exception, match="not an EdenError"):
            kernel.call_sync(greeter.uid, "Boom")

    def test_generator_handler_with_syscalls(self, kernel):
        greeter = kernel.create(Greeter)
        assert kernel.call_sync(greeter.uid, "Slow") == "finally"
        assert kernel.clock.now >= 10.0

    def test_state_persists_across_invocations(self, kernel):
        counter = kernel.create(Counter, start=5)
        assert kernel.call_sync(counter.uid, "Increment") == 6
        assert kernel.call_sync(counter.uid, "Increment") == 7

    def test_sender_is_redacted(self, kernel):
        seen = {}

        class Spy(Eject):
            eden_type = "Spy"

            def op_Probe(self, invocation):
                seen["sender"] = invocation.sender
                return True

        spy = kernel.create(Spy)
        greeter = kernel.create(Greeter)

        class Caller(Eject):
            eden_type = "Caller"

            def main(self):
                yield self.call(spy.uid, "Probe")

        kernel.create(Caller)
        kernel.run()
        # The kernel knows the sender (for reply routing) but the
        # receiving Eject must not (paper §5).
        assert seen["sender"] is None
        assert greeter is not None


class TestAsynchronousInvocation:
    def test_invoke_does_not_suspend_sender(self, kernel):
        """Eden semantics: sending does not block (paper §1)."""
        order = []
        greeter = kernel.create(Greeter)

        class Sender(Eject):
            eden_type = "Sender"

            def main(self):
                ticket = yield Invoke(target=greeter.uid, operation="Slow")
                order.append("sent")
                order.append("working-while-waiting")
                result = yield AwaitReply(ticket)
                order.append(result)

        kernel.create(Sender)
        kernel.run()
        assert order == ["sent", "working-while-waiting", "finally"]

    def test_multiple_outstanding_invocations(self, kernel):
        greeter = kernel.create(Greeter)
        results = []

        class Fanner(Eject):
            eden_type = "Fanner"

            def main(self):
                tickets = []
                for name in ("a", "b", "c"):
                    tickets.append(
                        (yield Invoke(target=greeter.uid, operation="Greet",
                                      args=(name,)))
                    )
                for ticket in tickets:
                    results.append((yield AwaitReply(ticket)))

        kernel.create(Fanner)
        kernel.run()
        assert results == ["hello, a", "hello, b", "hello, c"]

    def test_await_unknown_ticket(self, kernel):
        class Bad(Eject):
            eden_type = "Bad"

            def main(self):
                yield AwaitReply(999_999)

        kernel.create(Bad)
        with pytest.raises(Exception, match="ticket"):
            kernel.run()

    def test_double_await_rejected(self, kernel):
        greeter = kernel.create(Greeter)
        errors = []

        class Bad2(Eject):
            eden_type = "Bad2"

            def main(self):
                ticket = yield Invoke(target=greeter.uid, operation="Slow")
                result = yield AwaitReply(ticket)
                try:
                    yield AwaitReply(ticket)
                except KernelError as exc:
                    errors.append((result, exc))

        kernel.create(Bad2)
        kernel.run()
        assert errors and errors[0][0] == "finally"


class TestTargetValidation:
    def test_forged_uid_rejected(self, kernel):
        kernel.create(Greeter)
        forged = UID(space=0, serial=0, nonce=12345)
        with pytest.raises(ForgeryError):
            kernel.call_sync(forged, "Greet", "x")

    def test_unknown_uid_rejected(self, kernel):
        # Genuine UID, but no Eject was ever created for it.
        orphan = kernel.uids.issue()
        with pytest.raises(UnknownUIDError):
            kernel.call_sync(orphan, "Greet", "x")


class TestCrashRecovery:
    def test_crash_without_checkpoint_then_invoke(self, kernel):
        counter = kernel.create(Counter)
        kernel.crash_eject(counter.uid)
        with pytest.raises(EjectCrashedError):
            kernel.call_sync(counter.uid, "Value")

    def test_crash_with_checkpoint_reactivates(self, kernel):
        counter = kernel.create(Counter, start=3)
        kernel.call_sync(counter.uid, "Increment")
        kernel.call_sync(counter.uid, "Save")
        kernel.call_sync(counter.uid, "Increment")  # not checkpointed
        kernel.crash_eject(counter.uid)
        # Reactivated from the passive representation: value == 4.
        assert kernel.call_sync(counter.uid, "Value") == 4
        assert kernel.stats.get("ejects_activated") == 1

    def test_node_crash_takes_down_residents(self, kernel):
        node = kernel.node("vax2")
        counter = kernel.create(Counter, node=node)
        kernel.crash_node("vax2")
        with pytest.raises(EjectCrashedError):
            kernel.call_sync(counter.uid, "Value")

    def test_node_recovery_allows_reactivation(self, kernel):
        node = kernel.node("vax2")
        counter = kernel.create(Counter, start=9, node=node)
        kernel.call_sync(counter.uid, "Save")
        kernel.crash_node("vax2")
        kernel.recover_node("vax2")
        assert kernel.call_sync(counter.uid, "Value") == 9
        assert kernel.find(counter.uid).node.name == "vax2"

    def test_reactivates_elsewhere_if_home_node_down(self, kernel):
        node = kernel.node("vax2")
        counter = kernel.create(Counter, start=1, node=node)
        kernel.call_sync(counter.uid, "Save")
        kernel.crash_node("vax2")
        # vax2 stays down; the Eject comes back on the default node.
        assert kernel.call_sync(counter.uid, "Value") == 1
        assert kernel.find(counter.uid).node.name == "node-0"

    def test_in_service_invocation_fails_on_crash(self, kernel):
        greeter = kernel.create(Greeter)
        failures = []

        class Caller(Eject):
            eden_type = "Caller2"

            def main(self):
                try:
                    yield self.call(greeter.uid, "Slow")
                except EjectCrashedError as exc:
                    failures.append(exc)

        kernel.create(Caller)
        # Let the call get delivered, then crash mid-service.
        kernel.run(until=lambda: greeter.received_count > 0)
        kernel.crash_eject(greeter.uid)
        kernel.run()
        assert len(failures) == 1


class TestDeactivation:
    def test_deactivate_without_checkpoint_disappears(self, kernel):
        counter = kernel.create(Counter)
        assert kernel.call_sync(counter.uid, "Quit") == "bye"
        with pytest.raises(EjectDeactivatedError):
            kernel.call_sync(counter.uid, "Value")

    def test_deactivate_with_checkpoint_reactivates(self, kernel):
        counter = kernel.create(Counter, start=8)
        kernel.call_sync(counter.uid, "Save")
        kernel.call_sync(counter.uid, "Quit")
        assert kernel.find(counter.uid) is None
        assert kernel.call_sync(counter.uid, "Value") == 8


class TestReceiveMatching:
    def test_selective_receive_by_operation(self, kernel):
        order = []

        class Picky(Eject):
            eden_type = "Picky"

            def main(self):
                first = yield Receive(operations=frozenset({"B"}))
                order.append(first.operation)
                yield SendReply(first, "b done")
                second = yield Receive(operations=frozenset({"A"}))
                order.append(second.operation)
                yield SendReply(second, "a done")

        picky = kernel.create(Picky)
        results = {}

        def client_a():
            results["a"] = yield Call(target=picky.uid, operation="A")

        def client_b():
            yield Sleep(1.0)  # B arrives after A is already queued
            results["b"] = yield Call(target=picky.uid, operation="B")

        kernel.spawn_client(client_a())
        kernel.spawn_client(client_b())
        kernel.run()
        assert order == ["B", "A"]
        assert results == {"a": "a done", "b": "b done"}

    def test_mailbox_fifo_within_filter(self, kernel):
        served = []

        class Server(Eject):
            eden_type = "Server"

            def main(self):
                while True:
                    invocation = yield Receive()
                    served.append(invocation.args[0])
                    yield SendReply(invocation, None)

        server = kernel.create(Server)
        for index in range(5):
            kernel.call_sync(server.uid, "Op", index)
        assert served == [0, 1, 2, 3, 4]


class TestKernelHousekeeping:
    def test_ejects_created_counted(self, kernel):
        kernel.create(Greeter)
        kernel.create(Greeter)
        assert kernel.stats.get("ejects_created") == 2

    def test_live_ejects_listed(self, kernel):
        greeter = kernel.create(Greeter)
        assert greeter in kernel.live_ejects()

    def test_registry_rejects_name_collision(self, kernel):
        kernel.create(Greeter)

        class Impostor(Eject):
            eden_type = "Greeter"

        with pytest.raises(KernelError, match="already registered"):
            kernel.create(Impostor)

    def test_nodes_accumulate(self, kernel):
        kernel.node("a")
        kernel.node("b")
        assert {node.name for node in kernel.nodes()} >= {"node-0", "a", "b"}

    def test_reply_to_forged_ticket_rejected(self, kernel):
        from repro.core.message import Invocation

        class Forger(Eject):
            eden_type = "Forger"
            outcome = []

            def main(self):
                fake = Invocation(target=self.uid, operation="X", ticket=424242)
                try:
                    yield SendReply(fake, "gotcha")
                except KernelError as exc:
                    Forger.outcome.append(exc)

        kernel.create(Forger)
        kernel.run()
        assert len(Forger.outcome) == 1


class TestDescribeWorld:
    def test_snapshot_mentions_everything(self, kernel):
        greeter = kernel.create(Greeter, name="greeter", node="vaxQ")
        kernel.run()
        description = kernel.describe_world()
        assert "virtual time" in description
        assert "node vaxQ" in description
        assert "greeter" in description
        assert "blocked" in description  # the server waits on Receive

    def test_crashed_node_flagged(self, kernel):
        kernel.node("dead").crash()
        assert "CRASHED" in kernel.describe_world()

    def test_empty_world(self):
        from repro.core import Kernel

        description = Kernel().describe_world()
        assert "(empty)" in description
