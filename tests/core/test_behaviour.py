"""Behavioural compatibility checks (paper §2)."""

from repro.core import Eject
from repro.core.behaviour import (
    BehaviourSpec,
    DIRECTORY_SPEC,
    MAP_SPEC,
    SINK_SPEC,
    SOURCE_SPEC,
    TRANSFER_SPEC,
    implements,
    operations_of,
)
from repro.filesystem import (
    Directory,
    DirectoryConcatenator,
    EdenFile,
    MapFile,
    TransactionalDirectory,
    UnixFile,
)
from repro.transput import ListSource, PassiveBuffer, PassiveSink
from repro.transput.readonly import ReadOnlyFilter


class TestOperationsOf:
    def test_op_methods_collected(self):
        class Sample(Eject):
            eden_type = "Sample"

            def op_Foo(self, invocation):
                return 1

            def op_Bar(self, invocation):
                return 2

        assert operations_of(Sample) == {"Foo", "Bar"}

    def test_inherited_operations_included(self):
        assert "Lookup" in operations_of(TransactionalDirectory)

    def test_declared_operations_included(self):
        class Manual(Eject):
            eden_type = "Manual"
            answers_operations = ("Ping",)

        assert "Ping" in operations_of(Manual)


class TestTheDirectoryMachine:
    def test_directory_implements_it(self):
        assert implements(Directory, DIRECTORY_SPEC)

    def test_concatenator_is_a_satisfactory_directory(self):
        """The paper's §2 worked example: "any Eject which responds in
        the appropriate way is a satisfactory directory" — modulo the
        mutating operations, which the concatenator also answers (via
        AddDirectory semantics it forwards differently, so we check the
        Lookup/List face)."""
        lookup_face = BehaviourSpec.of("lookup-face", "Lookup", "List")
        assert implements(DirectoryConcatenator, lookup_face)

    def test_transactional_directory_specializes_directory(self):
        base = BehaviourSpec("dir", operations_of(Directory))
        extended = BehaviourSpec(
            "txn-dir", operations_of(TransactionalDirectory)
        )
        assert extended.specializes(base)  # S' ⊇ S

    def test_missing_operations_reported(self):
        assert DIRECTORY_SPEC.missing_from(ListSource) == {
            "Lookup", "AddEntry", "DeleteEntry", "List"
        }


class TestTheStreamMachines:
    def test_sources_everywhere(self):
        for cls in (ListSource, EdenFile, Directory, MapFile, UnixFile):
            assert implements(cls, SOURCE_SPEC), cls
            assert implements(cls, TRANSFER_SPEC), cls

    def test_sinks(self):
        assert implements(PassiveSink, SINK_SPEC)
        assert implements(EdenFile, SINK_SPEC)  # files accept Writes too

    def test_mapfile_implements_both_protocols(self):
        """§6: "it may support both protocols"."""
        assert implements(MapFile, MAP_SPEC)
        assert implements(MapFile, SOURCE_SPEC)

    def test_plain_file_is_not_a_map(self):
        assert not implements(EdenFile, MAP_SPEC)

    def test_buffer_answers_both_faces(self):
        # PassiveBuffer serves Read/Write from a hand-written main
        # loop; it declares them via answers_operations.
        assert implements(PassiveBuffer, SOURCE_SPEC)
        assert implements(PassiveBuffer, SINK_SPEC)

    def test_readonly_filter_is_a_source_not_a_sink(self):
        assert implements(ReadOnlyFilter, SOURCE_SPEC)
        assert not implements(ReadOnlyFilter, SINK_SPEC)
