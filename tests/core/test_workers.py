"""The coordinator/workers organisation (§4 footnote)."""

import pytest

from repro.core import Sleep
from repro.core.workers import WorkerPoolEject


class SlowService(WorkerPoolEject):
    eden_type = "SlowService"

    def __init__(self, kernel, uid, name=None, worker_count=None):
        super().__init__(kernel, uid, name=name, worker_count=worker_count)
        self.log = []

    def op_Work(self, invocation):
        (tag,) = invocation.args
        yield Sleep(10.0)
        self.log.append(tag)
        return tag

    def op_Quick(self, invocation):
        return "quick"


class TestWorkerPool:
    def test_operations_overlap(self, kernel):
        """Two 10-unit jobs on two workers finish in ~10, not 20."""
        service = kernel.create(SlowService, worker_count=2)
        from repro.core.syscalls import Call

        results = []

        def client(tag):
            def body():
                results.append((yield Call(target=service.uid,
                                           operation="Work", args=(tag,))))

            return body

        kernel.spawn_client(client("a")())
        kernel.spawn_client(client("b")())
        kernel.run()
        assert sorted(results) == ["a", "b"]
        assert kernel.clock.now < 20.0  # overlapped, not serialized
        assert service.jobs_completed == 2

    def test_single_worker_serializes(self, kernel):
        service = kernel.create(SlowService, worker_count=1)
        from repro.core.syscalls import Call

        def client(tag):
            def body():
                yield Call(target=service.uid, operation="Work", args=(tag,))

            return body

        kernel.spawn_client(client("a")())
        kernel.spawn_client(client("b")())
        kernel.run()
        assert kernel.clock.now >= 20.0

    def test_queue_depth_visible(self, kernel):
        service = kernel.create(SlowService, worker_count=1)
        from repro.core.syscalls import Call

        for tag in ("a", "b", "c"):
            def body(t=tag):
                yield Call(target=service.uid, operation="Work", args=(t,))

            kernel.spawn_client(body())
        # Run just until all three invocations are queued/being served.
        kernel.run(until=lambda: service.received_count == 3)
        assert service.queue_depth <= 2  # one in service, rest queued
        kernel.run()
        assert service.log == ["a", "b", "c"]  # FIFO service order

    def test_plain_and_slow_ops_mix(self, kernel):
        service = kernel.create(SlowService, worker_count=2)
        assert kernel.call_sync(service.uid, "Quick") == "quick"

    def test_unknown_op_errors_cleanly(self, kernel):
        from repro.core.errors import NoSuchOperationError

        service = kernel.create(SlowService)
        with pytest.raises(NoSuchOperationError):
            kernel.call_sync(service.uid, "Nope")
        # The pool survives bad requests.
        assert kernel.call_sync(service.uid, "Quick") == "quick"

    def test_worker_count_validation(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(SlowService, worker_count=0)
