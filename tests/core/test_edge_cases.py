"""Edge cases across the core: receive filters, parked mail, signals,
scheduler misuse, channel helpers."""

import pytest

from repro.core import (
    Call,
    Eject,
    Kernel,
    Receive,
    SendReply,
    Sleep,
)
from repro.core.capability import ChannelCapability
from repro.core.errors import EjectDeactivatedError, KernelError
from repro.core.process import Process, ProcessState
from repro.core.scheduler import Scheduler
from repro.core.syscalls import GetTime


class TestReceiveChannelFiltering:
    def test_channel_qualified_receive(self, kernel):
        order = []

        class Demux(Eject):
            eden_type = "Demux"

            def main(self):
                red = yield Receive.of(channels=["red"])
                order.append(("red", red.args[0]))
                yield SendReply(red, None)
                blue = yield Receive.of(channels=["blue"])
                order.append(("blue", blue.args[0]))
                yield SendReply(blue, None)

        demux = kernel.create(Demux)

        def client_blue():
            yield Call(target=demux.uid, operation="Put", args=(1,),
                       channel="blue")

        def client_red():
            yield Sleep(1.0)
            yield Call(target=demux.uid, operation="Put", args=(2,),
                       channel="red")

        kernel.spawn_client(client_blue())
        kernel.spawn_client(client_red())
        kernel.run()
        # The red receive matched first despite blue arriving earlier.
        assert order == [("red", 2), ("blue", 1)]

    def test_unqualified_invocation_matches_none_channel_filter(self, kernel):
        got = []

        class OnlyPlain(Eject):
            eden_type = "OnlyPlain"

            def main(self):
                invocation = yield Receive.of(channels=[None])
                got.append(invocation.channel)
                yield SendReply(invocation, None)

        plain = kernel.create(OnlyPlain)
        kernel.call_sync(plain.uid, "Op")
        assert got == [None]


class TestParkedMailAcrossDeactivation:
    def test_mail_parked_while_passive_is_redelivered(self, kernel):
        class Sleeper(Eject):
            eden_type = "Sleeper"

            def __init__(self, kernel, uid, name=None):
                super().__init__(kernel, uid, name=name)
                self.handled = []

            def op_Note(self, invocation):
                self.handled.append(invocation.args[0])
                return True

            def op_Nap(self, invocation):
                yield self.checkpoint()
                yield self.reply(invocation, True)
                yield self.deactivate()

            def passive_representation(self):
                return {"handled": list(self.handled)}

            def restore(self, data):
                self.handled = list(data["handled"])

        sleeper = kernel.create(Sleeper)
        kernel.call_sync(sleeper.uid, "Nap")
        assert kernel.find(sleeper.uid) is None
        # Invoking the passive Eject reactivates it and serves the call.
        assert kernel.call_sync(sleeper.uid, "Note", "wake") is True
        reborn = kernel.find(sleeper.uid)
        assert reborn is not sleeper
        assert reborn.handled == ["wake"]

    def test_deactivate_without_checkpoint_errors_queued_mail(self, kernel):
        class Quitter(Eject):
            eden_type = "Quitter"

            def main(self):
                first = yield Receive()
                yield self.reply(first, "served")
                yield self.deactivate()

        quitter = kernel.create(Quitter)
        results = {}

        def client(tag):
            def body():
                try:
                    results[tag] = yield Call(target=quitter.uid, operation="Op")
                except EjectDeactivatedError as exc:
                    results[tag] = exc

            return body

        kernel.spawn_client(client("first")())
        kernel.spawn_client(client("second")())
        kernel.run()
        assert results["first"] == "served"
        assert isinstance(results["second"], EjectDeactivatedError)


class TestSchedulerMisuse:
    def test_unblock_ready_process_rejected(self):
        scheduler = Scheduler()

        def body():
            yield GetTime()

        process = scheduler.spawn(body(), name="p")
        with pytest.raises(KernelError):
            scheduler.unblock(process, None)

    def test_unblock_dead_process_is_noop(self):
        scheduler = Scheduler()

        def body():
            return
            yield  # pragma: no cover

        process = scheduler.spawn(body(), name="p")
        scheduler.run()
        scheduler.unblock(process, None)  # silently ignored
        assert process.state is ProcessState.DONE

    def test_step_finished_process_rejected(self):
        def body():
            return
            yield  # pragma: no cover

        process = Process(body(), name="p")
        process.step()
        with pytest.raises(KernelError):
            process.step()

    def test_receive_outside_eject_rejected(self, kernel):
        def rogue():
            yield Receive()

        process = kernel.spawn_client(rogue())
        with pytest.raises(Exception, match="only Eject processes"):
            kernel.run(until=lambda: not process.alive)

    def test_checkpoint_outside_eject_rejected(self, kernel):
        from repro.core.syscalls import DoCheckpoint

        def rogue():
            yield DoCheckpoint()

        process = kernel.spawn_client(rogue())
        with pytest.raises(Exception, match="only Ejects"):
            kernel.run(until=lambda: not process.alive)


class TestChannelHelpersOnEject:
    def test_mint_and_validate(self, kernel):
        class Owner(Eject):
            eden_type = "ChanOwner"

        owner = kernel.create(Owner)
        cap = owner.mint_channel("Report")
        assert owner.validate_channel(cap) == "Report"
        assert owner.validate_channel("Report") == "Report"
        assert owner.validate_channel(3) == "3"
        assert owner.validate_channel(None) is None

    def test_foreign_capability_fails_validation(self, kernel):
        class Owner(Eject):
            eden_type = "ChanOwner2"

        ours = kernel.create(Owner)
        ours.mint_channel("Report")
        foreign = ChannelCapability(
            owner=ours.uid, name="Report", secret=12345
        )
        assert ours.validate_channel(foreign) is None


class TestReactivationCornerCases:
    def test_all_nodes_crashed_is_fatal(self):
        kernel = Kernel()

        class Durable(Eject):
            eden_type = "Durable"

            def op_Save(self, invocation):
                yield self.checkpoint()
                return True

        durable = kernel.create(Durable)
        kernel.call_sync(durable.uid, "Save")
        kernel.crash_node("node-0")
        # Everything is down; the invocation cannot find a home.
        with pytest.raises(Exception):
            kernel.call_sync(durable.uid, "Save")


class TestDeactivateWithInFlightService:
    def test_in_service_invocation_fails_on_deactivate(self, kernel):
        """A worker mid-operation when another process deactivates the
        Eject: the stranded caller gets a clean error, not a hang."""
        from repro.core import Eject, Sleep
        from repro.core.syscalls import Call

        class TwoFace(Eject):
            eden_type = "TwoFace"

            def op_Slow(self, invocation):
                yield Sleep(100.0)
                return "never"

            def op_Quit(self, invocation):
                yield self.reply(invocation, "bye")
                yield self.deactivate()

            def process_bodies(self):
                return [("a", self.main()), ("b", self.main())]

        service = kernel.create(TwoFace)
        outcomes = {}

        def slow_client():
            try:
                outcomes["slow"] = yield Call(target=service.uid,
                                              operation="Slow")
            except EjectDeactivatedError as exc:
                outcomes["slow"] = exc

        def quit_client():
            yield Sleep(5.0)  # let Slow get into service first
            outcomes["quit"] = yield Call(target=service.uid,
                                          operation="Quit")

        kernel.spawn_client(slow_client())
        kernel.spawn_client(quit_client())
        kernel.run()
        assert outcomes["quit"] == "bye"
        assert isinstance(outcomes["slow"], EjectDeactivatedError)
