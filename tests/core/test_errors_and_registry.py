"""The error hierarchy, the type registry, deadlock detection, and the
small utility corners of the core."""

import pytest

from repro.core import Eject, Kernel
from repro.core.capability import ChannelMinter, channel_key
from repro.core.errors import (
    BufferOverflowError,
    ChannelSecurityError,
    CheckpointError,
    DirectoryError,
    DuplicateEntryError,
    EdenError,
    EjectCrashedError,
    EndOfStreamError,
    HostFSError,
    HostFileNotFoundError,
    InvocationError,
    KernelError,
    NoSuchChannelError,
    NoSuchEntryError,
    SchedulerDeadlockError,
    ShellError,
    ShellNameError,
    ShellSyntaxError,
    StreamProtocolError,
    TransactionAbortedError,
    TransactionError,
    TransactionStateError,
)
from repro.core.registry import TypeRegistry
from repro.core.uid import UIDFactory
from repro.shell.lexer import split_statements, tokenize


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_cls",
        [
            BufferOverflowError, ChannelSecurityError, CheckpointError,
            DirectoryError, EjectCrashedError, EndOfStreamError,
            HostFSError, InvocationError, KernelError, ShellError,
            StreamProtocolError, TransactionError, SchedulerDeadlockError,
        ],
    )
    def test_everything_is_an_eden_error(self, error_cls):
        assert issubclass(error_cls, EdenError)

    def test_specific_parentage(self):
        assert issubclass(NoSuchChannelError, InvocationError)
        assert issubclass(ChannelSecurityError, InvocationError)
        assert issubclass(NoSuchEntryError, DirectoryError)
        assert issubclass(DuplicateEntryError, DirectoryError)
        assert issubclass(HostFileNotFoundError, HostFSError)
        assert issubclass(ShellSyntaxError, ShellError)
        assert issubclass(ShellNameError, ShellError)
        assert issubclass(TransactionAbortedError, TransactionError)
        assert issubclass(TransactionStateError, TransactionError)
        assert issubclass(SchedulerDeadlockError, KernelError)

    def test_messages_carry_context(self):
        uid = UIDFactory().issue()
        assert repr(uid) in str(EjectCrashedError(uid))
        assert "ghost" in str(NoSuchEntryError("ghost"))
        assert "/x" in str(HostFileNotFoundError("/x"))


class TestTypeRegistry:
    class Thing(Eject):
        eden_type = "RegistryThing"

    def test_register_and_get(self):
        registry = TypeRegistry()
        registry.register(self.Thing)
        assert registry.get("RegistryThing") is self.Thing
        assert registry.known("RegistryThing")
        assert "RegistryThing" in registry.names()

    def test_reregistering_same_class_is_noop(self):
        registry = TypeRegistry()
        registry.register(self.Thing)
        registry.register(self.Thing)
        assert registry.names().count("RegistryThing") == 1

    def test_collision_rejected(self):
        registry = TypeRegistry()
        registry.register(self.Thing)

        class Impostor(Eject):
            eden_type = "RegistryThing"

        with pytest.raises(KernelError):
            registry.register(Impostor)

    def test_unknown_type(self):
        with pytest.raises(KernelError):
            TypeRegistry().get("Nope")

    def test_instantiate_blank(self):
        registry = TypeRegistry()
        registry.register(self.Thing)
        kernel = Kernel()
        uid = kernel.uids.issue()
        blank = registry.instantiate_blank("RegistryThing", kernel, uid, "t")
        assert isinstance(blank, self.Thing)
        assert blank.name == "t"


class TestChannelKey:
    def test_identity_for_plain_ids(self):
        assert channel_key("Report") == "Report"
        assert channel_key(2) == 2

    def test_capabilities_key_by_value(self):
        minter = ChannelMinter(UIDFactory().issue())
        cap = minter.mint("Output")
        assert channel_key(cap) == cap
        assert {channel_key(cap): 1}[minter.mint("Output")] == 1


class TestDeadlockDetection:
    def test_cyclic_pipeline_raises(self):
        """Two lazy filters reading each other can never finish; the
        pipeline fails loudly instead of returning a short stream."""
        from repro.filters import identity
        from repro.transput import (
            CollectorSink,
            ReadOnlyFilter,
            StreamEndpoint,
        )
        from repro.transput.pipeline import Pipeline

        kernel = Kernel()
        a = kernel.create(ReadOnlyFilter, transducer=identity(), name="A")
        b = kernel.create(
            ReadOnlyFilter, transducer=identity(), name="B",
            inputs=[StreamEndpoint(a.uid, None)],
        )
        a.connect_input(StreamEndpoint(b.uid, None))
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(a.uid, None)]
        )
        pipeline = Pipeline(
            kernel=kernel, discipline="readonly", source=a,
            filters=[b], sinks=[sink],
        )
        with pytest.raises(SchedulerDeadlockError, match="blocked on"):
            pipeline.run_to_completion()

    def test_stuck_processes_excludes_servers(self):
        from repro.transput import ListSource

        kernel = Kernel()
        kernel.create(ListSource, items=[1])  # a server parked on Receive
        kernel.run()
        assert kernel.scheduler.stuck_processes() == []

    def test_lexer_split_statements(self):
        statements = split_statements(tokenize("a | b; c; ; d"))
        assert len(statements) == 3
