"""Checkpoint policies: bounded loss under periodic and counted plans."""

import pytest

from repro.core import Eject
from repro.core.checkpoint_policy import (
    DirtyCounter,
    checkpoint_every,
    periodic_checkpointing,
)


class PeriodicCounter(Eject):
    """A counter that checkpoints every 10 time units."""

    eden_type = "PeriodicCounter"

    def __init__(self, kernel, uid, name=None):
        super().__init__(kernel, uid, name=name)
        self.events = []

    def op_Record(self, invocation):
        self.events.append(invocation.args[0])
        return len(self.events)

    def op_Events(self, invocation):
        return list(self.events)

    def process_bodies(self):
        return [
            ("main", self.main()),
            ("ckpt", periodic_checkpointing(self, interval=10.0)),
        ]

    def passive_representation(self):
        return {"events": list(self.events)}

    def restore(self, data):
        self.events = list(data["events"])


class CountedDirectory(Eject):
    """Checkpoints after every 3 mutations."""

    eden_type = "CountedDirectory"

    def __init__(self, kernel, uid, name=None):
        super().__init__(kernel, uid, name=name)
        self.entries = {}
        self.dirty = DirtyCounter(f"{self.name}.dirty")

    def op_Put(self, invocation):
        key, value = invocation.args
        self.entries[key] = value
        yield from self.dirty.mark()
        return True

    def op_Keys(self, invocation):
        return sorted(self.entries)

    def process_bodies(self):
        return [
            ("main", self.main()),
            ("ckpt", checkpoint_every(self, self.dirty, changes=3)),
        ]

    def passive_representation(self):
        return {"entries": dict(self.entries)}

    def restore(self, data):
        self.entries = dict(data["entries"])


class TestPeriodicPolicy:
    def test_loss_bounded_by_one_window(self, kernel):
        # NOTE: a periodic checkpointer never lets the simulation
        # quiesce, so every run here is bounded with `until=`.
        from repro.core.syscalls import Call, Sleep

        counter = kernel.create(PeriodicCounter)
        driver_done = {"done": False}

        def driver():
            # One record roughly every 6 time units, finishing ~t=24.
            for index in range(4):
                yield Sleep(4.0)
                yield Call(target=counter.uid, operation="Record",
                           args=(index,))
            driver_done["done"] = True

        kernel.spawn_client(driver())
        kernel.run(until=lambda: driver_done["done"])
        # Let the next periodic checkpoint capture all four records.
        kernel.run(until=lambda: kernel.clock.now >= 30.0)
        # One more record lands *after* that checkpoint...
        kernel.call_sync(counter.uid, "Record", 99)
        # ...and the crash arrives before the next one: exactly one
        # window of work (the 99) is lost, nothing more.
        kernel.crash_eject(counter.uid)
        assert kernel.call_sync(counter.uid, "Events") == [0, 1, 2, 3]

    def test_new_eject_crashing_before_first_checkpoint_disappears(
        self, kernel
    ):
        from repro.core.errors import EjectCrashedError

        counter = kernel.create(PeriodicCounter)
        kernel.crash_eject(counter.uid)
        with pytest.raises(EjectCrashedError):
            kernel.call_sync(counter.uid, "Events")

    def test_interval_validation(self, kernel):
        counter = kernel.create(PeriodicCounter)
        with pytest.raises(ValueError):
            next(periodic_checkpointing(counter, interval=0))

    def test_policy_checkpoints_counted(self, kernel):
        kernel.create(PeriodicCounter)
        kernel.run(until=lambda: kernel.clock.now >= 35.0)
        assert kernel.stats.get("policy_checkpoints") == 3


class TestCountedPolicy:
    def test_checkpoint_after_n_changes(self, kernel):
        directory = kernel.create(CountedDirectory)
        for index in range(7):
            kernel.call_sync(directory.uid, "Put", f"k{index}", index)
        # 7 mutations, checkpoint every 3: representations at 3 and 6.
        assert kernel.stats.get("policy_checkpoints") == 2
        kernel.crash_eject(directory.uid)
        recovered = kernel.call_sync(directory.uid, "Keys")
        assert recovered == [f"k{index}" for index in range(6)]
        assert directory.dirty.total_changes == 7

    def test_limit_validation(self, kernel):
        directory = kernel.create(CountedDirectory)
        with pytest.raises(ValueError):
            next(directory.dirty.policy_body(directory, limit=0))
