"""UID issue, uniqueness, verification and forgery rejection."""

import pytest

from repro.core.errors import ForgeryError
from repro.core.uid import NONCE_BITS, UID, UIDFactory


class TestIssue:
    def test_serials_increase(self):
        factory = UIDFactory()
        uids = [factory.issue() for _ in range(10)]
        assert [u.serial for u in uids] == list(range(10))

    def test_all_unique(self):
        factory = UIDFactory()
        uids = [factory.issue() for _ in range(200)]
        assert len(set(uids)) == 200

    def test_issue_many(self):
        factory = UIDFactory()
        uids = list(factory.issue_many(5))
        assert len(uids) == 5
        assert factory.issued_count == 5

    def test_space_stamped(self):
        factory = UIDFactory(space=7)
        assert factory.issue().space == 7
        assert factory.space == 7

    def test_str_and_brief(self):
        factory = UIDFactory(space=1)
        uid = factory.issue()
        assert str(uid) == "uid:1.0"
        assert uid.brief() == "1.0"


class TestDeterminism:
    def test_same_seed_same_nonces(self):
        a = [UIDFactory(seed=42).issue() for _ in range(1)][0]
        b = [UIDFactory(seed=42).issue() for _ in range(1)][0]
        assert a == b

    def test_different_seed_different_nonces(self):
        a = UIDFactory(seed=1).issue()
        b = UIDFactory(seed=2).issue()
        assert a != b


class TestVerification:
    def test_genuine_accepted(self):
        factory = UIDFactory()
        uid = factory.issue()
        assert factory.is_genuine(uid)
        assert factory.verify(uid) is uid

    def test_forged_nonce_rejected(self):
        factory = UIDFactory()
        genuine = factory.issue()
        forged = UID(space=genuine.space, serial=genuine.serial,
                     nonce=(genuine.nonce + 1) % (1 << NONCE_BITS))
        assert not factory.is_genuine(forged)
        with pytest.raises(ForgeryError):
            factory.verify(forged)

    def test_unissued_serial_rejected(self):
        factory = UIDFactory()
        factory.issue()
        forged = UID(space=0, serial=99, nonce=0)
        assert not factory.is_genuine(forged)

    def test_wrong_space_rejected(self):
        factory = UIDFactory(space=0)
        other = UIDFactory(space=1)
        assert not factory.is_genuine(other.issue())

    def test_non_uid_rejected(self):
        factory = UIDFactory()
        assert not factory.is_genuine("uid:0.0")  # type: ignore[arg-type]


class TestValueSemantics:
    def test_equality_includes_nonce(self):
        factory = UIDFactory()
        uid = factory.issue()
        same = UID(space=uid.space, serial=uid.serial, nonce=uid.nonce)
        assert uid == same
        assert hash(uid) == hash(same)

    def test_ordering_is_total(self):
        factory = UIDFactory()
        uids = [factory.issue() for _ in range(5)]
        assert sorted(uids) == sorted(uids, key=lambda u: (u.space, u.serial, u.nonce))

    def test_repr_hides_nonce(self):
        uid = UIDFactory().issue()
        assert "nonce" not in repr(uid)
