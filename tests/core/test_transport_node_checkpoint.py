"""Transport cost model, node lifecycle, stable store."""

import pytest

from repro.core.checkpoint import StableStore
from repro.core.errors import CheckpointError
from repro.core.node import Node
from repro.core.scheduler import Scheduler
from repro.core.transport import Transport, TransportCosts
from repro.core.uid import UIDFactory


class TestTransportCosts:
    def test_local_vs_remote_latency(self):
        costs = TransportCosts(local_latency=1.0, remote_latency=10.0)
        assert costs.message_cost(0, remote=False) == 1.0
        assert costs.message_cost(0, remote=True) == 10.0

    def test_bandwidth_term(self):
        costs = TransportCosts(local_latency=1.0, remote_latency=10.0,
                               bandwidth=100.0)
        assert costs.message_cost(200, remote=False) == pytest.approx(3.0)
        assert costs.message_cost(200, remote=True) == pytest.approx(12.0)

    def test_infinite_bandwidth(self):
        costs = TransportCosts(bandwidth=None)
        assert costs.message_cost(10_000, remote=False) == costs.local_latency


class TestTransport:
    def test_delivery_after_latency(self):
        scheduler = Scheduler()
        transport = Transport(scheduler, TransportCosts(local_latency=3.0))
        arrived = []
        transport.send(0, remote=False, deliver=lambda: arrived.append(
            scheduler.clock.now))
        scheduler.run()
        assert arrived == [3.0]

    def test_counters(self):
        scheduler = Scheduler()
        transport = Transport(scheduler)
        transport.send(10, remote=False, deliver=lambda: None, kind="invocation")
        transport.send(20, remote=True, deliver=lambda: None, kind="reply")
        scheduler.run()
        stats = scheduler.stats
        assert stats.get("local_messages") == 1
        assert stats.get("remote_messages") == 1
        assert stats.get("invocations_sent") == 1
        assert stats.get("replies_sent") == 1
        assert stats.get("bytes_transferred") == 30

    def test_fifo_between_same_cost_messages(self):
        scheduler = Scheduler()
        transport = Transport(scheduler)
        order = []
        transport.send(0, remote=False, deliver=lambda: order.append(1))
        transport.send(0, remote=False, deliver=lambda: order.append(2))
        scheduler.run()
        assert order == [1, 2]


class TestNode:
    def test_host_and_evict(self):
        node = Node("n")
        uid = UIDFactory().issue()
        node.host(uid)
        assert uid in node.resident_uids
        node.evict(uid)
        assert uid not in node.resident_uids

    def test_crash_recover(self):
        node = Node("n")
        node.crash()
        assert node.crashed
        node.recover()
        assert not node.crashed

    def test_repr(self):
        node = Node("vax1")
        assert "vax1" in repr(node)


class TestStableStore:
    def test_round_trip(self):
        store = StableStore()
        uid = UIDFactory().issue()
        store.write(uid, "File", {"records": [1, 2]}, checkpoint_time=5.0)
        rep = store.read(uid)
        assert rep is not None
        assert rep.data == {"records": [1, 2]}
        assert rep.eden_type == "File"
        assert rep.generation == 1

    def test_generations_increment(self):
        store = StableStore()
        uid = UIDFactory().issue()
        store.write(uid, "File", 1, 0.0)
        store.write(uid, "File", 2, 1.0)
        rep = store.read(uid)
        assert rep.generation == 2
        assert rep.data == 2
        assert store.write_count == 2

    def test_write_deep_copies(self):
        store = StableStore()
        uid = UIDFactory().issue()
        live = {"records": [1]}
        store.write(uid, "File", live, 0.0)
        live["records"].append(2)
        assert store.read(uid).data == {"records": [1]}

    def test_read_deep_copies(self):
        store = StableStore()
        uid = UIDFactory().issue()
        store.write(uid, "File", {"records": [1]}, 0.0)
        first = store.read(uid)
        first.data["records"].append(99)
        assert store.read(uid).data == {"records": [1]}

    def test_missing_is_none(self):
        assert StableStore().read(UIDFactory().issue()) is None

    def test_forget(self):
        store = StableStore()
        uid = UIDFactory().issue()
        store.write(uid, "File", 1, 0.0)
        store.forget(uid)
        assert not store.has(uid)
        assert store.uids() == []

    def test_uncopyable_rejected(self):
        store = StableStore()
        uid = UIDFactory().issue()
        uncopyable = (value for value in [])  # generators can't deep-copy
        with pytest.raises(CheckpointError):
            store.write(uid, "File", uncopyable, 0.0)
