"""Process lifecycle and the deterministic scheduler."""

import pytest

from repro.core.errors import KernelError, ProcessFailedError
from repro.core.process import Process, ProcessState
from repro.core.scheduler import Scheduler
from repro.core.syscalls import (
    ExitProcess,
    GetTime,
    NotifySignal,
    Signal,
    Sleep,
    Spawn,
    WaitSignal,
    YieldControl,
)


class TestProcess:
    def test_rejects_non_generator(self):
        with pytest.raises(TypeError):
            Process(lambda: None, name="bad")  # type: ignore[arg-type]

    def test_step_returns_syscall_then_none(self):
        def body():
            yield GetTime()

        process = Process(body(), name="p")
        syscall = process.step()
        assert isinstance(syscall, GetTime)
        process.resume_with(0.0)
        assert process.step() is None
        assert process.state is ProcessState.DONE

    def test_result_captured(self):
        def body():
            return 42
            yield  # pragma: no cover

        process = Process(body(), name="p")
        process.step()
        assert process.result == 42

    def test_non_syscall_yield_fails(self):
        def body():
            yield "not a syscall"

        process = Process(body(), name="p")
        with pytest.raises(KernelError):
            process.step()
        assert process.state is ProcessState.FAILED

    def test_exception_marks_failed(self):
        def body():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        process = Process(body(), name="p")
        with pytest.raises(RuntimeError):
            process.step()
        assert process.state is ProcessState.FAILED
        assert isinstance(process.failure, RuntimeError)

    def test_thrown_exception_delivered(self):
        def body():
            try:
                yield GetTime()
            except ValueError:
                return "caught"

        process = Process(body(), name="p")
        process.step()
        process.resume_with_exception(ValueError("x"))
        assert process.step() is None
        assert process.result == "caught"

    def test_kill(self):
        def body():
            yield GetTime()

        process = Process(body(), name="p")
        process.kill()
        assert not process.alive


class TestSchedulerBasics:
    def test_runs_to_quiescence(self):
        scheduler = Scheduler()
        log = []

        def body():
            log.append("a")
            yield YieldControl()
            log.append("b")

        scheduler.spawn(body(), name="p")
        steps = scheduler.run()
        assert log == ["a", "b"]
        assert steps >= 2

    def test_round_robin_is_deterministic(self):
        def make_log():
            scheduler = Scheduler()
            log = []

            def worker(tag):
                for _ in range(3):
                    log.append(tag)
                    yield YieldControl()

            scheduler.spawn(worker("x"), name="x")
            scheduler.spawn(worker("y"), name="y")
            scheduler.run()
            return log

        assert make_log() == make_log()
        assert make_log()[:2] == ["x", "y"]

    def test_sleep_advances_virtual_time(self):
        scheduler = Scheduler()
        times = []

        def body():
            yield Sleep(5.0)
            times.append((yield GetTime()))
            yield Sleep(2.5)
            times.append((yield GetTime()))

        scheduler.spawn(body(), name="sleeper")
        scheduler.run()
        assert times == [5.0, 7.5]

    def test_sleep_ordering(self):
        scheduler = Scheduler()
        order = []

        def sleeper(tag, duration):
            yield Sleep(duration)
            order.append(tag)

        scheduler.spawn(sleeper("late", 10), name="late")
        scheduler.spawn(sleeper("early", 1), name="early")
        scheduler.run()
        assert order == ["early", "late"]

    def test_max_steps_guard(self):
        scheduler = Scheduler()

        def spinner():
            while True:
                yield YieldControl()

        scheduler.spawn(spinner(), name="spin")
        with pytest.raises(KernelError, match="exceeded"):
            scheduler.run(max_steps=100)

    def test_until_predicate_stops_early(self):
        scheduler = Scheduler()
        counter = {"n": 0}

        def body():
            while True:
                counter["n"] += 1
                yield YieldControl()

        scheduler.spawn(body(), name="p")
        scheduler.run(until=lambda: counter["n"] >= 5, max_steps=1000)
        assert counter["n"] == 5

    def test_negative_event_delay_rejected(self):
        with pytest.raises(ValueError):
            Scheduler().schedule_event(-1.0, lambda: None)


class TestSignals:
    def test_wait_and_notify(self):
        scheduler = Scheduler()
        signal = Signal("s")
        got = []

        def waiter():
            got.append((yield WaitSignal(signal)))

        def notifier():
            yield YieldControl()
            count = yield NotifySignal(signal, value="hello")
            got.append(count)

        scheduler.spawn(waiter(), name="w")
        scheduler.spawn(notifier(), name="n")
        scheduler.run()
        assert got == ["hello", 1]

    def test_notify_with_no_waiters(self):
        scheduler = Scheduler()
        counts = []

        def notifier():
            counts.append((yield NotifySignal(Signal("empty"))))

        scheduler.spawn(notifier(), name="n")
        scheduler.run()
        assert counts == [0]

    def test_notify_wakes_all(self):
        scheduler = Scheduler()
        signal = Signal("s")
        woken = []

        def waiter(tag):
            yield WaitSignal(signal)
            woken.append(tag)

        def notifier():
            yield YieldControl()
            yield NotifySignal(signal)

        scheduler.spawn(waiter(1), name="w1")
        scheduler.spawn(waiter(2), name="w2")
        scheduler.spawn(notifier(), name="n")
        scheduler.run()
        assert sorted(woken) == [1, 2]


class TestSpawnAndFailure:
    def test_spawn_child(self):
        scheduler = Scheduler()
        log = []

        def child():
            log.append("child")
            yield GetTime()

        def parent():
            name = yield Spawn(lambda: child(), name="kid")
            log.append(name)

        scheduler.spawn(parent(), name="parent")
        scheduler.run()
        assert "child" in log
        assert any("kid" in entry for entry in log if isinstance(entry, str))

    def test_spawn_names_deduplicated(self):
        scheduler = Scheduler()
        names = []

        def child():
            return
            yield  # pragma: no cover

        def parent():
            for _ in range(3):
                names.append((yield Spawn(lambda: child(), name="kid")))

        scheduler.spawn(parent(), name="parent")
        scheduler.run()
        assert len(set(names)) == 3

    def test_exit_process(self):
        scheduler = Scheduler()
        log = []

        def body():
            log.append("before")
            yield ExitProcess()
            log.append("after")  # pragma: no cover

        scheduler.spawn(body(), name="p")
        scheduler.run()
        assert log == ["before"]

    def test_failure_raises_by_default(self):
        scheduler = Scheduler()

        def body():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        scheduler.spawn(body(), name="p")
        with pytest.raises(ProcessFailedError):
            scheduler.run()

    def test_failure_recorded_when_not_raising(self):
        scheduler = Scheduler()

        def body():
            raise RuntimeError("boom")
            yield  # pragma: no cover

        scheduler.spawn(body(), name="p")
        scheduler.run(raise_on_failure=False)
        assert len(scheduler.failures) == 1
        assert scheduler.failures[0].process_name == "p"

    def test_context_switches_counted(self):
        scheduler = Scheduler()

        def body():
            yield YieldControl()
            yield YieldControl()

        scheduler.spawn(body(), name="p")
        scheduler.run()
        assert scheduler.stats.get("context_switches") == 3
