"""The shared JSONL trace format: simulator and net runtime interop."""

import io

from repro.core import Kernel
from repro.core.tracing import Tracer, event_to_dict, load_jsonl
from repro.transput import compose_readonly_pipeline


def test_roundtrip_through_a_file(tmp_path):
    tracer = Tracer(enabled=True)
    tracer.emit(0.0, "invoke", "sink", op="Read", batch=1)
    tracer.emit(1.5, "reply", "source", items=3)
    path = str(tmp_path / "trace.jsonl")
    assert tracer.to_jsonl(path) == 2
    events = load_jsonl(path)
    assert events == tracer.events


def test_roundtrip_through_a_stream():
    tracer = Tracer(enabled=True)
    tracer.emit(2.0, "send", "stage", frame="READ", bytes=42)
    buffer = io.StringIO()
    tracer.to_jsonl(buffer)
    assert load_jsonl(io.StringIO(buffer.getvalue())) == tracer.events


def test_blank_lines_skipped():
    assert load_jsonl(io.StringIO("\n\n")) == []


def test_exotic_detail_values_stringified_not_lost():
    tracer = Tracer(enabled=True)
    tracer.emit(0.0, "spawn", "kernel", target=object())
    record = event_to_dict(tracer.events[0])
    assert isinstance(record["detail"]["target"], str)
    buffer = io.StringIO()
    tracer.to_jsonl(buffer)
    (event,) = load_jsonl(io.StringIO(buffer.getvalue()))
    assert event.kind == "spawn"


def test_simulator_trace_survives_the_wire_format(tmp_path):
    """A real kernel trace exports and reloads with nothing dropped."""
    kernel = Kernel(seed=0, trace=True)
    pipeline = compose_readonly_pipeline(
        kernel, ["a", "b"], [],
    )
    pipeline.run_to_completion()
    source_events = kernel.tracer.events
    assert source_events, "expected the traced kernel to record events"
    path = str(tmp_path / "kernel.jsonl")
    kernel.tracer.to_jsonl(path)
    reloaded = load_jsonl(path)
    assert len(reloaded) == len(source_events)
    assert [event.kind for event in reloaded] == [
        event.kind for event in source_events
    ]
    assert [event.time for event in reloaded] == [
        event.time for event in source_events
    ]
