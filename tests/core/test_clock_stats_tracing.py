"""VirtualClock, KernelStats and Tracer behaviour."""

import pytest

from repro.core.clock import VirtualClock
from repro.core.errors import KernelError
from repro.core.stats import KernelStats
from repro.core.tracing import Tracer


class TestClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(4.5)
        assert clock.now == 4.5

    def test_advance_to_same_time_is_fine(self):
        clock = VirtualClock(start=3.0)
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_backwards_rejected(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(KernelError):
            clock.advance_to(9.0)


class TestStats:
    def test_bump_and_get(self):
        stats = KernelStats()
        stats.bump("x")
        stats.bump("x", 4)
        assert stats.get("x") == 5
        assert stats.get("missing") == 0

    def test_negative_bump_rejected(self):
        with pytest.raises(ValueError):
            KernelStats().bump("x", -1)

    def test_snapshot_is_isolated(self):
        stats = KernelStats()
        stats.bump("x")
        snap = stats.snapshot()
        stats.bump("x")
        assert snap["x"] == 1
        assert stats.get("x") == 2

    def test_diff(self):
        stats = KernelStats()
        stats.bump("a", 3)
        before = stats.snapshot()
        stats.bump("a", 2)
        stats.bump("b", 7)
        delta = stats.snapshot().diff(before)
        assert delta["a"] == 2
        assert delta["b"] == 7

    def test_names_sorted(self):
        stats = KernelStats()
        stats.bump("zeta")
        stats.bump("alpha")
        assert stats.names() == ["alpha", "zeta"]


class TestTracer:
    def test_disabled_by_default(self):
        tracer = Tracer()
        tracer.emit(0.0, "invoke", "someone")
        assert tracer.events == []

    def test_enabled_collects(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "invoke", "a", op="Read")
        tracer.emit(2.0, "reply", "b")
        assert len(tracer.events) == 2
        assert tracer.of_kind("invoke")[0].detail["op"] == "Read"

    def test_capacity_drops_oldest(self):
        tracer = Tracer(enabled=True, capacity=2)
        for index in range(5):
            tracer.emit(float(index), "tick", f"s{index}")
        assert [event.subject for event in tracer.events] == ["s3", "s4"]

    def test_listener_called(self):
        tracer = Tracer(enabled=True)
        seen = []
        tracer.subscribe(seen.append)
        tracer.emit(0.0, "x", "y")
        assert len(seen) == 1

    def test_format_renders_lines(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.5, "invoke", "client", op="Read")
        text = tracer.format()
        assert "invoke" in text and "op=Read" in text

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit(0.0, "x", "y")
        tracer.clear()
        assert tracer.events == []
