"""Invocation/Reply records and the payload size model."""

import pytest

from repro.core.message import Invocation, Reply, ReplyStatus, _estimate_size
from repro.core.uid import UIDFactory


@pytest.fixture
def target():
    return UIDFactory().issue()


class TestInvocation:
    def test_tickets_are_unique(self, target):
        a = Invocation(target=target, operation="Read")
        b = Invocation(target=target, operation="Read")
        assert a.ticket != b.ticket

    def test_str_mentions_operation_and_target(self, target):
        invocation = Invocation(target=target, operation="Lookup")
        assert "Lookup" in str(invocation)
        assert target.brief() in str(invocation)

    def test_channel_in_str(self, target):
        invocation = Invocation(target=target, operation="Read", channel="Report")
        assert "Report" in str(invocation)

    def test_payload_size_counts_args_and_kwargs(self, target):
        small = Invocation(target=target, operation="Op")
        big = Invocation(
            target=target, operation="Op", args=("x" * 100,),
            kwargs={"data": "y" * 100},
        )
        assert big.payload_size() > small.payload_size() + 150


class TestReply:
    def test_ok_unwrap(self):
        reply = Reply(ticket=1, status=ReplyStatus.OK, result=42)
        assert reply.ok
        assert reply.unwrap() == 42

    def test_error_unwrap_raises(self):
        boom = ValueError("boom")
        reply = Reply(ticket=1, status=ReplyStatus.ERROR, error=boom)
        assert not reply.ok
        with pytest.raises(ValueError, match="boom"):
            reply.unwrap()


class TestSizeModel:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (None, 0),
            (True, 1),
            (7, 8),
            (3.14, 8),
            (b"abcd", 4),
            ("abcd", 4),
        ],
    )
    def test_scalars(self, value, expected):
        assert _estimate_size(value) == expected

    def test_collections_sum_members(self):
        assert _estimate_size(["ab", "cd"]) == 8 + 4
        assert _estimate_size({"k": "vv"}) == 8 + 1 + 2

    def test_unicode_measured_in_bytes(self):
        assert _estimate_size("héllo") == len("héllo".encode("utf-8"))

    def test_opaque_objects_flat(self):
        class Thing:
            pass

        assert _estimate_size(Thing()) == 16
