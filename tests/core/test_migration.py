"""Eject migration: location-independent invocation made visible only
through transport costs."""

import pytest

from repro.core import Kernel, TransportCosts
from repro.core.errors import KernelError
from repro.filesystem import EdenFile
from repro.transput import (
    CollectorSink,
    FlowPolicy,
    ListSource,
    compose_readonly_pipeline,
)
from repro.filters import upper_case


@pytest.fixture
def kernel():
    return Kernel(costs=TransportCosts(local_latency=1.0, remote_latency=10.0))


class TestMigration:
    def test_clients_unaffected(self, kernel):
        f = kernel.create(EdenFile, records=["x"])
        assert kernel.call_sync(f.uid, "Length") == 1
        kernel.migrate(f.uid, "vax9")
        # Same UID, same behaviour: location independence.
        assert kernel.call_sync(f.uid, "Length") == 1
        assert f.node.name == "vax9"
        assert kernel.stats.get("migrations") == 1

    def test_costs_change_after_migration(self, kernel):
        source = kernel.create(ListSource, items=list(range(10)), node="vaxA")
        sink = kernel.create(
            CollectorSink, inputs=[source.output_endpoint()], node="vaxA"
        )
        # Colocated: cheap.  Move the source away mid-wiring: expensive.
        kernel.migrate(source.uid, "vaxB")
        start_time = kernel.clock.now
        kernel.run(until=lambda: sink.done)
        kernel.run()
        remote_span = kernel.clock.now - start_time
        assert kernel.stats.get("remote_messages") > 0

        # Reference run, colocated throughout.
        reference = Kernel(
            costs=TransportCosts(local_latency=1.0, remote_latency=10.0)
        )
        ref_source = reference.create(
            ListSource, items=list(range(10)), node="vaxA"
        )
        ref_sink = reference.create(
            CollectorSink, inputs=[ref_source.output_endpoint()], node="vaxA"
        )
        reference.run(until=lambda: ref_sink.done)
        assert remote_span > reference.clock.now

    def test_migrate_back_home(self, kernel):
        f = kernel.create(EdenFile, records=["x"], node="vaxA")
        kernel.migrate(f.uid, "vaxB")
        kernel.migrate(f.uid, "vaxA")
        assert f.node.name == "vaxA"
        assert kernel.node("vaxB").resident_uids == frozenset()

    def test_cannot_migrate_to_crashed_node(self, kernel):
        f = kernel.create(EdenFile)
        kernel.node("dead").crash()
        with pytest.raises(KernelError, match="crashed"):
            kernel.migrate(f.uid, "dead")

    def test_cannot_migrate_passive_eject(self, kernel):
        f = kernel.create(EdenFile)
        kernel.crash_eject(f.uid)
        with pytest.raises(KernelError, match="no live Eject"):
            kernel.migrate(f.uid, "vaxB")

    def test_checkpointed_eject_reactivates_on_new_home(self, kernel):
        f = kernel.create(EdenFile, records=["kept"], node="vaxA")
        kernel.migrate(f.uid, "vaxB")
        kernel.call_sync(f.uid, "Commit")
        kernel.crash_eject(f.uid)
        # Reactivates where it lived last.
        assert kernel.call_sync(f.uid, "Contents") == ["kept"]
        assert kernel.find(f.uid).node.name == "vaxB"

    def test_pipeline_survives_stage_migration_between_runs(self, kernel):
        pipeline = compose_readonly_pipeline(
            kernel, [f"r{i}" for i in range(6)], [upper_case()],
            flow=FlowPolicy(lookahead=0),
        )
        stage = pipeline.filters[0]
        kernel.migrate(stage.uid, "vaxZ")
        assert pipeline.run_to_completion() == [f"R{i}" for i in range(6)]
