"""Channel capability minting and validation (paper §5 security)."""

from repro.core.capability import (
    PRIMARY_CHANNEL,
    REPORT_CHANNEL,
    ChannelCapability,
    ChannelMinter,
)
from repro.core.uid import UIDFactory


def make_minter(seed: int = 0) -> ChannelMinter:
    return ChannelMinter(UIDFactory(seed=seed).issue())


class TestMinting:
    def test_mint_is_idempotent(self):
        minter = make_minter()
        first = minter.mint("Output")
        second = minter.mint("Output")
        assert first == second
        assert minter.names() == ["Output"]

    def test_distinct_channels_distinct_secrets(self):
        minter = make_minter()
        a = minter.mint(PRIMARY_CHANNEL)
        b = minter.mint(REPORT_CHANNEL)
        assert a != b
        assert a.secret != b.secret

    def test_deterministic_across_runs(self):
        a = make_minter().mint("Output")
        b = make_minter().mint("Output")
        assert a == b

    def test_str_form(self):
        cap = make_minter().mint("Report")
        assert "Report" in str(cap)


class TestValidation:
    def test_genuine_validates(self):
        minter = make_minter()
        cap = minter.mint("Output")
        assert minter.validate(cap) == "Output"

    def test_forged_secret_rejected(self):
        minter = make_minter()
        cap = minter.mint("Output")
        forged = ChannelCapability(owner=cap.owner, name="Output",
                                   secret=cap.secret ^ 1)
        assert minter.validate(forged) is None

    def test_unminted_name_rejected(self):
        minter = make_minter()
        minter.mint("Output")
        foreign = ChannelCapability(
            owner=minter.mint("Output").owner, name="Report", secret=123
        )
        assert minter.validate(foreign) is None

    def test_other_minters_capability_rejected(self):
        ours = make_minter(seed=0)
        ours.mint("Output")
        # A minter over a *different* UID mints capabilities that must
        # not validate against ours, even for the same channel name.
        other_uid = list(UIDFactory(seed=5).issue_many(2))[1]
        cap = ChannelMinter(other_uid).mint("Output")
        assert ours.validate(cap) is None

    def test_plain_identifiers_not_validated_here(self):
        minter = make_minter()
        minter.mint("Output")
        assert minter.validate("Output") is None  # type: ignore[arg-type]
        assert minter.validate(0) is None  # type: ignore[arg-type]
