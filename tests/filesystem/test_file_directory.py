"""Eden files and directories as active Ejects."""

import pytest

from repro.core.errors import (
    DuplicateEntryError,
    EjectDeactivatedError,
    InvocationError,
    NoSuchEntryError,
)
from repro.filesystem import Directory, EdenFile
from repro.transput import (
    CollectorSink,
    ListSource,
    StreamEndpoint,
    Transfer,
)
from tests.conftest import run_until_done


class TestEdenFile:
    def test_append_and_contents(self, kernel):
        f = kernel.create(EdenFile)
        ack = kernel.call_sync(f.uid, "Append", Transfer.of(["a", "b"]))
        assert ack.accepted == 2
        assert kernel.call_sync(f.uid, "Contents") == ["a", "b"]
        assert kernel.call_sync(f.uid, "Length") == 2

    def test_write_synonym(self, kernel):
        f = kernel.create(EdenFile)
        kernel.call_sync(f.uid, "Write", Transfer.of(["x"]))
        assert kernel.call_sync(f.uid, "Contents") == ["x"]

    def test_append_non_transfer_rejected(self, kernel):
        f = kernel.create(EdenFile)
        with pytest.raises(InvocationError):
            kernel.call_sync(f.uid, "Append", ["raw"])

    def test_read_streams_and_rewinds(self, kernel):
        f = kernel.create(EdenFile, records=["a", "b"])
        assert kernel.call_sync(f.uid, "Read", 1).items == ("a",)
        assert kernel.call_sync(f.uid, "Read", 1).items == ("b",)
        assert kernel.call_sync(f.uid, "Read", 1).at_end
        # The shared cursor rewinds after END: the file can be re-read.
        assert kernel.call_sync(f.uid, "Read", 2).items == ("a", "b")

    def test_open_for_reading_gives_independent_cursors(self, kernel):
        f = kernel.create(EdenFile, records=["a", "b"])
        r1 = kernel.call_sync(f.uid, "OpenForReading")
        r2 = kernel.call_sync(f.uid, "OpenForReading")
        assert kernel.call_sync(r1, "Read", 1).items == ("a",)
        assert kernel.call_sync(r2, "Read", 2).items == ("a", "b")
        assert kernel.call_sync(r1, "Read", 1).items == ("b",)

    def test_reader_is_a_snapshot(self, kernel):
        f = kernel.create(EdenFile, records=["a"])
        reader = kernel.call_sync(f.uid, "OpenForReading")
        kernel.call_sync(f.uid, "Append", Transfer.of(["late"]))
        assert kernel.call_sync(reader, "Read", 5).items == ("a",)

    def test_reader_close_disappears(self, kernel):
        f = kernel.create(EdenFile, records=["a"])
        reader = kernel.call_sync(f.uid, "OpenForReading")
        assert kernel.call_sync(reader, "Close") is True
        with pytest.raises(EjectDeactivatedError):
            kernel.call_sync(reader, "Read", 1)

    def test_read_from_pumps_a_source(self, kernel):
        """§4: "A file opened for output would immediately issue a Read
        invocation"."""
        source = kernel.create(ListSource, items=["1", "2", "3"])
        f = kernel.create(EdenFile)
        assert kernel.call_sync(
            f.uid, "ReadFrom", source.output_endpoint()
        ) == "ingesting"
        kernel.run()
        assert kernel.call_sync(f.uid, "Contents") == ["1", "2", "3"]
        assert f.ingest_count == 3
        # ReadFrom checkpoints on completion: the data is durable.
        kernel.crash_eject(f.uid)
        assert kernel.call_sync(f.uid, "Contents") == ["1", "2", "3"]

    def test_read_from_bad_argument(self, kernel):
        f = kernel.create(EdenFile)
        with pytest.raises(InvocationError):
            kernel.call_sync(f.uid, "ReadFrom", "not an endpoint")

    def test_concurrent_ingest_rejected(self, kernel):
        slow = kernel.create(ListSource, items=["x"], work_cost=100.0)
        f = kernel.create(EdenFile)
        kernel.call_sync(f.uid, "ReadFrom", slow.output_endpoint())
        with pytest.raises(InvocationError, match="already ingesting"):
            kernel.call_sync(f.uid, "ReadFrom", slow.output_endpoint())

    def test_clear(self, kernel):
        f = kernel.create(EdenFile, records=["a"])
        kernel.call_sync(f.uid, "Clear")
        assert kernel.call_sync(f.uid, "Length") == 0

    def test_commit_then_crash_recovers(self, kernel):
        f = kernel.create(EdenFile, records=["kept"])
        kernel.call_sync(f.uid, "Commit")
        kernel.call_sync(f.uid, "Append", Transfer.of(["lost"]))
        kernel.crash_eject(f.uid)
        assert kernel.call_sync(f.uid, "Contents") == ["kept"]


class TestDirectory:
    def test_add_lookup_delete(self, kernel):
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "f", f.uid)
        assert kernel.call_sync(d.uid, "Lookup", "f") == f.uid
        kernel.call_sync(d.uid, "DeleteEntry", "f")
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(d.uid, "Lookup", "f")

    def test_duplicate_rejected(self, kernel):
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "f", f.uid)
        with pytest.raises(DuplicateEntryError):
            kernel.call_sync(d.uid, "AddEntry", "f", f.uid)

    def test_delete_missing_rejected(self, kernel):
        d = kernel.create(Directory)
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(d.uid, "DeleteEntry", "ghost")

    def test_non_uid_rejected(self, kernel):
        d = kernel.create(Directory)
        with pytest.raises(InvocationError):
            kernel.call_sync(d.uid, "AddEntry", "x", "not-a-uid")

    def test_rename(self, kernel):
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "old", f.uid)
        kernel.call_sync(d.uid, "Rename", "old", "new")
        assert kernel.call_sync(d.uid, "Lookup", "new") == f.uid
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(d.uid, "Lookup", "old")

    def test_names_and_size(self, kernel):
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "b", f.uid)
        kernel.call_sync(d.uid, "AddEntry", "a", f.uid)
        assert kernel.call_sync(d.uid, "Names") == ["a", "b"]
        assert kernel.call_sync(d.uid, "Size") == 2

    def test_arbitrary_networks_with_cycles(self, kernel):
        """§2: "arbitrary networks of directories can be constructed"."""
        a = kernel.create(Directory)
        b = kernel.create(Directory)
        kernel.call_sync(a.uid, "AddEntry", "b", b.uid)
        kernel.call_sync(b.uid, "AddEntry", "a", a.uid)  # a cycle
        assert kernel.call_sync(
            kernel.call_sync(a.uid, "Lookup", "b"), "Lookup", "a"
        ) == a.uid

    def test_list_then_read_streams_listing(self, kernel):
        """§4: List prepares the directory for Read invocations."""
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "zz", f.uid)
        kernel.call_sync(d.uid, "AddEntry", "aa", f.uid)
        count = kernel.call_sync(d.uid, "List")
        assert count == 2
        transfer = kernel.call_sync(d.uid, "Read", 10)
        assert [line.split()[0] for line in transfer.items] == ["aa", "zz"]
        assert kernel.call_sync(d.uid, "Read", 1).at_end

    def test_directory_is_a_source_for_pipelines(self, kernel):
        """A directory can feed an ordinary sink: it *is* a source."""
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "entry", f.uid)
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(d.uid, None)]
        )
        run_until_done(kernel, sink)
        assert len(sink.collected) == 1
        assert sink.collected[0].startswith("entry")

    def test_checkpoint_recovery(self, kernel):
        d = kernel.create(Directory)
        f = kernel.create(EdenFile)
        kernel.call_sync(d.uid, "AddEntry", "kept", f.uid)
        kernel.call_sync(d.uid, "Commit")
        kernel.call_sync(d.uid, "AddEntry", "lost", f.uid)
        kernel.crash_eject(d.uid)
        assert kernel.call_sync(d.uid, "Names") == ["kept"]
        # The recovered entry still points at the right Eject.
        assert kernel.call_sync(d.uid, "Lookup", "kept") == f.uid
