"""The Map protocol Eject (paper §6): random access + both protocols."""

import pytest

from repro.core.errors import InvocationError
from repro.filesystem import MapFile, MapIndexError
from repro.transput import CollectorSink, StreamEndpoint
from tests.conftest import run_until_done


class TestMapProtocol:
    def test_read_at(self, kernel):
        f = kernel.create(MapFile, records=["a", "b", "c", "d"])
        assert kernel.call_sync(f.uid, "ReadAt", 1, 2) == ["b", "c"]
        assert kernel.call_sync(f.uid, "ReadAt", 3) == ["d"]

    def test_read_at_out_of_range(self, kernel):
        f = kernel.create(MapFile, records=["a"])
        with pytest.raises(MapIndexError):
            kernel.call_sync(f.uid, "ReadAt", 5)
        with pytest.raises(MapIndexError):
            kernel.call_sync(f.uid, "ReadAt", -1)

    def test_write_at_overwrites(self, kernel):
        f = kernel.create(MapFile, records=["a", "b", "c"])
        assert kernel.call_sync(f.uid, "WriteAt", 1, ["X", "Y"]) == 2
        assert kernel.call_sync(f.uid, "ReadAt", 0, 3) == ["a", "X", "Y"]

    def test_write_at_grows(self, kernel):
        f = kernel.create(MapFile, records=["a"])
        kernel.call_sync(f.uid, "WriteAt", 1, ["b", "c"])
        assert kernel.call_sync(f.uid, "Size") == 3

    def test_write_past_end_rejected(self, kernel):
        f = kernel.create(MapFile, records=["a"])
        with pytest.raises(MapIndexError):
            kernel.call_sync(f.uid, "WriteAt", 5, ["x"])

    def test_truncate(self, kernel):
        f = kernel.create(MapFile, records=list("abcd"))
        assert kernel.call_sync(f.uid, "Truncate", 2) == 2
        assert kernel.call_sync(f.uid, "ReadAt", 0, 10) == ["a", "b"]
        with pytest.raises(InvocationError):
            kernel.call_sync(f.uid, "Truncate", -1)

    def test_counters(self, kernel):
        f = kernel.create(MapFile, records=["a"])
        kernel.call_sync(f.uid, "ReadAt", 0)
        kernel.call_sync(f.uid, "WriteAt", 0, ["b"])
        assert f.map_reads == 1
        assert f.map_writes == 1


class TestBothProtocols:
    """§6: an Eject "may support both protocols"."""

    def test_stream_protocol_works_too(self, kernel):
        f = kernel.create(MapFile, records=["a", "b"])
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(f.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["a", "b"]

    def test_map_writes_visible_to_stream_reads(self, kernel):
        f = kernel.create(MapFile, records=["a", "b"])
        kernel.call_sync(f.uid, "WriteAt", 0, ["A"])
        sink = kernel.create(
            CollectorSink, inputs=[StreamEndpoint(f.uid, None)]
        )
        run_until_done(kernel, sink)
        assert sink.collected == ["A", "b"]

    def test_transfer_synonym(self, kernel):
        f = kernel.create(MapFile, records=["x"])
        assert kernel.call_sync(f.uid, "Transfer", 1).items == ("x",)

    def test_truncate_clamps_stream_cursor(self, kernel):
        f = kernel.create(MapFile, records=list("abcd"))
        kernel.call_sync(f.uid, "Read", 3)  # cursor at 3
        kernel.call_sync(f.uid, "Truncate", 1)
        assert kernel.call_sync(f.uid, "Read", 5).at_end  # rewinds
        assert kernel.call_sync(f.uid, "Read", 5).items == ("a",)


class TestDurability:
    def test_checkpoint_round_trip(self, kernel):
        f = kernel.create(MapFile, records=["keep"])
        kernel.call_sync(f.uid, "Commit")
        kernel.call_sync(f.uid, "WriteAt", 0, ["lost"])
        kernel.crash_eject(f.uid)
        assert kernel.call_sync(f.uid, "ReadAt", 0) == ["keep"]
