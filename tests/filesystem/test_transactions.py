"""Nested transactions on directories (the §7 preliminary design)."""

import pytest

from repro.core.errors import (
    DuplicateEntryError,
    NoSuchEntryError,
    TransactionStateError,
)
from repro.filesystem import EdenFile, TransactionalDirectory


@pytest.fixture
def setup(kernel):
    directory = kernel.create(TransactionalDirectory)
    file_a = kernel.create(EdenFile, name="a")
    file_b = kernel.create(EdenFile, name="b")
    return directory, file_a, file_b


class TestTopLevel:
    def test_commit_applies_atomically(self, kernel, setup):
        directory, file_a, file_b = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        kernel.call_sync(directory.uid, "AddEntry", "b", file_b.uid, txn=txn)
        assert kernel.call_sync(directory.uid, "Names") == []
        assert kernel.call_sync(directory.uid, "Commit", txn) == "committed"
        assert kernel.call_sync(directory.uid, "Names") == ["a", "b"]

    def test_abort_discards(self, kernel, setup):
        directory, file_a, _ = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        kernel.call_sync(directory.uid, "Abort", txn)
        assert kernel.call_sync(directory.uid, "Names") == []

    def test_read_your_writes(self, kernel, setup):
        directory, file_a, _ = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        assert kernel.call_sync(directory.uid, "Lookup", "a", txn=txn) == file_a.uid
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(directory.uid, "Lookup", "a")

    def test_transactional_delete(self, kernel, setup):
        directory, file_a, _ = setup
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid)
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "DeleteEntry", "a", txn=txn)
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(directory.uid, "Lookup", "a", txn=txn)
        # Outside the transaction the entry is still there.
        assert kernel.call_sync(directory.uid, "Lookup", "a") == file_a.uid
        kernel.call_sync(directory.uid, "Commit", txn)
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(directory.uid, "Lookup", "a")

    def test_commit_checkpoints(self, kernel, setup):
        """Top-level commit is the durable atomic update."""
        directory, file_a, _ = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        kernel.call_sync(directory.uid, "Commit", txn)
        kernel.crash_eject(directory.uid)
        assert kernel.call_sync(directory.uid, "Names") == ["a"]

    def test_duplicate_within_txn_rejected(self, kernel, setup):
        directory, file_a, file_b = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        with pytest.raises(DuplicateEntryError):
            kernel.call_sync(directory.uid, "AddEntry", "a", file_b.uid, txn=txn)

    def test_duplicate_against_committed_rejected(self, kernel, setup):
        directory, file_a, file_b = setup
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid)
        txn = kernel.call_sync(directory.uid, "Begin")
        with pytest.raises(DuplicateEntryError):
            kernel.call_sync(directory.uid, "AddEntry", "a", file_b.uid, txn=txn)


class TestNesting:
    def test_nested_commit_merges_into_parent(self, kernel, setup):
        directory, file_a, _ = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=inner)
        assert kernel.call_sync(directory.uid, "Commit", inner) == "merged"
        # Visible in the parent, not yet committed.
        assert kernel.call_sync(directory.uid, "Lookup", "a", txn=outer)
        assert kernel.call_sync(directory.uid, "Names") == []
        kernel.call_sync(directory.uid, "Commit", outer)
        assert kernel.call_sync(directory.uid, "Names") == ["a"]

    def test_nested_abort_leaves_parent_clean(self, kernel, setup):
        directory, file_a, _ = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=inner)
        kernel.call_sync(directory.uid, "Abort", inner)
        kernel.call_sync(directory.uid, "Commit", outer)
        assert kernel.call_sync(directory.uid, "Names") == []

    def test_child_sees_parent_writes(self, kernel, setup):
        directory, file_a, _ = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=outer)
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        assert kernel.call_sync(directory.uid, "Lookup", "a", txn=inner)

    def test_inner_overrides_parent_view(self, kernel, setup):
        directory, file_a, file_b = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=outer)
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        kernel.call_sync(directory.uid, "DeleteEntry", "a", txn=inner)
        kernel.call_sync(directory.uid, "AddEntry", "a", file_b.uid, txn=inner)
        assert kernel.call_sync(directory.uid, "Lookup", "a", txn=inner) == file_b.uid
        assert kernel.call_sync(directory.uid, "Lookup", "a", txn=outer) == file_a.uid

    def test_commit_with_active_child_rejected(self, kernel, setup):
        directory, *_ = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "Begin", outer)
        with pytest.raises(TransactionStateError, match="active child"):
            kernel.call_sync(directory.uid, "Commit", outer)

    def test_abort_cascades_to_children(self, kernel, setup):
        directory, file_a, _ = setup
        outer = kernel.call_sync(directory.uid, "Begin")
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        kernel.call_sync(directory.uid, "Abort", outer)
        with pytest.raises(TransactionStateError):
            kernel.call_sync(
                directory.uid, "AddEntry", "a", file_a.uid, txn=inner
            )
        assert directory.aborts == 2

    def test_names_merges_the_chain(self, kernel, setup):
        directory, file_a, file_b = setup
        kernel.call_sync(directory.uid, "AddEntry", "base", file_a.uid)
        outer = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "AddEntry", "outer", file_a.uid, txn=outer)
        inner = kernel.call_sync(directory.uid, "Begin", outer)
        kernel.call_sync(directory.uid, "DeleteEntry", "base", txn=inner)
        kernel.call_sync(directory.uid, "AddEntry", "inner", file_b.uid, txn=inner)
        assert kernel.call_sync(directory.uid, "Names", txn=inner) == [
            "inner", "outer"
        ]


class TestLifecycleErrors:
    def test_unknown_txn(self, kernel, setup):
        directory, *_ = setup
        with pytest.raises(TransactionStateError):
            kernel.call_sync(directory.uid, "Commit", 999)

    def test_finished_txn_rejected(self, kernel, setup):
        directory, file_a, _ = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "Commit", txn)
        with pytest.raises(TransactionStateError):
            kernel.call_sync(directory.uid, "AddEntry", "a", file_a.uid, txn=txn)
        with pytest.raises(TransactionStateError):
            kernel.call_sync(directory.uid, "Commit", txn)

    def test_begin_under_finished_parent_rejected(self, kernel, setup):
        directory, *_ = setup
        txn = kernel.call_sync(directory.uid, "Begin")
        kernel.call_sync(directory.uid, "Abort", txn)
        with pytest.raises(TransactionStateError):
            kernel.call_sync(directory.uid, "Begin", txn)

    def test_plain_operations_still_work(self, kernel, setup):
        directory, file_a, _ = setup
        kernel.call_sync(directory.uid, "AddEntry", "plain", file_a.uid)
        assert kernel.call_sync(directory.uid, "Lookup", "plain") == file_a.uid
        assert kernel.call_sync(directory.uid, "Commit") is True  # checkpoint
