"""The simulated host (Unix) filesystem."""

import pytest

from repro.core.errors import (
    HostFileExistsError,
    HostFileNotFoundError,
    HostIsADirectoryError,
    HostNotADirectoryError,
)
from repro.filesystem import HostFileSystem, split_path


class TestSplitPath:
    @pytest.mark.parametrize(
        "path, expected",
        [
            ("/a/b", ["a", "b"]),
            ("a/b/", ["a", "b"]),
            ("//a//b//", ["a", "b"]),
            ("/", []),
            ("", []),
            ("./a/./b", ["a", "b"]),
        ],
    )
    def test_normalization(self, path, expected):
        assert split_path(path) == expected


class TestFiles:
    def test_write_read_round_trip(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", ["one", "two"])
        assert fs.read_file("/f.txt") == ["one", "two"]

    def test_read_returns_copy(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", ["x"])
        fs.read_file("/f.txt").append("mutation")
        assert fs.read_file("/f.txt") == ["x"]

    def test_lines_coerced_to_str(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", [1, 2])
        assert fs.read_file("/f.txt") == ["1", "2"]

    def test_overwrite(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", ["a"])
        fs.write_file("/f.txt", ["b"])
        assert fs.read_file("/f.txt") == ["b"]

    def test_exclusive_create(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", ["a"])
        with pytest.raises(HostFileExistsError):
            fs.write_file("/f.txt", ["b"], exclusive=True)

    def test_append_creates(self):
        fs = HostFileSystem()
        fs.append_file("/f.txt", ["a"])
        fs.append_file("/f.txt", ["b"])
        assert fs.read_file("/f.txt") == ["a", "b"]

    def test_missing_file(self):
        with pytest.raises(HostFileNotFoundError):
            HostFileSystem().read_file("/nope")

    def test_unlink(self):
        fs = HostFileSystem()
        fs.write_file("/f.txt", ["a"])
        fs.unlink("/f.txt")
        assert not fs.exists("/f.txt")
        with pytest.raises(HostFileNotFoundError):
            fs.unlink("/f.txt")

    def test_file_in_missing_dir(self):
        with pytest.raises(HostFileNotFoundError):
            HostFileSystem().write_file("/no/dir/f.txt", ["a"])

    def test_root_is_not_a_file(self):
        with pytest.raises(HostIsADirectoryError):
            HostFileSystem().write_file("/", ["a"])


class TestDirectories:
    def test_mkdir_and_list(self):
        fs = HostFileSystem()
        fs.mkdir("/a")
        fs.write_file("/a/f", ["x"])
        fs.mkdir("/a/sub")
        assert fs.listdir("/a") == ["f", "sub"]

    def test_mkdir_parents(self):
        fs = HostFileSystem()
        fs.mkdir("/a/b/c", parents=True)
        assert fs.is_dir("/a/b/c")

    def test_mkdir_without_parents_fails(self):
        with pytest.raises(HostFileNotFoundError):
            HostFileSystem().mkdir("/a/b/c")

    def test_mkdir_existing_fails(self):
        fs = HostFileSystem()
        fs.mkdir("/a")
        with pytest.raises(HostFileExistsError):
            fs.mkdir("/a")
        fs.mkdir("/a", parents=True)  # idempotent with parents

    def test_file_is_not_a_directory(self):
        fs = HostFileSystem()
        fs.write_file("/f", ["x"])
        with pytest.raises(HostNotADirectoryError):
            fs.mkdir("/f/sub")
        with pytest.raises(HostNotADirectoryError):
            fs.listdir("/f")

    def test_unlink_directory_rejected(self):
        fs = HostFileSystem()
        fs.mkdir("/a")
        with pytest.raises(HostIsADirectoryError):
            fs.unlink("/a")

    def test_read_directory_rejected(self):
        fs = HostFileSystem()
        fs.mkdir("/a")
        with pytest.raises(HostIsADirectoryError):
            fs.read_file("/a")


class TestQueries:
    def test_exists_and_is_dir(self):
        fs = HostFileSystem()
        fs.mkdir("/a")
        fs.write_file("/a/f", [])
        assert fs.exists("/a") and fs.is_dir("/a")
        assert fs.exists("/a/f") and not fs.is_dir("/a/f")
        assert not fs.exists("/a/g")
        assert not fs.exists("/a/f/deeper")

    def test_walk(self):
        fs = HostFileSystem()
        fs.mkdir("/a/b", parents=True)
        fs.write_file("/a/top", [])
        fs.write_file("/a/b/inner", [])
        walked = list(fs.walk("/a"))
        assert walked[0] == ("/a", ["b"], ["top"])
        assert walked[1] == ("/a/b", [], ["inner"])
