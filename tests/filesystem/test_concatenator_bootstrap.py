"""Directory concatenator and the §7 bootstrap Unix FS."""

import pytest

from repro.core.errors import (
    EjectDeactivatedError,
    HostFileNotFoundError,
    InvocationError,
    NoSuchEntryError,
)
from repro.filesystem import (
    Directory,
    DirectoryConcatenator,
    EdenFile,
    HostFileSystem,
    UnixFileSystem,
)
from repro.filters import upper_case
from repro.transput import ReadOnlyFilter, StreamEndpoint


@pytest.fixture
def dirs(kernel):
    """Two directories with overlapping names, plus their files."""
    first = kernel.create(Directory, name="first")
    second = kernel.create(Directory, name="second")
    f_only_first = kernel.create(EdenFile, name="only-first")
    f_shared_first = kernel.create(EdenFile, name="shared-first")
    f_shared_second = kernel.create(EdenFile, name="shared-second")
    f_only_second = kernel.create(EdenFile, name="only-second")
    kernel.call_sync(first.uid, "AddEntry", "only1", f_only_first.uid)
    kernel.call_sync(first.uid, "AddEntry", "shared", f_shared_first.uid)
    kernel.call_sync(second.uid, "AddEntry", "shared", f_shared_second.uid)
    kernel.call_sync(second.uid, "AddEntry", "only2", f_only_second.uid)
    return first, second, f_only_first, f_shared_first, f_shared_second, f_only_second


class TestConcatenator:
    @pytest.mark.parametrize("strategy", ["forward", "cache"])
    def test_lookup_order(self, kernel, dirs, strategy):
        first, second, only1, shared1, _, only2 = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid, second.uid],
            strategy=strategy,
        )
        assert kernel.call_sync(concat.uid, "Lookup", "only1") == only1.uid
        assert kernel.call_sync(concat.uid, "Lookup", "only2") == only2.uid
        # Earlier directory wins, as with PATH.
        assert kernel.call_sync(concat.uid, "Lookup", "shared") == shared1.uid

    @pytest.mark.parametrize("strategy", ["forward", "cache"])
    def test_missing_everywhere(self, kernel, dirs, strategy):
        first, second, *_ = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid, second.uid],
            strategy=strategy,
        )
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(concat.uid, "Lookup", "ghost")

    def test_cache_invalidate_sees_new_entries(self, kernel, dirs):
        first, second, *_ = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid], strategy="cache"
        )
        kernel.call_sync(concat.uid, "Lookup", "only1")  # builds cache
        newfile = kernel.create(EdenFile)
        kernel.call_sync(first.uid, "AddEntry", "fresh", newfile.uid)
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(concat.uid, "Lookup", "fresh")
        kernel.call_sync(concat.uid, "Invalidate")
        assert kernel.call_sync(concat.uid, "Lookup", "fresh") == newfile.uid

    def test_add_directory(self, kernel, dirs):
        first, second, *_ = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid]
        )
        with pytest.raises(NoSuchEntryError):
            kernel.call_sync(concat.uid, "Lookup", "only2")
        kernel.call_sync(concat.uid, "AddDirectory", second.uid)
        kernel.call_sync(concat.uid, "Lookup", "only2")
        with pytest.raises(InvocationError):
            kernel.call_sync(concat.uid, "AddDirectory", "not-a-uid")

    def test_behavioural_compatibility(self, kernel, dirs):
        """§2: anything that responds like a directory *is* one — a
        concatenator can be nested inside another concatenator."""
        first, second, only1, *_ = dirs
        inner = kernel.create(
            DirectoryConcatenator, directories=[first.uid], name="inner"
        )
        outer = kernel.create(
            DirectoryConcatenator, directories=[inner.uid, second.uid],
            name="outer",
        )
        assert kernel.call_sync(outer.uid, "Lookup", "only1") == only1.uid
        assert kernel.call_sync(outer.uid, "Lookup", "only2")

    def test_combined_listing(self, kernel, dirs):
        first, second, *_ = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid, second.uid]
        )
        total = kernel.call_sync(concat.uid, "List")
        assert total == 4
        transfer = kernel.call_sync(concat.uid, "Read", 10)
        assert len(transfer.items) == 4

    def test_forward_counts_forwarded_lookups(self, kernel, dirs):
        first, second, *_ = dirs
        concat = kernel.create(
            DirectoryConcatenator, directories=[first.uid, second.uid]
        )
        kernel.call_sync(concat.uid, "Lookup", "only2")
        assert concat.lookups_forwarded == 2  # missed first, hit second

    def test_bad_strategy(self, kernel):
        with pytest.raises(ValueError):
            kernel.create(DirectoryConcatenator, strategy="psychic")


@pytest.fixture
def hostfs():
    fs = HostFileSystem()
    fs.mkdir("/tmp")
    fs.write_file("/tmp/in.txt", ["alpha", "beta", "gamma"])
    return fs


class TestBootstrap:
    def test_new_stream_reads_unix_file(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        assert kernel.call_sync(stream, "Transfer", 2).items == ("alpha", "beta")
        assert kernel.call_sync(stream, "Transfer", 2).items == ("gamma",)
        assert kernel.call_sync(stream, "Transfer", 1).at_end

    def test_close_makes_stream_disappear(self, kernel, hostfs):
        """§7: never Checkpointed, the UnixFile disappears on Close."""
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        kernel.call_sync(stream, "Close")
        with pytest.raises(EjectDeactivatedError):
            kernel.call_sync(stream, "Transfer", 1)

    def test_new_stream_missing_file(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        with pytest.raises(HostFileNotFoundError):
            kernel.call_sync(ufs.uid, "NewStream", "/tmp/ghost")

    def test_use_stream_copies(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        kernel.call_sync(ufs.uid, "UseStream", "/tmp/out.txt", stream)
        kernel.run()
        assert hostfs.read_file("/tmp/out.txt") == ["alpha", "beta", "gamma"]

    def test_use_stream_through_filter(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        stage = kernel.create(
            ReadOnlyFilter, transducer=upper_case(),
            inputs=[StreamEndpoint(stream, None)],
        )
        kernel.call_sync(
            ufs.uid, "UseStream", "/tmp/out.txt", stage.output_endpoint()
        )
        kernel.run()
        assert hostfs.read_file("/tmp/out.txt") == ["ALPHA", "BETA", "GAMMA"]

    def test_writer_deactivates_after_writing(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        writer = kernel.call_sync(ufs.uid, "UseStream", "/tmp/out.txt", stream)
        kernel.run()
        with pytest.raises(EjectDeactivatedError):
            kernel.call_sync(writer, "Transfer", 1)

    def test_use_stream_bad_capability(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        with pytest.raises(InvocationError):
            kernel.call_sync(ufs.uid, "UseStream", "/tmp/out.txt", "junk")

    def test_list_files(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        assert kernel.call_sync(ufs.uid, "ListFiles", "/tmp") == ["in.txt"]

    def test_streams_created_counter(self, kernel, hostfs):
        ufs = kernel.create(UnixFileSystem, hostfs=hostfs)
        stream = kernel.call_sync(ufs.uid, "NewStream", "/tmp/in.txt")
        kernel.call_sync(ufs.uid, "UseStream", "/tmp/o", stream)
        assert ufs.streams_created == 2
